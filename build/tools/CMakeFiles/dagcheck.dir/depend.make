# Empty dependencies file for dagcheck.
# This may be replaced when dependencies are built.
