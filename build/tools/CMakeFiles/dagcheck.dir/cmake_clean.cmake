file(REMOVE_RECURSE
  "CMakeFiles/dagcheck.dir/dagcheck.cc.o"
  "CMakeFiles/dagcheck.dir/dagcheck.cc.o.d"
  "dagcheck"
  "dagcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dagcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
