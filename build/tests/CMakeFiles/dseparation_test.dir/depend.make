# Empty dependencies file for dseparation_test.
# This may be replaced when dependencies are built.
