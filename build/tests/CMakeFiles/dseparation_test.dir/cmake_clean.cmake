file(REMOVE_RECURSE
  "CMakeFiles/dseparation_test.dir/dseparation_test.cc.o"
  "CMakeFiles/dseparation_test.dir/dseparation_test.cc.o.d"
  "dseparation_test"
  "dseparation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dseparation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
