file(REMOVE_RECURSE
  "CMakeFiles/events_simulator_test.dir/events_simulator_test.cc.o"
  "CMakeFiles/events_simulator_test.dir/events_simulator_test.cc.o.d"
  "events_simulator_test"
  "events_simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/events_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
