# Empty compiler generated dependencies file for events_simulator_test.
# This may be replaced when dependencies are built.
