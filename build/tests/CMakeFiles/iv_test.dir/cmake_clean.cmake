file(REMOVE_RECURSE
  "CMakeFiles/iv_test.dir/iv_test.cc.o"
  "CMakeFiles/iv_test.dir/iv_test.cc.o.d"
  "iv_test"
  "iv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
