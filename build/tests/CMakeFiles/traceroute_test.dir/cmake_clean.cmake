file(REMOVE_RECURSE
  "CMakeFiles/traceroute_test.dir/traceroute_test.cc.o"
  "CMakeFiles/traceroute_test.dir/traceroute_test.cc.o.d"
  "traceroute_test"
  "traceroute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traceroute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
