# Empty compiler generated dependencies file for adjustment_property_test.
# This may be replaced when dependencies are built.
