file(REMOVE_RECURSE
  "CMakeFiles/adjustment_property_test.dir/adjustment_property_test.cc.o"
  "CMakeFiles/adjustment_property_test.dir/adjustment_property_test.cc.o.d"
  "adjustment_property_test"
  "adjustment_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adjustment_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
