file(REMOVE_RECURSE
  "CMakeFiles/panel_test.dir/panel_test.cc.o"
  "CMakeFiles/panel_test.dir/panel_test.cc.o.d"
  "panel_test"
  "panel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/panel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
