# Empty dependencies file for panel_test.
# This may be replaced when dependencies are built.
