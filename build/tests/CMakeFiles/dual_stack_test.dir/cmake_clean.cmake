file(REMOVE_RECURSE
  "CMakeFiles/dual_stack_test.dir/dual_stack_test.cc.o"
  "CMakeFiles/dual_stack_test.dir/dual_stack_test.cc.o.d"
  "dual_stack_test"
  "dual_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
