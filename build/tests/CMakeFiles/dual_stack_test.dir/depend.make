# Empty dependencies file for dual_stack_test.
# This may be replaced when dependencies are built.
