file(REMOVE_RECURSE
  "CMakeFiles/refutation_test.dir/refutation_test.cc.o"
  "CMakeFiles/refutation_test.dir/refutation_test.cc.o.d"
  "refutation_test"
  "refutation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refutation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
