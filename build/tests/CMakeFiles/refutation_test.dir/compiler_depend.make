# Empty compiler generated dependencies file for refutation_test.
# This may be replaced when dependencies are built.
