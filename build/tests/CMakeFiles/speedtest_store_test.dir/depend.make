# Empty dependencies file for speedtest_store_test.
# This may be replaced when dependencies are built.
