file(REMOVE_RECURSE
  "CMakeFiles/speedtest_store_test.dir/speedtest_store_test.cc.o"
  "CMakeFiles/speedtest_store_test.dir/speedtest_store_test.cc.o.d"
  "speedtest_store_test"
  "speedtest_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedtest_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
