file(REMOVE_RECURSE
  "CMakeFiles/logistic_test.dir/logistic_test.cc.o"
  "CMakeFiles/logistic_test.dir/logistic_test.cc.o.d"
  "logistic_test"
  "logistic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logistic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
