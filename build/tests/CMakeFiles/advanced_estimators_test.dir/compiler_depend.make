# Empty compiler generated dependencies file for advanced_estimators_test.
# This may be replaced when dependencies are built.
