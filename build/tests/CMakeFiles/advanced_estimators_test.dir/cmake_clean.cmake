file(REMOVE_RECURSE
  "CMakeFiles/advanced_estimators_test.dir/advanced_estimators_test.cc.o"
  "CMakeFiles/advanced_estimators_test.dir/advanced_estimators_test.cc.o.d"
  "advanced_estimators_test"
  "advanced_estimators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_estimators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
