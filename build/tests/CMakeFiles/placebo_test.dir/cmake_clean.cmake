file(REMOVE_RECURSE
  "CMakeFiles/placebo_test.dir/placebo_test.cc.o"
  "CMakeFiles/placebo_test.dir/placebo_test.cc.o.d"
  "placebo_test"
  "placebo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placebo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
