# Empty dependencies file for placebo_test.
# This may be replaced when dependencies are built.
