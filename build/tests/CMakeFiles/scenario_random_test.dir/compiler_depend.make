# Empty compiler generated dependencies file for scenario_random_test.
# This may be replaced when dependencies are built.
