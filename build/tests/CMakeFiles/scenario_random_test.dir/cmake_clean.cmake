file(REMOVE_RECURSE
  "CMakeFiles/scenario_random_test.dir/scenario_random_test.cc.o"
  "CMakeFiles/scenario_random_test.dir/scenario_random_test.cc.o.d"
  "scenario_random_test"
  "scenario_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
