# Empty dependencies file for dag_parser_test.
# This may be replaced when dependencies are built.
