file(REMOVE_RECURSE
  "CMakeFiles/dag_parser_test.dir/dag_parser_test.cc.o"
  "CMakeFiles/dag_parser_test.dir/dag_parser_test.cc.o.d"
  "dag_parser_test"
  "dag_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dag_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
