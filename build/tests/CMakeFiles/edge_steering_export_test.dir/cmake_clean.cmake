file(REMOVE_RECURSE
  "CMakeFiles/edge_steering_export_test.dir/edge_steering_export_test.cc.o"
  "CMakeFiles/edge_steering_export_test.dir/edge_steering_export_test.cc.o.d"
  "edge_steering_export_test"
  "edge_steering_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_steering_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
