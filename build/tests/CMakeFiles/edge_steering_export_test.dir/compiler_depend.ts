# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for edge_steering_export_test.
