# Empty dependencies file for edge_steering_export_test.
# This may be replaced when dependencies are built.
