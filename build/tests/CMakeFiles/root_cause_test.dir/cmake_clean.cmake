file(REMOVE_RECURSE
  "CMakeFiles/root_cause_test.dir/root_cause_test.cc.o"
  "CMakeFiles/root_cause_test.dir/root_cause_test.cc.o.d"
  "root_cause_test"
  "root_cause_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/root_cause_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
