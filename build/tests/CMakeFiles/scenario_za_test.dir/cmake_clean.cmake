file(REMOVE_RECURSE
  "CMakeFiles/scenario_za_test.dir/scenario_za_test.cc.o"
  "CMakeFiles/scenario_za_test.dir/scenario_za_test.cc.o.d"
  "scenario_za_test"
  "scenario_za_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_za_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
