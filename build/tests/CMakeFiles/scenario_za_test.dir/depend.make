# Empty dependencies file for scenario_za_test.
# This may be replaced when dependencies are built.
