# Empty dependencies file for traffic_latency_test.
# This may be replaced when dependencies are built.
