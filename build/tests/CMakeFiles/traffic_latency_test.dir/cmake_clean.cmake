file(REMOVE_RECURSE
  "CMakeFiles/traffic_latency_test.dir/traffic_latency_test.cc.o"
  "CMakeFiles/traffic_latency_test.dir/traffic_latency_test.cc.o.d"
  "traffic_latency_test"
  "traffic_latency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
