file(REMOVE_RECURSE
  "CMakeFiles/implications_test.dir/implications_test.cc.o"
  "CMakeFiles/implications_test.dir/implications_test.cc.o.d"
  "implications_test"
  "implications_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implications_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
