# Empty dependencies file for implications_test.
# This may be replaced when dependencies are built.
