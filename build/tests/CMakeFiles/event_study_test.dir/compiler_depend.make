# Empty compiler generated dependencies file for event_study_test.
# This may be replaced when dependencies are built.
