file(REMOVE_RECURSE
  "CMakeFiles/event_study_test.dir/event_study_test.cc.o"
  "CMakeFiles/event_study_test.dir/event_study_test.cc.o.d"
  "event_study_test"
  "event_study_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
