file(REMOVE_RECURSE
  "CMakeFiles/synthetic_control_test.dir/synthetic_control_test.cc.o"
  "CMakeFiles/synthetic_control_test.dir/synthetic_control_test.cc.o.d"
  "synthetic_control_test"
  "synthetic_control_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
