# Empty dependencies file for synthetic_control_test.
# This may be replaced when dependencies are built.
