file(REMOVE_RECURSE
  "CMakeFiles/loss_model_test.dir/loss_model_test.cc.o"
  "CMakeFiles/loss_model_test.dir/loss_model_test.cc.o.d"
  "loss_model_test"
  "loss_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loss_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
