# Empty dependencies file for loss_model_test.
# This may be replaced when dependencies are built.
