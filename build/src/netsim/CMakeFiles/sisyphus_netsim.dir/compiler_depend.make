# Empty compiler generated dependencies file for sisyphus_netsim.
# This may be replaced when dependencies are built.
