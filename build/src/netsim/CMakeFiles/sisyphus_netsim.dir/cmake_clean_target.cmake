file(REMOVE_RECURSE
  "libsisyphus_netsim.a"
)
