file(REMOVE_RECURSE
  "CMakeFiles/sisyphus_netsim.dir/bgp.cc.o"
  "CMakeFiles/sisyphus_netsim.dir/bgp.cc.o.d"
  "CMakeFiles/sisyphus_netsim.dir/events.cc.o"
  "CMakeFiles/sisyphus_netsim.dir/events.cc.o.d"
  "CMakeFiles/sisyphus_netsim.dir/geo.cc.o"
  "CMakeFiles/sisyphus_netsim.dir/geo.cc.o.d"
  "CMakeFiles/sisyphus_netsim.dir/latency.cc.o"
  "CMakeFiles/sisyphus_netsim.dir/latency.cc.o.d"
  "CMakeFiles/sisyphus_netsim.dir/root_cause.cc.o"
  "CMakeFiles/sisyphus_netsim.dir/root_cause.cc.o.d"
  "CMakeFiles/sisyphus_netsim.dir/scenario_random.cc.o"
  "CMakeFiles/sisyphus_netsim.dir/scenario_random.cc.o.d"
  "CMakeFiles/sisyphus_netsim.dir/scenario_za.cc.o"
  "CMakeFiles/sisyphus_netsim.dir/scenario_za.cc.o.d"
  "CMakeFiles/sisyphus_netsim.dir/simulator.cc.o"
  "CMakeFiles/sisyphus_netsim.dir/simulator.cc.o.d"
  "CMakeFiles/sisyphus_netsim.dir/topology.cc.o"
  "CMakeFiles/sisyphus_netsim.dir/topology.cc.o.d"
  "CMakeFiles/sisyphus_netsim.dir/traffic.cc.o"
  "CMakeFiles/sisyphus_netsim.dir/traffic.cc.o.d"
  "libsisyphus_netsim.a"
  "libsisyphus_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisyphus_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
