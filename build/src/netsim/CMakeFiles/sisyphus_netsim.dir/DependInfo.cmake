
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/bgp.cc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/bgp.cc.o" "gcc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/bgp.cc.o.d"
  "/root/repo/src/netsim/events.cc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/events.cc.o" "gcc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/events.cc.o.d"
  "/root/repo/src/netsim/geo.cc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/geo.cc.o" "gcc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/geo.cc.o.d"
  "/root/repo/src/netsim/latency.cc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/latency.cc.o" "gcc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/latency.cc.o.d"
  "/root/repo/src/netsim/root_cause.cc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/root_cause.cc.o" "gcc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/root_cause.cc.o.d"
  "/root/repo/src/netsim/scenario_random.cc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/scenario_random.cc.o" "gcc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/scenario_random.cc.o.d"
  "/root/repo/src/netsim/scenario_za.cc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/scenario_za.cc.o" "gcc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/scenario_za.cc.o.d"
  "/root/repo/src/netsim/simulator.cc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/simulator.cc.o" "gcc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/simulator.cc.o.d"
  "/root/repo/src/netsim/topology.cc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/topology.cc.o" "gcc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/topology.cc.o.d"
  "/root/repo/src/netsim/traffic.cc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/traffic.cc.o" "gcc" "src/netsim/CMakeFiles/sisyphus_netsim.dir/traffic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sisyphus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sisyphus_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
