file(REMOVE_RECURSE
  "libsisyphus_core.a"
)
