# Empty compiler generated dependencies file for sisyphus_core.
# This may be replaced when dependencies are built.
