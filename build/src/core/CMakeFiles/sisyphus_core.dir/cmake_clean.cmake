file(REMOVE_RECURSE
  "CMakeFiles/sisyphus_core.dir/logging.cc.o"
  "CMakeFiles/sisyphus_core.dir/logging.cc.o.d"
  "CMakeFiles/sisyphus_core.dir/rng.cc.o"
  "CMakeFiles/sisyphus_core.dir/rng.cc.o.d"
  "CMakeFiles/sisyphus_core.dir/sim_time.cc.o"
  "CMakeFiles/sisyphus_core.dir/sim_time.cc.o.d"
  "libsisyphus_core.a"
  "libsisyphus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisyphus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
