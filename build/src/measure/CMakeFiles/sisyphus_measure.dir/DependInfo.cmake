
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/edge_steering.cc" "src/measure/CMakeFiles/sisyphus_measure.dir/edge_steering.cc.o" "gcc" "src/measure/CMakeFiles/sisyphus_measure.dir/edge_steering.cc.o.d"
  "/root/repo/src/measure/export.cc" "src/measure/CMakeFiles/sisyphus_measure.dir/export.cc.o" "gcc" "src/measure/CMakeFiles/sisyphus_measure.dir/export.cc.o.d"
  "/root/repo/src/measure/intervention.cc" "src/measure/CMakeFiles/sisyphus_measure.dir/intervention.cc.o" "gcc" "src/measure/CMakeFiles/sisyphus_measure.dir/intervention.cc.o.d"
  "/root/repo/src/measure/panel.cc" "src/measure/CMakeFiles/sisyphus_measure.dir/panel.cc.o" "gcc" "src/measure/CMakeFiles/sisyphus_measure.dir/panel.cc.o.d"
  "/root/repo/src/measure/platform.cc" "src/measure/CMakeFiles/sisyphus_measure.dir/platform.cc.o" "gcc" "src/measure/CMakeFiles/sisyphus_measure.dir/platform.cc.o.d"
  "/root/repo/src/measure/speedtest.cc" "src/measure/CMakeFiles/sisyphus_measure.dir/speedtest.cc.o" "gcc" "src/measure/CMakeFiles/sisyphus_measure.dir/speedtest.cc.o.d"
  "/root/repo/src/measure/store.cc" "src/measure/CMakeFiles/sisyphus_measure.dir/store.cc.o" "gcc" "src/measure/CMakeFiles/sisyphus_measure.dir/store.cc.o.d"
  "/root/repo/src/measure/traceroute.cc" "src/measure/CMakeFiles/sisyphus_measure.dir/traceroute.cc.o" "gcc" "src/measure/CMakeFiles/sisyphus_measure.dir/traceroute.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sisyphus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sisyphus_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/sisyphus_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/causal/CMakeFiles/sisyphus_causal.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
