file(REMOVE_RECURSE
  "CMakeFiles/sisyphus_measure.dir/edge_steering.cc.o"
  "CMakeFiles/sisyphus_measure.dir/edge_steering.cc.o.d"
  "CMakeFiles/sisyphus_measure.dir/export.cc.o"
  "CMakeFiles/sisyphus_measure.dir/export.cc.o.d"
  "CMakeFiles/sisyphus_measure.dir/intervention.cc.o"
  "CMakeFiles/sisyphus_measure.dir/intervention.cc.o.d"
  "CMakeFiles/sisyphus_measure.dir/panel.cc.o"
  "CMakeFiles/sisyphus_measure.dir/panel.cc.o.d"
  "CMakeFiles/sisyphus_measure.dir/platform.cc.o"
  "CMakeFiles/sisyphus_measure.dir/platform.cc.o.d"
  "CMakeFiles/sisyphus_measure.dir/speedtest.cc.o"
  "CMakeFiles/sisyphus_measure.dir/speedtest.cc.o.d"
  "CMakeFiles/sisyphus_measure.dir/store.cc.o"
  "CMakeFiles/sisyphus_measure.dir/store.cc.o.d"
  "CMakeFiles/sisyphus_measure.dir/traceroute.cc.o"
  "CMakeFiles/sisyphus_measure.dir/traceroute.cc.o.d"
  "libsisyphus_measure.a"
  "libsisyphus_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisyphus_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
