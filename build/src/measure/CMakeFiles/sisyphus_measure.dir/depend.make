# Empty dependencies file for sisyphus_measure.
# This may be replaced when dependencies are built.
