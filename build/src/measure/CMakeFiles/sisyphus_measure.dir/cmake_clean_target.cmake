file(REMOVE_RECURSE
  "libsisyphus_measure.a"
)
