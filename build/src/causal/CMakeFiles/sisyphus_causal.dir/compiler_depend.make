# Empty compiler generated dependencies file for sisyphus_causal.
# This may be replaced when dependencies are built.
