
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/causal/bounds.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/bounds.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/bounds.cc.o.d"
  "/root/repo/src/causal/csv.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/csv.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/csv.cc.o.d"
  "/root/repo/src/causal/dag.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/dag.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/dag.cc.o.d"
  "/root/repo/src/causal/dag_parser.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/dag_parser.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/dag_parser.cc.o.d"
  "/root/repo/src/causal/dataset.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/dataset.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/dataset.cc.o.d"
  "/root/repo/src/causal/dseparation.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/dseparation.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/dseparation.cc.o.d"
  "/root/repo/src/causal/estimators.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/estimators.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/estimators.cc.o.d"
  "/root/repo/src/causal/event_study.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/event_study.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/event_study.cc.o.d"
  "/root/repo/src/causal/identification.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/identification.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/identification.cc.o.d"
  "/root/repo/src/causal/implications.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/implications.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/implications.cc.o.d"
  "/root/repo/src/causal/ladder.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/ladder.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/ladder.cc.o.d"
  "/root/repo/src/causal/placebo.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/placebo.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/placebo.cc.o.d"
  "/root/repo/src/causal/refutation.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/refutation.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/refutation.cc.o.d"
  "/root/repo/src/causal/robust_synthetic_control.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/robust_synthetic_control.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/robust_synthetic_control.cc.o.d"
  "/root/repo/src/causal/scm.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/scm.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/scm.cc.o.d"
  "/root/repo/src/causal/sensitivity.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/sensitivity.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/sensitivity.cc.o.d"
  "/root/repo/src/causal/synthetic_control.cc" "src/causal/CMakeFiles/sisyphus_causal.dir/synthetic_control.cc.o" "gcc" "src/causal/CMakeFiles/sisyphus_causal.dir/synthetic_control.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sisyphus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sisyphus_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
