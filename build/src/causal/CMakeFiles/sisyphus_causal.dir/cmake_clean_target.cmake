file(REMOVE_RECURSE
  "libsisyphus_causal.a"
)
