file(REMOVE_RECURSE
  "libsisyphus_stats.a"
)
