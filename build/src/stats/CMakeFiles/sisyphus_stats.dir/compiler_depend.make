# Empty compiler generated dependencies file for sisyphus_stats.
# This may be replaced when dependencies are built.
