
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/decomposition.cc" "src/stats/CMakeFiles/sisyphus_stats.dir/decomposition.cc.o" "gcc" "src/stats/CMakeFiles/sisyphus_stats.dir/decomposition.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/sisyphus_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/sisyphus_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/stats/CMakeFiles/sisyphus_stats.dir/distributions.cc.o" "gcc" "src/stats/CMakeFiles/sisyphus_stats.dir/distributions.cc.o.d"
  "/root/repo/src/stats/inference.cc" "src/stats/CMakeFiles/sisyphus_stats.dir/inference.cc.o" "gcc" "src/stats/CMakeFiles/sisyphus_stats.dir/inference.cc.o.d"
  "/root/repo/src/stats/iv.cc" "src/stats/CMakeFiles/sisyphus_stats.dir/iv.cc.o" "gcc" "src/stats/CMakeFiles/sisyphus_stats.dir/iv.cc.o.d"
  "/root/repo/src/stats/logistic.cc" "src/stats/CMakeFiles/sisyphus_stats.dir/logistic.cc.o" "gcc" "src/stats/CMakeFiles/sisyphus_stats.dir/logistic.cc.o.d"
  "/root/repo/src/stats/matrix.cc" "src/stats/CMakeFiles/sisyphus_stats.dir/matrix.cc.o" "gcc" "src/stats/CMakeFiles/sisyphus_stats.dir/matrix.cc.o.d"
  "/root/repo/src/stats/regression.cc" "src/stats/CMakeFiles/sisyphus_stats.dir/regression.cc.o" "gcc" "src/stats/CMakeFiles/sisyphus_stats.dir/regression.cc.o.d"
  "/root/repo/src/stats/timeseries.cc" "src/stats/CMakeFiles/sisyphus_stats.dir/timeseries.cc.o" "gcc" "src/stats/CMakeFiles/sisyphus_stats.dir/timeseries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sisyphus_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
