file(REMOVE_RECURSE
  "CMakeFiles/sisyphus_stats.dir/decomposition.cc.o"
  "CMakeFiles/sisyphus_stats.dir/decomposition.cc.o.d"
  "CMakeFiles/sisyphus_stats.dir/descriptive.cc.o"
  "CMakeFiles/sisyphus_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/sisyphus_stats.dir/distributions.cc.o"
  "CMakeFiles/sisyphus_stats.dir/distributions.cc.o.d"
  "CMakeFiles/sisyphus_stats.dir/inference.cc.o"
  "CMakeFiles/sisyphus_stats.dir/inference.cc.o.d"
  "CMakeFiles/sisyphus_stats.dir/iv.cc.o"
  "CMakeFiles/sisyphus_stats.dir/iv.cc.o.d"
  "CMakeFiles/sisyphus_stats.dir/logistic.cc.o"
  "CMakeFiles/sisyphus_stats.dir/logistic.cc.o.d"
  "CMakeFiles/sisyphus_stats.dir/matrix.cc.o"
  "CMakeFiles/sisyphus_stats.dir/matrix.cc.o.d"
  "CMakeFiles/sisyphus_stats.dir/regression.cc.o"
  "CMakeFiles/sisyphus_stats.dir/regression.cc.o.d"
  "CMakeFiles/sisyphus_stats.dir/timeseries.cc.o"
  "CMakeFiles/sisyphus_stats.dir/timeseries.cc.o.d"
  "libsisyphus_stats.a"
  "libsisyphus_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sisyphus_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
