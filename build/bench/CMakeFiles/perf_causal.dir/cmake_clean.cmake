file(REMOVE_RECURSE
  "CMakeFiles/perf_causal.dir/perf_causal.cc.o"
  "CMakeFiles/perf_causal.dir/perf_causal.cc.o.d"
  "perf_causal"
  "perf_causal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_causal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
