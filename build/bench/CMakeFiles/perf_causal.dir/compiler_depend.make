# Empty compiler generated dependencies file for perf_causal.
# This may be replaced when dependencies are built.
