file(REMOVE_RECURSE
  "CMakeFiles/exp_root_cause_localization.dir/exp_root_cause_localization.cc.o"
  "CMakeFiles/exp_root_cause_localization.dir/exp_root_cause_localization.cc.o.d"
  "exp_root_cause_localization"
  "exp_root_cause_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_root_cause_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
