# Empty dependencies file for exp_root_cause_localization.
# This may be replaced when dependencies are built.
