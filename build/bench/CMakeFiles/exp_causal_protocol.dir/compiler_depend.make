# Empty compiler generated dependencies file for exp_causal_protocol.
# This may be replaced when dependencies are built.
