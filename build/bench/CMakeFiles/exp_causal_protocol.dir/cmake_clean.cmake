file(REMOVE_RECURSE
  "CMakeFiles/exp_causal_protocol.dir/exp_causal_protocol.cc.o"
  "CMakeFiles/exp_causal_protocol.dir/exp_causal_protocol.cc.o.d"
  "exp_causal_protocol"
  "exp_causal_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_causal_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
