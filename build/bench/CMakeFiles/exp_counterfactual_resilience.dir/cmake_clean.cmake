file(REMOVE_RECURSE
  "CMakeFiles/exp_counterfactual_resilience.dir/exp_counterfactual_resilience.cc.o"
  "CMakeFiles/exp_counterfactual_resilience.dir/exp_counterfactual_resilience.cc.o.d"
  "exp_counterfactual_resilience"
  "exp_counterfactual_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_counterfactual_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
