# Empty dependencies file for exp_counterfactual_resilience.
# This may be replaced when dependencies are built.
