file(REMOVE_RECURSE
  "CMakeFiles/exp_instrumental_variables.dir/exp_instrumental_variables.cc.o"
  "CMakeFiles/exp_instrumental_variables.dir/exp_instrumental_variables.cc.o.d"
  "exp_instrumental_variables"
  "exp_instrumental_variables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_instrumental_variables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
