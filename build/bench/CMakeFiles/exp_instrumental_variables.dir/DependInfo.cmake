
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp_instrumental_variables.cc" "bench/CMakeFiles/exp_instrumental_variables.dir/exp_instrumental_variables.cc.o" "gcc" "bench/CMakeFiles/exp_instrumental_variables.dir/exp_instrumental_variables.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/causal/CMakeFiles/sisyphus_causal.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/sisyphus_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/sisyphus_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sisyphus_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sisyphus_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
