# Empty dependencies file for exp_instrumental_variables.
# This may be replaced when dependencies are built.
