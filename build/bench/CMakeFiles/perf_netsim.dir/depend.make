# Empty dependencies file for perf_netsim.
# This may be replaced when dependencies are built.
