file(REMOVE_RECURSE
  "CMakeFiles/exp_mlab_randomization.dir/exp_mlab_randomization.cc.o"
  "CMakeFiles/exp_mlab_randomization.dir/exp_mlab_randomization.cc.o.d"
  "exp_mlab_randomization"
  "exp_mlab_randomization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_mlab_randomization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
