# Empty dependencies file for exp_mlab_randomization.
# This may be replaced when dependencies are built.
