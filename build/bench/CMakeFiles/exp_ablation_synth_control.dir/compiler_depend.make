# Empty compiler generated dependencies file for exp_ablation_synth_control.
# This may be replaced when dependencies are built.
