file(REMOVE_RECURSE
  "CMakeFiles/exp_ablation_synth_control.dir/exp_ablation_synth_control.cc.o"
  "CMakeFiles/exp_ablation_synth_control.dir/exp_ablation_synth_control.cc.o.d"
  "exp_ablation_synth_control"
  "exp_ablation_synth_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ablation_synth_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
