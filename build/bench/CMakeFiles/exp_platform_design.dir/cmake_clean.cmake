file(REMOVE_RECURSE
  "CMakeFiles/exp_platform_design.dir/exp_platform_design.cc.o"
  "CMakeFiles/exp_platform_design.dir/exp_platform_design.cc.o.d"
  "exp_platform_design"
  "exp_platform_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_platform_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
