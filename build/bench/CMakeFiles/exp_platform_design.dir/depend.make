# Empty dependencies file for exp_platform_design.
# This may be replaced when dependencies are built.
