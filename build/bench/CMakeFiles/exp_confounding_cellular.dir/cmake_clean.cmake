file(REMOVE_RECURSE
  "CMakeFiles/exp_confounding_cellular.dir/exp_confounding_cellular.cc.o"
  "CMakeFiles/exp_confounding_cellular.dir/exp_confounding_cellular.cc.o.d"
  "exp_confounding_cellular"
  "exp_confounding_cellular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_confounding_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
