# Empty dependencies file for exp_confounding_cellular.
# This may be replaced when dependencies are built.
