file(REMOVE_RECURSE
  "CMakeFiles/exp_collider_speedtest.dir/exp_collider_speedtest.cc.o"
  "CMakeFiles/exp_collider_speedtest.dir/exp_collider_speedtest.cc.o.d"
  "exp_collider_speedtest"
  "exp_collider_speedtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_collider_speedtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
