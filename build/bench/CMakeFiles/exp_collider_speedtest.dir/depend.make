# Empty dependencies file for exp_collider_speedtest.
# This may be replaced when dependencies are built.
