file(REMOVE_RECURSE
  "CMakeFiles/exp_ladder_of_causation.dir/exp_ladder_of_causation.cc.o"
  "CMakeFiles/exp_ladder_of_causation.dir/exp_ladder_of_causation.cc.o.d"
  "exp_ladder_of_causation"
  "exp_ladder_of_causation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_ladder_of_causation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
