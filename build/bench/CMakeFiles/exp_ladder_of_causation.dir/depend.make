# Empty dependencies file for exp_ladder_of_causation.
# This may be replaced when dependencies are built.
