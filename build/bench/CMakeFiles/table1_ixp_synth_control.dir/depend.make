# Empty dependencies file for table1_ixp_synth_control.
# This may be replaced when dependencies are built.
