file(REMOVE_RECURSE
  "CMakeFiles/table1_ixp_synth_control.dir/table1_ixp_synth_control.cc.o"
  "CMakeFiles/table1_ixp_synth_control.dir/table1_ixp_synth_control.cc.o.d"
  "table1_ixp_synth_control"
  "table1_ixp_synth_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ixp_synth_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
