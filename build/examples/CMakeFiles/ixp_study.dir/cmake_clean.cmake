file(REMOVE_RECURSE
  "CMakeFiles/ixp_study.dir/ixp_study.cpp.o"
  "CMakeFiles/ixp_study.dir/ixp_study.cpp.o.d"
  "ixp_study"
  "ixp_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ixp_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
