# Empty compiler generated dependencies file for ixp_study.
# This may be replaced when dependencies are built.
