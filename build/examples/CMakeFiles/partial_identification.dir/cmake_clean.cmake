file(REMOVE_RECURSE
  "CMakeFiles/partial_identification.dir/partial_identification.cpp.o"
  "CMakeFiles/partial_identification.dir/partial_identification.cpp.o.d"
  "partial_identification"
  "partial_identification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_identification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
