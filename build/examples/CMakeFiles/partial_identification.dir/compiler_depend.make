# Empty compiler generated dependencies file for partial_identification.
# This may be replaced when dependencies are built.
