# Empty dependencies file for measurement_design.
# This may be replaced when dependencies are built.
