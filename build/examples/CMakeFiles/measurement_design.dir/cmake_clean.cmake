file(REMOVE_RECURSE
  "CMakeFiles/measurement_design.dir/measurement_design.cpp.o"
  "CMakeFiles/measurement_design.dir/measurement_design.cpp.o.d"
  "measurement_design"
  "measurement_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measurement_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
