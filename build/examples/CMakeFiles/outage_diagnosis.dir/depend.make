# Empty dependencies file for outage_diagnosis.
# This may be replaced when dependencies are built.
