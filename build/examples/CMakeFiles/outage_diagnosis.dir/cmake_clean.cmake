file(REMOVE_RECURSE
  "CMakeFiles/outage_diagnosis.dir/outage_diagnosis.cpp.o"
  "CMakeFiles/outage_diagnosis.dir/outage_diagnosis.cpp.o.d"
  "outage_diagnosis"
  "outage_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outage_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
