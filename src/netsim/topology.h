// AS-level Internet topology at point-of-presence (PoP) granularity.
//
// A node is an AS's presence in one city ("ASN 3741 in Johannesburg").
// Working at ⟨ASN, city⟩ granularity is what lets the Table 1 experiment
// analyze units the way the paper does. Links carry a business
// relationship (customer/provider, settlement-free peer, or intra-AS) and
// optionally cross an IXP's peering LAN.
//
// Synthetic addressing: PoP i owns 10.(i>>8).(i&0xff).0/24 with router
// address .1; IXP k owns 196.60.k.0/24 and each member PoP gets a distinct
// host address on that LAN. The measurement layer matches traceroute hops
// against these prefixes exactly as the paper matches M-Lab hops against
// PeeringDB-announced IXP prefixes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/ids.h"
#include "core/result.h"
#include "netsim/geo.h"

namespace sisyphus::netsim {

/// Index of a PoP in the topology (dense, assigned on insertion).
using PopIndex = std::uint32_t;

/// Business relationship of a link, from the perspective of endpoint `a`.
enum class Relationship {
  kCustomerToProvider,  ///< a is the customer, b the provider
  kPeerToPeer,          ///< settlement-free peering
  kIntraAs,             ///< same ASN, internal backbone link
};

const char* ToString(Relationship relationship);

/// Coarse role, used by scenario builders and reporting.
enum class AsRole { kAccess, kTransit, kContent, kMeasurement };

struct Pop {
  core::Asn asn;
  core::CityId city;
  AsRole role = AsRole::kAccess;
  std::string label;  ///< "AS3741/Johannesburg"
};

struct Link {
  PopIndex a = 0;
  PopIndex b = 0;
  Relationship relationship = Relationship::kPeerToPeer;
  double propagation_ms = 0.1;   ///< one-way propagation + serialization
  double base_utilization = 0.3; ///< mean utilization before diurnal swing
  double diurnal_amplitude = 0.25;
  std::optional<core::IxpId> ixp;  ///< set when the link crosses an IXP LAN
  bool up = true;
  /// Dual-stack by default; false models a v4-only adjacency, so the
  /// IPv6 topology is a (possibly strict) subgraph — the paper's "toggle
  /// IPv4 vs IPv6 to alter AS paths" knob works because of exactly this
  /// asymmetry in real networks.
  bool ipv6 = true;
};

struct Ixp {
  std::string name;
  core::CityId city;
  /// Third octet of the 196.60.X.0/24 peering LAN.
  std::uint8_t lan_octet = 0;
};

/// IPv4 address helpers for the synthetic addressing plan.
struct Ipv4 {
  std::uint32_t value = 0;

  static Ipv4 FromOctets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                         std::uint8_t d);
  std::string ToText() const;
  friend bool operator==(Ipv4 x, Ipv4 y) { return x.value == y.value; }
};

/// True when `address` lies inside `prefix`/`bits`.
bool InPrefix(Ipv4 address, Ipv4 prefix, int bits);

class Topology {
 public:
  CityRegistry& cities() { return cities_; }
  const CityRegistry& cities() const { return cities_; }

  /// Adds a PoP; (asn, city) pairs must be unique (kInvalidArgument).
  core::Result<PopIndex> AddPop(core::Asn asn, core::CityId city, AsRole role);

  /// Adds an IXP. lan octet assigned sequentially.
  core::IxpId AddIxp(std::string name, core::CityId city);

  /// Connects two PoPs. Distance-derived propagation delay unless
  /// `propagation_ms` is given. Duplicate links are rejected.
  core::Result<core::LinkId> AddLink(
      PopIndex a, PopIndex b, Relationship relationship,
      std::optional<core::IxpId> ixp = std::nullopt,
      std::optional<double> propagation_ms = std::nullopt);

  std::size_t PopCount() const { return pops_.size(); }
  std::size_t LinkCount() const { return links_.size(); }
  std::size_t IxpCount() const { return ixps_.size(); }

  const Pop& GetPop(PopIndex i) const;
  const Link& GetLink(core::LinkId id) const;
  Link& MutableLink(core::LinkId id);
  const Ixp& GetIxp(core::IxpId id) const;

  /// PoP by (asn, city); kNotFound when absent.
  core::Result<PopIndex> FindPop(core::Asn asn, core::CityId city) const;
  /// All PoPs of an ASN.
  std::vector<PopIndex> PopsOfAs(core::Asn asn) const;

  /// Links incident to a PoP.
  const std::vector<core::LinkId>& LinksOf(PopIndex i) const;
  /// The other endpoint of `link` as seen from `from`.
  PopIndex Neighbor(core::LinkId link, PopIndex from) const;
  /// True when `from` is the provider side of a customer/provider link.
  bool IsProviderSide(core::LinkId link, PopIndex from) const;

  /// Router address of a PoP (10.x.y.1).
  Ipv4 RouterAddress(PopIndex i) const;
  /// Address of PoP `member` on IXP `ixp`'s peering LAN.
  Ipv4 IxpLanAddress(core::IxpId ixp, PopIndex member) const;
  /// The IXP LAN prefix (196.60.k.0), /24.
  Ipv4 IxpLanPrefix(core::IxpId ixp) const;

  /// True when `address` is on any IXP LAN; outputs which.
  bool IsIxpAddress(Ipv4 address, core::IxpId* which = nullptr) const;

 private:
  CityRegistry cities_;
  std::vector<Pop> pops_;
  std::vector<Link> links_;
  std::vector<Ixp> ixps_;
  std::vector<std::vector<core::LinkId>> adjacency_;
};

}  // namespace sisyphus::netsim
