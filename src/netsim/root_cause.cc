#include "netsim/root_cause.h"

#include "core/error.h"

namespace sisyphus::netsim {

using core::Error;
using core::ErrorCode;
using core::Result;

const char* ToString(RouteChangeKind kind) {
  switch (kind) {
    case RouteChangeKind::kWithdrawal: return "withdrawal";
    case RouteChangeKind::kReroute: return "reroute";
    case RouteChangeKind::kNewRoute: return "new_route";
    case RouteChangeKind::kNoChange: return "no_change";
  }
  return "?";
}

namespace {

bool SamePath(const std::optional<BgpRoute>& a,
              const std::optional<BgpRoute>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->pop_path == b->pop_path;
}

}  // namespace

Result<RootCauseResult> LocalizeRouteChange(const Topology& topology,
                                            const RouteTable& before,
                                            const RouteTable& after,
                                            PopIndex source) {
  if (before.destination != after.destination) {
    return Error(ErrorCode::kInvalidArgument,
                 "LocalizeRouteChange: tables for different destinations");
  }
  if (source >= before.best.size() || source >= after.best.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "LocalizeRouteChange: source outside the tables");
  }
  const auto& old_route = before.best[source];
  const auto& new_route = after.best[source];
  if (!old_route.has_value() && !new_route.has_value()) {
    return Error(ErrorCode::kNotFound,
                 "LocalizeRouteChange: source never had a route");
  }

  RootCauseResult out;
  if (SamePath(old_route, new_route)) {
    out.kind = RouteChangeKind::kNoChange;
    out.culprit = source;
    out.culprit_asn = topology.GetPop(source).asn;
    out.explanation = "path unchanged";
    return out;
  }

  // Walk the OLD path from the destination towards the source; the first
  // hop whose own route changed is the root cause (hops between it and
  // the destination still route as before, so they cannot have caused
  // anything).
  if (old_route.has_value()) {
    const auto& path = old_route->pop_path;
    for (std::size_t i = path.size(); i-- > 0;) {
      const PopIndex hop = path[i];
      if (SamePath(before.best[hop], after.best[hop])) continue;
      out.culprit = hop;
      out.culprit_asn = topology.GetPop(hop).asn;
      if (!after.best[hop].has_value()) {
        out.kind = RouteChangeKind::kWithdrawal;
        out.explanation = topology.GetPop(hop).label +
                          " lost its route towards the destination; "
                          "upstream networks reacted";
        return out;
      }
      // The hop still routes. Was its OLD option still available (it
      // chose a new preference) or gone (it was forced to move)? The old
      // option survives iff the first link of its old route is still up
      // and the old next hop's own route is unchanged (hops closer to
      // the destination did not change — that is how we got here).
      bool old_option_intact = false;
      const auto& old_hop_route = before.best[hop];
      if (old_hop_route.has_value() && !old_hop_route->links.empty()) {
        const Link& first_link = topology.GetLink(old_hop_route->links[0]);
        const PopIndex old_next = old_hop_route->pop_path.size() > 1
                                      ? old_hop_route->pop_path[1]
                                      : hop;
        old_option_intact =
            first_link.up && SamePath(before.best[old_next],
                                      after.best[old_next]);
      }
      if (old_option_intact) {
        out.kind = RouteChangeKind::kNewRoute;
        out.explanation = topology.GetPop(hop).label +
                          " preferred a newly available route (new "
                          "adjacency or policy) while the old one was "
                          "still usable";
      } else {
        out.kind = RouteChangeKind::kReroute;
        out.explanation = topology.GetPop(hop).label +
                          " switched its route towards the destination; "
                          "upstream networks reacted";
      }
      return out;
    }
    // No hop on the old path changed its own route, yet src's path
    // differs: a preferred route appeared along the new path.
  }

  // New-route case: walk the NEW path from the destination upward and
  // report the first hop whose route changed (the point where the new
  // option originates).
  if (new_route.has_value()) {
    const auto& path = new_route->pop_path;
    for (std::size_t i = path.size(); i-- > 0;) {
      const PopIndex hop = path[i];
      if (SamePath(before.best[hop], after.best[hop])) continue;
      out.culprit = hop;
      out.culprit_asn = topology.GetPop(hop).asn;
      out.kind = RouteChangeKind::kNewRoute;
      out.explanation = topology.GetPop(hop).label +
                        " gained a preferred route towards the "
                        "destination (new adjacency or policy)";
      return out;
    }
  }

  // Degenerate: only the source's own selection flipped (e.g. local-pref
  // change at the source).
  out.culprit = source;
  out.culprit_asn = topology.GetPop(source).asn;
  out.kind = old_route.has_value() && !new_route.has_value()
                 ? RouteChangeKind::kWithdrawal
                 : RouteChangeKind::kReroute;
  out.explanation = topology.GetPop(source).label +
                    " changed its own selection (local policy)";
  return out;
}

}  // namespace sisyphus::netsim
