// PoiRoot-style root-cause localization for interdomain path changes.
//
// The paper's §2 highlights PoiRoot (Javed et al., SIGCOMM'13) as an early
// success of causal reasoning in measurement: "models the causal structure
// of path changes and uses BGP poisoning as an instrumental variable to
// identify root causes." This module implements the core localization
// logic on converged routing tables:
//
//   A path from src to dst changes. Walking the OLD path from the
//   destination towards the source, the root cause is the first hop whose
//   own best route towards dst changed — everything upstream merely
//   *reacted* to that change (PoiRoot's "closest-to-destination changed
//   AS" rule). The change is classified as a withdrawal (the hop lost its
//   route), a reroute (the hop picked a different path), or an upstream
//   insertion (the new path diverges before any old-path hop changed —
//   the cause lies on the new path's first divergent hop, e.g. a
//   better route appearing).
#pragma once

#include <optional>
#include <string>

#include "netsim/bgp.h"

namespace sisyphus::netsim {

enum class RouteChangeKind {
  kWithdrawal,   ///< the culprit hop lost its route entirely
  kReroute,      ///< the culprit hop switched to a different route
  kNewRoute,     ///< a previously-absent, preferred route appeared
  kNoChange,     ///< the src->dst path did not actually change
};

const char* ToString(RouteChangeKind kind);

struct RootCauseResult {
  /// The PoP whose routing decision changed first along the old path
  /// (the "root cause" in PoiRoot's sense).
  PopIndex culprit = 0;
  core::Asn culprit_asn;
  RouteChangeKind kind = RouteChangeKind::kNoChange;
  std::string explanation;
};

/// Localizes the cause of a path change between two converged tables for
/// the same destination. `before` and `after` must be tables towards the
/// same destination (kInvalidArgument otherwise); kNotFound when src had
/// no route in either table.
core::Result<RootCauseResult> LocalizeRouteChange(const Topology& topology,
                                                  const RouteTable& before,
                                                  const RouteTable& after,
                                                  PopIndex source);

}  // namespace sisyphus::netsim
