// NetworkSimulator: ties topology, routing, latency and events into a
// discrete-time simulation with a route-change log.
//
// Endogeneity is first-class: traffic-engineering policies watch link
// congestion and shift local preference when it crosses a threshold —
// producing the C -> R edge of the paper's running example. The resulting
// route changes are logged with their trigger (congestion vs. scheduled
// event) so experiments can compare what a causal analyst would and would
// not be allowed to treat as exogenous.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "netsim/bgp.h"
#include "netsim/events.h"
#include "netsim/latency.h"
#include "netsim/topology.h"

namespace sisyphus::netsim {

/// Congestion-reactive traffic engineering at one PoP (EdgeFabric-style):
/// when the watched link's utilization exceeds `threshold`, a negative
/// preference delta is applied to it (traffic shifts away); the override
/// clears when utilization drops below threshold - hysteresis.
struct TePolicy {
  PopIndex pop = 0;
  core::LinkId watched_link;
  double threshold = 0.75;
  double hysteresis = 0.10;
  double shift_delta = -150.0;
  bool active = false;  ///< managed by the simulator
};

/// A logged routing-path change between a watched (source, destination).
struct RouteChangeRecord {
  core::SimTime time;
  PopIndex source = 0;
  PopIndex destination = 0;
  std::vector<core::Asn> old_asn_path;
  std::vector<core::Asn> new_asn_path;
  std::string trigger;   ///< event description or "te:<pop-label>"
  bool exogenous = false;
};

class NetworkSimulator {
 public:
  /// Takes ownership of the topology. `tick` is the simulation step.
  explicit NetworkSimulator(Topology topology,
                            core::SimTime tick = core::SimTime(5),
                            LatencyModelOptions latency_options = {});

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }
  BgpSimulator& bgp() { return bgp_; }
  LatencyModel& latency() { return latency_; }
  EventSchedule& schedule() { return schedule_; }

  core::SimTime Now() const { return now_; }

  /// Registers a congestion-reactive TE policy.
  void AddTePolicy(TePolicy policy);

  /// Watches (source, destination) for path changes; changes are appended
  /// to route_changes(). A failed initial route lookup is logged and the
  /// pair marked unreachable_at_watch (instead of silently dropping the
  /// error), so the first appearance of a route is a well-defined change
  /// from an explicit unreachable baseline.
  void WatchPath(PopIndex source, PopIndex destination);

  /// Watched pairs still in the unreachable-at-watch state.
  std::size_t UnreachableWatchCount() const;

  /// Advances simulation time to `until`, applying due events and TE
  /// policies each tick and logging path changes on watched pairs.
  void AdvanceTo(core::SimTime until);

  /// Applies an event immediately (at Now()), logging any path changes it
  /// causes. Used by the exogenous-intervention API (measure layer).
  void ApplyNow(const NetworkEvent& event);

  /// Best current route (kNotFound if unreachable).
  core::Result<BgpRoute> RouteBetween(
      PopIndex source, PopIndex destination,
      AddressFamily af = AddressFamily::kIpv4);

  /// Precomputes routing tables towards `destinations` across the thread
  /// pool (BgpSimulator::WarmRoutes). Call from a single thread; later
  /// RouteBetween queries — including concurrent ones from parallel probe
  /// tasks — then hit the warm cache.
  void WarmRoutes(const std::vector<PopIndex>& destinations,
                  AddressFamily af = AddressFamily::kIpv4);

  /// One RTT sample on the current best route at the current time.
  core::Result<double> SampleRtt(PopIndex source, PopIndex destination,
                                 core::Rng& rng,
                                 AddressFamily af = AddressFamily::kIpv4);

  /// True while `pop` is inside a kPopOutage window at time `t`. Routing is
  /// unaffected (the control plane stays up); measurement layers consult
  /// this to decide whether probes from/to the PoP can run.
  bool PopDark(PopIndex pop, core::SimTime t) const;

  const std::vector<RouteChangeRecord>& route_changes() const {
    return route_changes_;
  }

 private:
  void ApplyEvent(const NetworkEvent& event);
  void ApplyTePolicies();
  void RecordPathChanges(const std::string& trigger, bool exogenous);

  Topology topology_;
  BgpSimulator bgp_;
  LatencyModel latency_;
  EventSchedule schedule_;
  core::SimTime now_{0};
  core::SimTime tick_{5};
  std::vector<TePolicy> te_policies_;

  struct WatchedPair {
    PopIndex source;
    PopIndex destination;
    std::vector<core::Asn> last_asn_path;  ///< empty = unreachable/unknown
    /// The initial route lookup failed; cleared when a route first appears.
    bool unreachable_at_watch = false;
  };
  std::vector<WatchedPair> watched_;
  std::vector<RouteChangeRecord> route_changes_;

  struct PopOutage {
    PopIndex pop = 0;
    core::SimTime start, end;
  };
  std::vector<PopOutage> pop_outages_;
};

}  // namespace sisyphus::netsim
