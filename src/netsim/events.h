// Network events: the exogenous and endogenous shocks the paper's causal
// analyses feed on.
//
// Every event carries an `exogenous` flag. Exogenous events (scheduled
// maintenance, regulator-imposed policy shifts, new IXP peering going
// live) arrive independently of network state and are candidate
// instruments / natural experiments; endogenous events (TE reacting to
// congestion) are exactly the kind of variation that *breaks* the
// exclusion restriction (§3).
#pragma once

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/ids.h"
#include "core/sim_time.h"
#include "netsim/topology.h"

namespace sisyphus::netsim {

enum class EventType {
  kLinkDown,
  kLinkUp,
  kLocalPrefChange,   ///< set a (pop, link) preference delta
  kLocalPrefClear,
  kCongestionShock,   ///< extra utilization on a link for a window
  kPoisonAsns,        ///< origin poisons ASNs in its announcements
  kClearPoison,
  kPopOutage,         ///< a PoP goes dark (no probes in/out) for a window
};

const char* ToString(EventType type);

struct NetworkEvent {
  core::SimTime time;
  EventType type = EventType::kLinkDown;
  bool exogenous = true;
  std::string description;

  // Parameters (used per type).
  std::optional<core::LinkId> link;
  PopIndex pop = 0;               ///< kLocalPrefChange/Clear, kPopOutage
  double pref_delta = 0.0;        ///< kLocalPrefChange
  core::SimTime shock_end;        ///< kCongestionShock / kPopOutage window end
  double shock_extra = 0.0;       ///< kCongestionShock utilization bump
  PopIndex destination = 0;       ///< kPoisonAsns origin
  std::set<core::Asn> asns;       ///< kPoisonAsns
};

/// Time-ordered event queue.
class EventSchedule {
 public:
  void Add(NetworkEvent event);

  /// Events with time < cutoff, in time order; removed from the queue.
  std::vector<NetworkEvent> PopUntil(core::SimTime cutoff);

  std::size_t pending() const { return events_.size(); }

 private:
  std::vector<NetworkEvent> events_;  // kept sorted by time
};

}  // namespace sisyphus::netsim
