// The South-Africa / NAPAfrica scenario behind the Table 1 reproduction.
//
// The paper analyzes M-Lab speed tests from South African ⟨ASN, city⟩
// units, eight of which began crossing the NAPAfrica-JNB IXP in June 2025.
// Real M-Lab data is unavailable here, so this scenario builds a synthetic
// South African edge: a content/M-Lab destination in Johannesburg, two
// domestic transit providers, one global transit provider that trombones
// via London, the NAPAfrica-JNB IXP, the paper's eight treated
// ⟨ASN, city⟩ access units, and a ~30-unit donor pool that never touches
// the IXP.
//
// Treatment is modeled faithfully to the operational reality: each treated
// ISP pre-provisions a peering link to the content network across the IXP
// LAN (link exists but is down), and a kLinkUp event at the treatment time
// brings the session live. Peer routes beat provider routes under
// Gao–Rexford, so the path shifts onto the IXP — and the traceroute
// detector (sisyphus::measure) starts seeing 196.60.x.x hops exactly like
// the paper's PeeringDB matching.
//
// Per-pair knobs (ixp_extra_ms, transit congestion) calibrate the *sign
// and rough size* of each unit's RTT change to Table 1's: small, mixed,
// mostly statistically indistinguishable from donor-pool noise.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/sim_time.h"
#include "netsim/simulator.h"

namespace sisyphus::netsim {

/// One treated ⟨ASN, city⟩ unit.
struct TreatedUnit {
  std::string name;        ///< "3741 / East London"
  core::Asn asn;
  std::string city;
  PopIndex access_pop = 0;     ///< the user-facing PoP
  core::LinkId ixp_link;       ///< the pre-provisioned peering link
  double paper_delta_ms = 0.0; ///< Table 1's reported RTT change
};

struct ScenarioZaOptions {
  std::size_t donor_units = 30;
  core::SimTime treatment_time = core::SimTime::FromDays(28);
  core::SimTime horizon = core::SimTime::FromDays(56);
  std::uint64_t seed = 2025;
};

/// The built scenario: simulator plus the handles experiments need.
struct ScenarioZa {
  std::unique_ptr<NetworkSimulator> simulator;
  ScenarioZaOptions options;

  PopIndex content_jnb = 0;      ///< destination of every speed test
  core::IxpId napafrica_jnb;
  std::vector<TreatedUnit> treated;
  /// Donor ⟨ASN, city⟩ access PoPs (never cross the IXP).
  std::vector<PopIndex> donors;
  /// Label "ASN / City" per donor, aligned with `donors`.
  std::vector<std::string> donor_names;
};

/// Builds the scenario. The simulator starts at t = 0 with all treatment
/// links down and kLinkUp events queued at options.treatment_time.
ScenarioZa BuildScenarioZa(const ScenarioZaOptions& options = {});

}  // namespace sisyphus::netsim
