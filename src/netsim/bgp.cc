#include "netsim/bgp.h"

#include <algorithm>
#include <cstdlib>

#include "core/error.h"
#include "core/logging.h"
#include "core/parallel.h"
#include "obs/metrics.h"

namespace sisyphus::netsim {

using core::Asn;
using core::Error;
using core::ErrorCode;
using core::LinkId;
using core::Result;

const char* ToString(AddressFamily af) {
  switch (af) {
    case AddressFamily::kIpv4: return "ipv4";
    case AddressFamily::kIpv6: return "ipv6";
  }
  return "?";
}

const char* ToString(RouteClass cls) {
  switch (cls) {
    case RouteClass::kSelf: return "self";
    case RouteClass::kCustomer: return "customer";
    case RouteClass::kPeer: return "peer";
    case RouteClass::kProvider: return "provider";
  }
  return "?";
}

double BasePreference(RouteClass cls) {
  switch (cls) {
    case RouteClass::kSelf: return 400.0;
    case RouteClass::kCustomer: return 300.0;
    case RouteClass::kPeer: return 200.0;
    case RouteClass::kProvider: return 100.0;
  }
  return 0.0;
}

bool BgpRoute::CrossesAsn(Asn asn) const {
  return std::find(asn_path.begin(), asn_path.end(), asn) != asn_path.end();
}

bool BgpRoute::CrossesIxp(const Topology& topology, core::IxpId ixp) const {
  for (LinkId link : links) {
    const auto& l = topology.GetLink(link);
    if (l.ixp.has_value() && *l.ixp == ixp) return true;
  }
  return false;
}

std::string BgpRoute::ToText(const Topology& topology) const {
  std::string out;
  for (std::size_t i = 0; i < pop_path.size(); ++i) {
    if (i > 0) out += " ";
    out += topology.GetPop(pop_path[i]).label;
  }
  out += " [" + std::string(ToString(cls)) + "]";
  return out;
}

bool operator==(const BgpRoute& a, const BgpRoute& b) {
  return a.preference == b.preference && a.cls == b.cls &&
         a.pop_path == b.pop_path && a.asn_path == b.asn_path &&
         a.links == b.links;
}

bool SameRoutes(const RouteTable& a, const RouteTable& b) {
  if (a.destination != b.destination) return false;
  if (a.best.size() != b.best.size()) return false;
  for (std::size_t i = 0; i < a.best.size(); ++i) {
    if (a.best[i].has_value() != b.best[i].has_value()) return false;
    if (a.best[i].has_value() && !(*a.best[i] == *b.best[i])) return false;
  }
  return true;
}

namespace {

/// Differential-check override: -1 = honour SISYPHUS_BGP_CHECK, 0/1 force.
int g_differential_check_override = -1;

}  // namespace

bool BgpSimulator::DifferentialCheckEnabled() {
  if (g_differential_check_override >= 0) {
    return g_differential_check_override != 0;
  }
  static const bool from_env = [] {
    const char* env = std::getenv("SISYPHUS_BGP_CHECK");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return from_env;
}

void BgpSimulator::SetDifferentialCheckForTest(int mode) {
  g_differential_check_override = mode;
}

BgpSimulator::BgpSimulator(const Topology& topology) : topology_(topology) {}

void BgpSimulator::SetLocalPrefOverride(PopIndex pop, LinkId link,
                                        double delta) {
  pref_overrides_[{pop, link}] = delta;
  // Only `pop`'s selection function changed: every cached table is still a
  // fixed point everywhere else, so reconverge from a frontier of {pop}.
  std::vector<CacheKey> keys;
  {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    keys.reserve(cache_.size());
    for (const auto& [key, table] : cache_) keys.push_back(key);
  }
  RepairTables(keys, {pop}, "local_pref_set");
}

void BgpSimulator::ClearLocalPrefOverride(PopIndex pop, LinkId link) {
  pref_overrides_.erase({pop, link});
  std::vector<CacheKey> keys;
  {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    keys.reserve(cache_.size());
    for (const auto& [key, table] : cache_) keys.push_back(key);
  }
  RepairTables(keys, {pop}, "local_pref_clear");
}

void BgpSimulator::SetPoisonedAsns(PopIndex destination,
                                   std::set<Asn> asns) {
  poisoned_[destination] = std::move(asns);
  std::size_t dropped = 0;
  std::size_t retained = 0;
  {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    for (AddressFamily af : {AddressFamily::kIpv4, AddressFamily::kIpv6}) {
      const CacheKey key{destination, af};
      if (cache_.count(key) > 0) {
        EraseTableLocked(key);
        ++dropped;
      }
    }
    retained = cache_.size();
  }
  SISYPHUS_METRIC_COUNT("netsim.bgp.invalidated_destinations", dropped);
  SISYPHUS_METRIC_COUNT("netsim.bgp.retained_destinations", retained);
  (SISYPHUS_LOG(kDebug) << "bgp reconvergence scope")
      .With("trigger", "poison_set")
      .With("invalidated", static_cast<std::uint64_t>(dropped))
      .With("retained", static_cast<std::uint64_t>(retained));
  if (DifferentialCheckEnabled()) RunDifferentialCheck("poison_set");
}

void BgpSimulator::ClearPoisonedAsns(PopIndex destination) {
  poisoned_.erase(destination);
  std::size_t dropped = 0;
  std::size_t retained = 0;
  {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    for (AddressFamily af : {AddressFamily::kIpv4, AddressFamily::kIpv6}) {
      const CacheKey key{destination, af};
      if (cache_.count(key) > 0) {
        EraseTableLocked(key);
        ++dropped;
      }
    }
    retained = cache_.size();
  }
  SISYPHUS_METRIC_COUNT("netsim.bgp.invalidated_destinations", dropped);
  SISYPHUS_METRIC_COUNT("netsim.bgp.retained_destinations", retained);
  (SISYPHUS_LOG(kDebug) << "bgp reconvergence scope")
      .With("trigger", "poison_clear")
      .With("invalidated", static_cast<std::uint64_t>(dropped))
      .With("retained", static_cast<std::uint64_t>(retained));
  if (DifferentialCheckEnabled()) RunDifferentialCheck("poison_clear");
}

void BgpSimulator::ApplyLinkEvent(LinkId link) {
  const Link& l = topology_.GetLink(link);
  std::vector<CacheKey> affected;
  {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    if (l.up) {
      // A new adjacency can improve any table; the frontier confirms the
      // untouched ones converged in O(endpoint degree).
      affected.reserve(cache_.size());
      for (const auto& [key, table] : cache_) affected.push_back(key);
    } else if (const auto it = link_to_tables_.find(link);
               it != link_to_tables_.end()) {
      // Down: only tables whose best routes traverse the link can change —
      // removing a never-selected offer cannot flip any argmax.
      affected.assign(it->second.begin(), it->second.end());
    }
  }
  RepairTables(affected, {l.a, l.b}, l.up ? "link_up" : "link_down");
}

void BgpSimulator::InvalidateCache() {
  const std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
  link_to_tables_.clear();
  table_links_.clear();
}

std::size_t BgpSimulator::CachedTableCount() const {
  const std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.size();
}

const RouteTable& BgpSimulator::RoutesTo(PopIndex destination,
                                         AddressFamily af) {
  const auto key = std::make_pair(destination, af);
  {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = cache_.lower_bound(key);
    if (it != cache_.end() && it->first == key) {
      SISYPHUS_METRIC_COUNT("netsim.bgp.route_cache_hits", 1);
      return it->second;
    }
  }
  // Compute outside the lock (convergence is the expensive part; node
  // stability keeps concurrently returned references valid).
  SISYPHUS_METRIC_COUNT("netsim.bgp.route_cache_misses", 1);
  RouteTable table = Compute(destination, af);
  auto used = LinkCountsOf(table);
  const std::lock_guard<std::mutex> lock(cache_mu_);
  // Single walk: lower_bound doubles as the race re-probe and the
  // insertion hint (another thread may have filled the slot meanwhile).
  const auto it = cache_.lower_bound(key);
  if (it != cache_.end() && it->first == key) return it->second;
  const auto inserted = cache_.emplace_hint(it, key, std::move(table));
  ReindexTableLocked(key, std::move(used));
  return inserted->second;
}

void BgpSimulator::WarmRoutes(const std::vector<PopIndex>& destinations,
                              AddressFamily af) {
  // Cold destinations, deduplicated, in first-appearance order.
  std::vector<PopIndex> cold;
  {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    for (PopIndex destination : destinations) {
      if (cache_.count({destination, af}) > 0) continue;
      if (std::find(cold.begin(), cold.end(), destination) != cold.end()) {
        continue;
      }
      cold.push_back(destination);
    }
  }
  if (cold.empty()) return;
  auto tables = core::ParallelMap(
      cold.size(), [&](std::size_t i) { return Compute(cold[i], af); });
  const std::lock_guard<std::mutex> lock(cache_mu_);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    const CacheKey key{cold[i], af};
    const auto it = cache_.lower_bound(key);
    if (it != cache_.end() && it->first == key) continue;
    auto used = LinkCountsOf(tables[i]);
    cache_.emplace_hint(it, key, std::move(tables[i]));
    ReindexTableLocked(key, std::move(used));
  }
}

Result<BgpRoute> BgpSimulator::Route(PopIndex source, PopIndex destination,
                                     AddressFamily af) {
  const RouteTable& table = RoutesTo(destination, af);
  if (source >= table.best.size() || !table.best[source].has_value()) {
    return Error(ErrorCode::kNotFound,
                 "Route: " + topology_.GetPop(source).label +
                     " cannot reach " + topology_.GetPop(destination).label);
  }
  return *table.best[source];
}

namespace {

/// Strict "better" under BGP selection: preference, then AS-path length,
/// then PoP-path length, then lowest next-hop PoP index (determinism).
bool Better(const BgpRoute& a, const BgpRoute& b) {
  if (a.preference != b.preference) return a.preference > b.preference;
  if (a.asn_path.size() != b.asn_path.size())
    return a.asn_path.size() < b.asn_path.size();
  if (a.pop_path.size() != b.pop_path.size())
    return a.pop_path.size() < b.pop_path.size();
  // next hop = second element (paths of length 1 only at the destination).
  const PopIndex na = a.pop_path.size() > 1 ? a.pop_path[1] : a.pop_path[0];
  const PopIndex nb = b.pop_path.size() > 1 ? b.pop_path[1] : b.pop_path[0];
  return na < nb;
}

}  // namespace

std::optional<BgpRoute> BgpSimulator::BestOfferAt(const RouteTable& table,
                                                  PopIndex u,
                                                  AddressFamily af) const {
  const Asn u_asn = topology_.GetPop(u).asn;
  // Rebuild the best route from live neighbor offers, so withdrawals
  // (link down, neighbor lost its route) propagate.
  std::optional<BgpRoute> best;
  for (LinkId link : topology_.LinksOf(u)) {
    const Link& l = topology_.GetLink(link);
    if (!l.up) continue;
    if (af == AddressFamily::kIpv6 && !l.ipv6) continue;
    const PopIndex v = topology_.Neighbor(link, u);
    const auto& v_route = table.best[v];
    if (!v_route.has_value()) continue;

    const bool intra = l.relationship == Relationship::kIntraAs;
    // Export policy at v: always to customers and over intra-AS
    // links; otherwise only self/customer routes (valley-free).
    const bool u_is_customer_of_v = topology_.IsProviderSide(link, v);
    const bool v_exports =
        intra || u_is_customer_of_v ||
        v_route->cls == RouteClass::kSelf ||
        v_route->cls == RouteClass::kCustomer;
    if (!v_exports) continue;

    // Loop prevention.
    if (intra) {
      if (std::find(v_route->pop_path.begin(), v_route->pop_path.end(),
                    u) != v_route->pop_path.end()) {
        continue;
      }
    } else if (v_route->CrossesAsn(u_asn)) {
      continue;
    }

    BgpRoute candidate;
    candidate.pop_path.reserve(v_route->pop_path.size() + 1);
    candidate.pop_path.push_back(u);
    candidate.pop_path.insert(candidate.pop_path.end(),
                              v_route->pop_path.begin(),
                              v_route->pop_path.end());
    candidate.links.reserve(v_route->links.size() + 1);
    candidate.links.push_back(link);
    candidate.links.insert(candidate.links.end(), v_route->links.begin(),
                           v_route->links.end());
    candidate.asn_path = v_route->asn_path;
    if (candidate.asn_path.front() != u_asn) {
      candidate.asn_path.insert(candidate.asn_path.begin(), u_asn);
    }
    if (intra) {
      candidate.cls = v_route->cls;  // iBGP carries the class along
    } else if (topology_.IsProviderSide(link, u)) {
      candidate.cls = RouteClass::kCustomer;  // learned from customer
    } else if (l.relationship == Relationship::kPeerToPeer) {
      candidate.cls = RouteClass::kPeer;
    } else {
      candidate.cls = RouteClass::kProvider;
    }
    candidate.preference = BasePreference(candidate.cls);
    if (const auto it = pref_overrides_.find({u, link});
        it != pref_overrides_.end()) {
      candidate.preference += it->second;
    }
    if (!best.has_value() || Better(candidate, *best)) {
      best = std::move(candidate);
    }
  }
  return best;
}

RouteTable BgpSimulator::Compute(PopIndex destination,
                                 AddressFamily af) const {
  const std::size_t n = topology_.PopCount();
  SISYPHUS_REQUIRE(destination < n, "Compute: bad destination");
  RouteTable table;
  table.destination = destination;
  table.best.assign(n, std::nullopt);

  BgpRoute self;
  self.pop_path = {destination};
  self.asn_path = {topology_.GetPop(destination).asn};
  self.cls = RouteClass::kSelf;
  self.preference = BasePreference(RouteClass::kSelf);
  table.best[destination] = std::move(self);

  const std::set<Asn>* poisoned = nullptr;
  if (const auto it = poisoned_.find(destination); it != poisoned_.end()) {
    poisoned = &it->second;
  }

  // Synchronous sweeps to a fixed point. Gao–Rexford preferences make the
  // system stable; the cap is a defensive bound.
  const std::size_t max_sweeps = n + 2;
  bool changed = true;
  while (changed && table.sweeps < max_sweeps) {
    changed = false;
    ++table.sweeps;
    for (PopIndex u = 0; u < n; ++u) {
      if (u == destination) continue;
      if (poisoned != nullptr &&
          poisoned->count(topology_.GetPop(u).asn) > 0) {
        continue;
      }
      std::optional<BgpRoute> best = BestOfferAt(table, u, af);
      // Adopt strictly better routes; also drop a best route whose next
      // hop link went down (handled implicitly: the candidate scan above
      // rebuilds from live neighbors only, so compare against rebuilt).
      if (best.has_value() != table.best[u].has_value() ||
          (best.has_value() && table.best[u].has_value() &&
           best->pop_path != table.best[u]->pop_path)) {
        table.best[u] = std::move(best);
        changed = true;
      }
    }
  }
  SISYPHUS_METRIC_COUNT("netsim.bgp.tables_computed", 1);
  SISYPHUS_METRIC_OBSERVE("netsim.bgp.convergence_sweeps",
                          static_cast<double>(table.sweeps));
  return table;
}

RepairStats BgpSimulator::RecomputeFrom(
    RouteTable& table, const std::vector<LinkId>& changed_links,
    AddressFamily af) const {
  std::vector<PopIndex> seeds;
  seeds.reserve(changed_links.size() * 2);
  for (LinkId link : changed_links) {
    const Link& l = topology_.GetLink(link);
    seeds.push_back(l.a);
    seeds.push_back(l.b);
  }
  return RepairInPlace(table, af, seeds);
}

RepairStats BgpSimulator::RepairInPlace(RouteTable& table, AddressFamily af,
                                        const std::vector<PopIndex>& seeds,
                                        LinkDeltas* deltas) const {
  const std::size_t n = topology_.PopCount();
  SISYPHUS_REQUIRE(table.best.size() == n, "RepairInPlace: table size");
  const PopIndex destination = table.destination;
  const std::set<Asn>* poisoned = nullptr;
  if (const auto it = poisoned_.find(destination); it != poisoned_.end()) {
    poisoned = &it->second;
  }

  RepairStats stats;
  // Frontier rounds mirror Compute's Gauss–Seidel sweeps: within a round
  // PoPs are processed in ascending index; a change at u is visible to
  // higher-index neighbors in the same round and to lower-index neighbors
  // in the next one — so the repair walks exactly the subsequence of
  // sweep evaluations whose inputs could have changed, and converges to
  // the same fixed point a full sweep would.
  std::set<PopIndex> current(seeds.begin(), seeds.end()), next;
  const std::size_t max_rounds = n + 2;
  while (!current.empty() && stats.rounds < max_rounds) {
    ++stats.rounds;
    while (!current.empty()) {
      const PopIndex u = *current.begin();
      current.erase(current.begin());
      if (u == destination) continue;
      if (poisoned != nullptr &&
          poisoned->count(topology_.GetPop(u).asn) > 0) {
        continue;
      }
      ++stats.pops_recomputed;
      std::optional<BgpRoute> best = BestOfferAt(table, u, af);
      const bool path_changed =
          best.has_value() != table.best[u].has_value() ||
          (best.has_value() && best->pop_path != table.best[u]->pop_path);
      // Unlike Compute's sweep (where a same-path candidate is always
      // field-identical), a policy change can reprice the same path, so
      // adopt on any route-content difference.
      const bool route_changed =
          path_changed ||
          (best.has_value() && !(*best == *table.best[u]));
      if (route_changed) {
        // Index deltas: links change only with the path (a repricing of
        // the same path keeps the same links). Multiple revisions of one
        // PoP across rounds accumulate; the refcounts net out.
        if (deltas != nullptr && path_changed) {
          if (table.best[u].has_value()) {
            deltas->removed.insert(deltas->removed.end(),
                                   table.best[u]->links.begin(),
                                   table.best[u]->links.end());
          }
          if (best.has_value()) {
            deltas->added.insert(deltas->added.end(), best->links.begin(),
                                 best->links.end());
          }
        }
        table.best[u] = std::move(best);
        stats.changed = true;
      }
      // Only a path/presence change alters what u exports to neighbors
      // (class and loop sets ride the path; the preference a neighbor
      // assigns is its own).
      if (!path_changed) continue;
      for (LinkId link : topology_.LinksOf(u)) {
        const Link& l = topology_.GetLink(link);
        if (!l.up) continue;
        if (af == AddressFamily::kIpv6 && !l.ipv6) continue;
        const PopIndex v = topology_.Neighbor(link, u);
        if (v == destination) continue;
        if (v > u) {
          current.insert(v);  // same round, still ahead of the cursor
        } else {
          next.insert(v);
        }
      }
    }
    current.swap(next);
  }
  if (!current.empty()) {
    // Defensive cap hit without convergence — recompute from scratch so
    // the correctness bar holds no matter what.
    table = Compute(destination, af);
    stats.fell_back = true;
    stats.changed = true;
  }
  return stats;
}

void BgpSimulator::RepairTables(const std::vector<CacheKey>& keys,
                                const std::vector<PopIndex>& seeds,
                                const char* trigger) {
  std::size_t retained = 0;
  std::size_t frontier_pops = 0;
  std::size_t tables_changed = 0;
  if (!keys.empty()) {
    // Distinct tasks touch distinct map nodes; event processing is serial
    // by design, so no queries race these in-place repairs (DESIGN.md §7).
    auto results = core::ParallelMap(keys.size(), [&](std::size_t i) {
      std::pair<RepairStats, LinkDeltas> result;
      result.first = RepairInPlace(cache_.at(keys[i]), keys[i].second, seeds,
                                   &result.second);
      return result;
    });
    const std::lock_guard<std::mutex> lock(cache_mu_);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const RepairStats& stats = results[i].first;
      frontier_pops += stats.pops_recomputed;
      if (stats.changed) {
        ++tables_changed;
        if (stats.fell_back) {
          // Scratch recomputation invalidates the accumulated deltas.
          ReindexTableLocked(keys[i], LinkCountsOf(cache_.at(keys[i])));
        } else {
          ApplyLinkDeltasLocked(keys[i], results[i].second);
        }
      }
    }
    retained = cache_.size() - keys.size();
  } else {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    retained = cache_.size();
  }
  SISYPHUS_METRIC_COUNT("netsim.bgp.invalidated_destinations", keys.size());
  SISYPHUS_METRIC_COUNT("netsim.bgp.retained_destinations", retained);
  SISYPHUS_METRIC_COUNT("netsim.bgp.frontier_pops", frontier_pops);
  (SISYPHUS_LOG(kDebug) << "bgp reconvergence scope")
      .With("trigger", trigger)
      .With("repaired", static_cast<std::uint64_t>(keys.size()))
      .With("retained", static_cast<std::uint64_t>(retained))
      .With("changed", static_cast<std::uint64_t>(tables_changed))
      .With("frontier_pops", static_cast<std::uint64_t>(frontier_pops));
  if (DifferentialCheckEnabled()) RunDifferentialCheck(trigger);
}

void BgpSimulator::RunDifferentialCheck(const char* trigger) const {
  std::vector<CacheKey> keys;
  {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    keys.reserve(cache_.size());
    for (const auto& [key, table] : cache_) keys.push_back(key);
  }
  auto fresh = core::ParallelMap(keys.size(), [&](std::size_t i) {
    return Compute(keys[i].first, keys[i].second);
  });
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    SISYPHUS_REQUIRE(
        SameRoutes(cache_.at(keys[i]), fresh[i]),
        std::string("SISYPHUS_BGP_CHECK: incremental table diverged from "
                    "scratch after ") +
            trigger + " for destination " +
            topology_.GetPop(keys[i].first).label + " (" +
            ToString(keys[i].second) + ")");
  }
}

std::map<LinkId, std::uint32_t> BgpSimulator::LinkCountsOf(
    const RouteTable& table) const {
  std::map<LinkId, std::uint32_t> counts;
  for (const auto& route : table.best) {
    if (!route.has_value()) continue;
    for (LinkId link : route->links) ++counts[link];
  }
  return counts;
}

void BgpSimulator::ReindexTableLocked(
    const CacheKey& key, std::map<LinkId, std::uint32_t> counts) {
  auto& old_counts = table_links_[key];
  for (const auto& [link, count] : old_counts) {
    if (counts.count(link) > 0) continue;
    const auto it = link_to_tables_.find(link);
    if (it == link_to_tables_.end()) continue;
    it->second.erase(key);
    if (it->second.empty()) link_to_tables_.erase(it);
  }
  for (const auto& [link, count] : counts) {
    if (old_counts.count(link) == 0) link_to_tables_[link].insert(key);
  }
  old_counts = std::move(counts);
}

void BgpSimulator::ApplyLinkDeltasLocked(const CacheKey& key,
                                         const LinkDeltas& deltas) {
  auto& counts = table_links_[key];
  // Additions first: a link swapped between two routes in one repair then
  // never transits zero, avoiding index churn.
  for (LinkId link : deltas.added) {
    if (++counts[link] == 1) link_to_tables_[link].insert(key);
  }
  for (LinkId link : deltas.removed) {
    const auto it = counts.find(link);
    SISYPHUS_REQUIRE(it != counts.end() && it->second > 0,
                     "ApplyLinkDeltas: link refcount underflow");
    if (--it->second == 0) {
      counts.erase(it);
      const auto lt = link_to_tables_.find(link);
      if (lt != link_to_tables_.end()) {
        lt->second.erase(key);
        if (lt->second.empty()) link_to_tables_.erase(lt);
      }
    }
  }
}

void BgpSimulator::EraseTableLocked(const CacheKey& key) {
  if (const auto it = table_links_.find(key); it != table_links_.end()) {
    for (const auto& [link, count] : it->second) {
      const auto lt = link_to_tables_.find(link);
      if (lt == link_to_tables_.end()) continue;
      lt->second.erase(key);
      if (lt->second.empty()) link_to_tables_.erase(lt);
    }
    table_links_.erase(it);
  }
  cache_.erase(key);
}

}  // namespace sisyphus::netsim
