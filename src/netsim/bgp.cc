#include "netsim/bgp.h"

#include <algorithm>

#include "core/error.h"
#include "core/parallel.h"
#include "obs/metrics.h"

namespace sisyphus::netsim {

using core::Asn;
using core::Error;
using core::ErrorCode;
using core::LinkId;
using core::Result;

const char* ToString(AddressFamily af) {
  switch (af) {
    case AddressFamily::kIpv4: return "ipv4";
    case AddressFamily::kIpv6: return "ipv6";
  }
  return "?";
}

const char* ToString(RouteClass cls) {
  switch (cls) {
    case RouteClass::kSelf: return "self";
    case RouteClass::kCustomer: return "customer";
    case RouteClass::kPeer: return "peer";
    case RouteClass::kProvider: return "provider";
  }
  return "?";
}

double BasePreference(RouteClass cls) {
  switch (cls) {
    case RouteClass::kSelf: return 400.0;
    case RouteClass::kCustomer: return 300.0;
    case RouteClass::kPeer: return 200.0;
    case RouteClass::kProvider: return 100.0;
  }
  return 0.0;
}

bool BgpRoute::CrossesAsn(Asn asn) const {
  return std::find(asn_path.begin(), asn_path.end(), asn) != asn_path.end();
}

bool BgpRoute::CrossesIxp(const Topology& topology, core::IxpId ixp) const {
  for (LinkId link : links) {
    const auto& l = topology.GetLink(link);
    if (l.ixp.has_value() && *l.ixp == ixp) return true;
  }
  return false;
}

std::string BgpRoute::ToText(const Topology& topology) const {
  std::string out;
  for (std::size_t i = 0; i < pop_path.size(); ++i) {
    if (i > 0) out += " ";
    out += topology.GetPop(pop_path[i]).label;
  }
  out += " [" + std::string(ToString(cls)) + "]";
  return out;
}

BgpSimulator::BgpSimulator(const Topology& topology) : topology_(topology) {}

void BgpSimulator::SetLocalPrefOverride(PopIndex pop, LinkId link,
                                        double delta) {
  pref_overrides_[{pop, link}] = delta;
  InvalidateCache();
}

void BgpSimulator::ClearLocalPrefOverride(PopIndex pop, LinkId link) {
  pref_overrides_.erase({pop, link});
  InvalidateCache();
}

void BgpSimulator::SetPoisonedAsns(PopIndex destination,
                                   std::set<Asn> asns) {
  poisoned_[destination] = std::move(asns);
  const std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.erase({destination, AddressFamily::kIpv4});
  cache_.erase({destination, AddressFamily::kIpv6});
}

void BgpSimulator::ClearPoisonedAsns(PopIndex destination) {
  poisoned_.erase(destination);
  const std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.erase({destination, AddressFamily::kIpv4});
  cache_.erase({destination, AddressFamily::kIpv6});
}

void BgpSimulator::InvalidateCache() {
  const std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
}

const RouteTable& BgpSimulator::RoutesTo(PopIndex destination,
                                         AddressFamily af) {
  const auto key = std::make_pair(destination, af);
  {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      SISYPHUS_METRIC_COUNT("netsim.bgp.route_cache_hits", 1);
      return it->second;
    }
  }
  // Compute outside the lock (convergence is the expensive part; node
  // stability keeps concurrently returned references valid).
  SISYPHUS_METRIC_COUNT("netsim.bgp.route_cache_misses", 1);
  RouteTable table = Compute(destination, af);
  const std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.emplace(key, std::move(table)).first->second;
}

void BgpSimulator::WarmRoutes(const std::vector<PopIndex>& destinations,
                              AddressFamily af) {
  // Cold destinations, deduplicated, in first-appearance order.
  std::vector<PopIndex> cold;
  {
    const std::lock_guard<std::mutex> lock(cache_mu_);
    for (PopIndex destination : destinations) {
      if (cache_.count({destination, af}) > 0) continue;
      if (std::find(cold.begin(), cold.end(), destination) != cold.end()) {
        continue;
      }
      cold.push_back(destination);
    }
  }
  if (cold.empty()) return;
  auto tables = core::ParallelMap(
      cold.size(), [&](std::size_t i) { return Compute(cold[i], af); });
  const std::lock_guard<std::mutex> lock(cache_mu_);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    cache_.emplace(std::make_pair(cold[i], af), std::move(tables[i]));
  }
}

Result<BgpRoute> BgpSimulator::Route(PopIndex source, PopIndex destination,
                                     AddressFamily af) {
  const RouteTable& table = RoutesTo(destination, af);
  if (source >= table.best.size() || !table.best[source].has_value()) {
    return Error(ErrorCode::kNotFound,
                 "Route: " + topology_.GetPop(source).label +
                     " cannot reach " + topology_.GetPop(destination).label);
  }
  return *table.best[source];
}

namespace {

/// Strict "better" under BGP selection: preference, then AS-path length,
/// then PoP-path length, then lowest next-hop PoP index (determinism).
bool Better(const BgpRoute& a, const BgpRoute& b) {
  if (a.preference != b.preference) return a.preference > b.preference;
  if (a.asn_path.size() != b.asn_path.size())
    return a.asn_path.size() < b.asn_path.size();
  if (a.pop_path.size() != b.pop_path.size())
    return a.pop_path.size() < b.pop_path.size();
  // next hop = second element (paths of length 1 only at the destination).
  const PopIndex na = a.pop_path.size() > 1 ? a.pop_path[1] : a.pop_path[0];
  const PopIndex nb = b.pop_path.size() > 1 ? b.pop_path[1] : b.pop_path[0];
  return na < nb;
}

}  // namespace

RouteTable BgpSimulator::Compute(PopIndex destination,
                                 AddressFamily af) const {
  const std::size_t n = topology_.PopCount();
  SISYPHUS_REQUIRE(destination < n, "Compute: bad destination");
  RouteTable table;
  table.destination = destination;
  table.best.assign(n, std::nullopt);

  BgpRoute self;
  self.pop_path = {destination};
  self.asn_path = {topology_.GetPop(destination).asn};
  self.cls = RouteClass::kSelf;
  self.preference = BasePreference(RouteClass::kSelf);
  table.best[destination] = std::move(self);

  const std::set<Asn>* poisoned = nullptr;
  if (const auto it = poisoned_.find(destination); it != poisoned_.end()) {
    poisoned = &it->second;
  }

  // Synchronous sweeps to a fixed point. Gao–Rexford preferences make the
  // system stable; the cap is a defensive bound.
  const std::size_t max_sweeps = n + 2;
  bool changed = true;
  while (changed && table.sweeps < max_sweeps) {
    changed = false;
    ++table.sweeps;
    for (PopIndex u = 0; u < n; ++u) {
      if (u == destination) continue;
      const Asn u_asn = topology_.GetPop(u).asn;
      if (poisoned != nullptr && poisoned->count(u_asn) > 0) continue;

      // Rebuild the best route from live neighbor offers each sweep, so
      // withdrawals (link down, neighbor lost its route) propagate.
      std::optional<BgpRoute> best;
      for (LinkId link : topology_.LinksOf(u)) {
        const Link& l = topology_.GetLink(link);
        if (!l.up) continue;
        if (af == AddressFamily::kIpv6 && !l.ipv6) continue;
        const PopIndex v = topology_.Neighbor(link, u);
        const auto& v_route = table.best[v];
        if (!v_route.has_value()) continue;

        const bool intra = l.relationship == Relationship::kIntraAs;
        // Export policy at v: always to customers and over intra-AS
        // links; otherwise only self/customer routes (valley-free).
        const bool u_is_customer_of_v = topology_.IsProviderSide(link, v);
        const bool v_exports =
            intra || u_is_customer_of_v ||
            v_route->cls == RouteClass::kSelf ||
            v_route->cls == RouteClass::kCustomer;
        if (!v_exports) continue;

        // Loop prevention.
        if (intra) {
          if (std::find(v_route->pop_path.begin(), v_route->pop_path.end(),
                        u) != v_route->pop_path.end()) {
            continue;
          }
        } else if (v_route->CrossesAsn(u_asn)) {
          continue;
        }

        BgpRoute candidate;
        candidate.pop_path.reserve(v_route->pop_path.size() + 1);
        candidate.pop_path.push_back(u);
        candidate.pop_path.insert(candidate.pop_path.end(),
                                  v_route->pop_path.begin(),
                                  v_route->pop_path.end());
        candidate.links.reserve(v_route->links.size() + 1);
        candidate.links.push_back(link);
        candidate.links.insert(candidate.links.end(), v_route->links.begin(),
                               v_route->links.end());
        candidate.asn_path = v_route->asn_path;
        if (candidate.asn_path.front() != u_asn) {
          candidate.asn_path.insert(candidate.asn_path.begin(), u_asn);
        }
        if (intra) {
          candidate.cls = v_route->cls;  // iBGP carries the class along
        } else if (topology_.IsProviderSide(link, u)) {
          candidate.cls = RouteClass::kCustomer;  // learned from customer
        } else if (l.relationship == Relationship::kPeerToPeer) {
          candidate.cls = RouteClass::kPeer;
        } else {
          candidate.cls = RouteClass::kProvider;
        }
        candidate.preference = BasePreference(candidate.cls);
        if (const auto it = pref_overrides_.find({u, link});
            it != pref_overrides_.end()) {
          candidate.preference += it->second;
        }
        if (!best.has_value() || Better(candidate, *best)) {
          best = std::move(candidate);
        }
      }
      // Adopt strictly better routes; also drop a best route whose next
      // hop link went down (handled implicitly: the candidate scan above
      // rebuilds from live neighbors only, so compare against rebuilt).
      if (best.has_value() != table.best[u].has_value() ||
          (best.has_value() && table.best[u].has_value() &&
           best->pop_path != table.best[u]->pop_path)) {
        table.best[u] = best;
        changed = true;
      }
    }
  }
  SISYPHUS_METRIC_COUNT("netsim.bgp.tables_computed", 1);
  SISYPHUS_METRIC_OBSERVE("netsim.bgp.convergence_sweeps",
                          static_cast<double>(table.sweeps));
  return table;
}

}  // namespace sisyphus::netsim
