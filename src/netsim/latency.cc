#include "netsim/latency.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace sisyphus::netsim {

LatencyModel::LatencyModel(const Topology& topology,
                           LatencyModelOptions options)
    : topology_(topology), options_(options) {}

void LatencyModel::AddUtilizationShock(core::LinkId link, core::SimTime start,
                                       core::SimTime end, double extra) {
  SISYPHUS_REQUIRE(start <= end, "AddUtilizationShock: start > end");
  shocks_.push_back({link, start, end, extra});
}

void LatencyModel::ClearShocks() { shocks_.clear(); }

double LatencyModel::LinkUtilization(core::LinkId link,
                                     core::SimTime time) const {
  const Link& l = topology_.GetLink(link);
  // The profile's time zone follows the link's lower-index endpoint city.
  DiurnalProfile profile;
  profile.base_utilization = l.base_utilization;
  profile.diurnal_amplitude = l.diurnal_amplitude;
  profile.utc_offset_hours =
      topology_.cities().Get(topology_.GetPop(l.a).city).utc_offset_hours;
  profile.noise_sd = 0.0;
  double u = profile.MeanUtilization(time);
  for (const auto& shock : shocks_) {
    if (shock.link == link && shock.start <= time && time < shock.end) {
      u += shock.extra;
    }
  }
  return std::clamp(u, 0.0, 0.97);
}

double LatencyModel::LinkDelayMs(core::LinkId link, core::SimTime time) const {
  const Link& l = topology_.GetLink(link);
  const double rho = LinkUtilization(link, time);
  const double queue =
      std::min(options_.max_queue_ms,
               options_.queue_scale_ms * rho / std::max(0.03, 1.0 - rho));
  return l.propagation_ms + queue + options_.per_hop_ms;
}

double LatencyModel::LinkLossRate(core::LinkId link,
                                  core::SimTime time) const {
  const double rho = LinkUtilization(link, time);
  const double onset = options_.congestion_loss_onset;
  double loss = options_.base_loss;
  if (rho > onset && onset < 1.0) {
    const double over = (rho - onset) / (1.0 - onset);
    loss += options_.congestion_loss_scale * over * over;
  }
  return std::min(1.0, loss);
}

double LatencyModel::PathLossRate(const BgpRoute& route,
                                  core::SimTime time) const {
  double delivered = 1.0;
  for (core::LinkId link : route.links) {
    const double survive = 1.0 - LinkLossRate(link, time);
    delivered *= survive * survive;  // forward and return direction
  }
  return 1.0 - delivered;
}

double LatencyModel::PathRttMs(const BgpRoute& route,
                               core::SimTime time) const {
  double one_way = 0.0;
  for (core::LinkId link : route.links) one_way += LinkDelayMs(link, time);
  return 2.0 * one_way;
}

double LatencyModel::SampleRttMs(const BgpRoute& route, core::SimTime time,
                                 core::Rng& rng) const {
  const double mean = PathRttMs(route, time);
  const double jitter =
      options_.jitter_sigma > 0.0
          ? std::exp(rng.Gaussian(0.0, options_.jitter_sigma))
          : 1.0;
  return mean * jitter;
}

}  // namespace sisyphus::netsim
