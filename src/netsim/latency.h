// Link and path latency: propagation + utilization-driven queueing.
#pragma once

#include "core/rng.h"
#include "core/sim_time.h"
#include "netsim/bgp.h"
#include "netsim/topology.h"
#include "netsim/traffic.h"

namespace sisyphus::netsim {

struct LatencyModelOptions {
  /// Queueing delay at utilization rho: queue_scale_ms * rho / (1 - rho),
  /// the M/M/1 waiting-time shape, clamped at max_queue_ms.
  double queue_scale_ms = 0.6;
  double max_queue_ms = 60.0;
  /// Per-hop forwarding overhead.
  double per_hop_ms = 0.08;
  /// Multiplicative lognormal jitter sigma applied per path sample.
  double jitter_sigma = 0.04;
  /// Loss model: a noise floor plus congestion loss that switches on as
  /// utilization approaches saturation (tail-drop shape):
  /// loss = base + scale * max(0, rho - onset)^2 / (1 - onset)^2.
  double base_loss = 2e-4;
  double congestion_loss_onset = 0.80;
  double congestion_loss_scale = 0.08;
};

/// Computes one-way / round-trip delays over converged BGP paths. Holds
/// references; topology must outlive it. Per-link utilization shocks can
/// be installed by the event layer (AddUtilizationShock).
class LatencyModel {
 public:
  LatencyModel(const Topology& topology, LatencyModelOptions options = {});

  /// Adds `extra` utilization on `link` during [start, end) — congestion
  /// shocks from events (failures elsewhere, maintenance reroutes, DDoS).
  void AddUtilizationShock(core::LinkId link, core::SimTime start,
                           core::SimTime end, double extra);
  void ClearShocks();

  /// Deterministic mean utilization of a link at `time` (profile + shocks).
  double LinkUtilization(core::LinkId link, core::SimTime time) const;

  /// Mean one-way delay of a link at `time` (no jitter).
  double LinkDelayMs(core::LinkId link, core::SimTime time) const;

  /// Packet-loss probability of a link at `time` (one direction).
  double LinkLossRate(core::LinkId link, core::SimTime time) const;

  /// End-to-end loss along a route (both directions, independent links):
  /// 1 - prod (1 - l_i)^2.
  double PathLossRate(const BgpRoute& route, core::SimTime time) const;

  /// Mean RTT along a converged route at `time` (no jitter): twice the
  /// one-way sum, assuming symmetric reverse routing.
  double PathRttMs(const BgpRoute& route, core::SimTime time) const;

  /// One sampled RTT: mean path RTT times lognormal jitter (rng).
  double SampleRttMs(const BgpRoute& route, core::SimTime time,
                     core::Rng& rng) const;

  const LatencyModelOptions& options() const { return options_; }

 private:
  struct Shock {
    core::LinkId link;
    core::SimTime start;
    core::SimTime end;
    double extra = 0.0;
  };

  const Topology& topology_;
  LatencyModelOptions options_;
  std::vector<Shock> shocks_;
};

}  // namespace sisyphus::netsim
