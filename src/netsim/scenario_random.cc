#include "netsim/scenario_random.h"

#include <cmath>

#include "core/error.h"
#include "core/rng.h"

namespace sisyphus::netsim {

namespace {
using core::Asn;
using core::CityId;

PopIndex MustPop(Topology& topo, Asn asn, CityId city, AsRole role) {
  auto pop = topo.AddPop(asn, city, role);
  SISYPHUS_REQUIRE(pop.ok(), "RandomInternet: AddPop failed");
  return pop.value();
}
}  // namespace

RandomInternet BuildRandomInternet(const RandomInternetOptions& options) {
  SISYPHUS_REQUIRE(options.tier1_count >= 1 && options.transit_count >= 1 &&
                       options.city_count >= 1,
                   "BuildRandomInternet: need at least one of each tier");
  core::Rng rng(options.seed);
  Topology topo;

  // Cities on a rough grid; time zones spread across the globe.
  std::vector<CityId> cities;
  for (std::size_t i = 0; i < options.city_count; ++i) {
    const double lat = -40.0 + 80.0 * rng.NextDouble();
    const double lon = -180.0 + 360.0 * rng.NextDouble();
    cities.push_back(topo.cities().Add(
        {"City" + std::to_string(i), {lat, lon}, std::floor(lon / 15.0)}));
  }
  auto random_city = [&] {
    return cities[static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(cities.size()) - 1))];
  };

  RandomInternet out;
  std::uint32_t next_asn = 1;

  // Tier-1 clique.
  for (std::size_t i = 0; i < options.tier1_count; ++i) {
    out.tier1.push_back(
        MustPop(topo, Asn{next_asn++}, random_city(), AsRole::kTransit));
  }
  for (std::size_t i = 0; i < out.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < out.tier1.size(); ++j) {
      SISYPHUS_REQUIRE(
          topo.AddLink(out.tier1[i], out.tier1[j], Relationship::kPeerToPeer)
              .ok(),
          "RandomInternet: tier1 mesh");
    }
  }

  // Regional transits: each buys from 1-2 tier-1s.
  for (std::size_t i = 0; i < options.transit_count; ++i) {
    const PopIndex node =
        MustPop(topo, Asn{next_asn++}, random_city(), AsRole::kTransit);
    out.transits.push_back(node);
    const auto up = static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(out.tier1.size()) - 1));
    (void)topo.AddLink(node, out.tier1[up],
                       Relationship::kCustomerToProvider);
    if (rng.Bernoulli(0.5) && out.tier1.size() > 1) {
      const auto up2 = (up + 1) % out.tier1.size();
      (void)topo.AddLink(node, out.tier1[up2],
                         Relationship::kCustomerToProvider);
    }
  }

  // IXPs in the first `ixp_count` cities.
  for (std::size_t i = 0; i < options.ixp_count && i < cities.size(); ++i) {
    out.ixps.push_back(
        topo.AddIxp("IXP-" + std::to_string(i), cities[i]));
  }

  auto attach_to_transit = [&](PopIndex node) {
    const auto up = static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(out.transits.size()) - 1));
    (void)topo.AddLink(node, out.transits[up],
                       Relationship::kCustomerToProvider);
    if (rng.Bernoulli(options.multihoming_probability) &&
        out.transits.size() > 1) {
      const auto up2 = (up + 1 + static_cast<std::size_t>(rng.UniformInt(
                                     0, static_cast<std::int64_t>(
                                            out.transits.size()) -
                                            2))) %
                       out.transits.size();
      (void)topo.AddLink(node, out.transits[up2],
                         Relationship::kCustomerToProvider);
    }
  };

  // Content networks.
  for (std::size_t i = 0; i < options.content_count; ++i) {
    const PopIndex node =
        MustPop(topo, Asn{next_asn++}, random_city(), AsRole::kContent);
    out.content.push_back(node);
    attach_to_transit(node);
  }

  // Access networks; some join their city's IXP, peering with the content
  // networks present there.
  for (std::size_t i = 0; i < options.access_count; ++i) {
    const CityId city = random_city();
    const PopIndex node =
        MustPop(topo, Asn{next_asn++}, city, AsRole::kAccess);
    out.access.push_back(node);
    attach_to_transit(node);
    for (std::size_t k = 0; k < out.ixps.size(); ++k) {
      if (topo.GetIxp(out.ixps[k]).city != city) continue;
      if (!rng.Bernoulli(options.ixp_membership_probability)) continue;
      for (PopIndex content : out.content) {
        if (topo.GetPop(content).city != city) continue;
        (void)topo.AddLink(node, content, Relationship::kPeerToPeer,
                           out.ixps[k]);
      }
    }
  }

  out.simulator = std::make_unique<NetworkSimulator>(std::move(topo));
  return out;
}

}  // namespace sisyphus::netsim
