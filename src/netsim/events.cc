#include "netsim/events.h"

#include <algorithm>

namespace sisyphus::netsim {

const char* ToString(EventType type) {
  switch (type) {
    case EventType::kLinkDown: return "link_down";
    case EventType::kLinkUp: return "link_up";
    case EventType::kLocalPrefChange: return "local_pref_change";
    case EventType::kLocalPrefClear: return "local_pref_clear";
    case EventType::kCongestionShock: return "congestion_shock";
    case EventType::kPoisonAsns: return "poison_asns";
    case EventType::kClearPoison: return "clear_poison";
    case EventType::kPopOutage: return "pop_outage";
  }
  return "?";
}

void EventSchedule::Add(NetworkEvent event) {
  const auto it = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const NetworkEvent& a, const NetworkEvent& b) {
        return a.time < b.time;
      });
  events_.insert(it, std::move(event));
}

std::vector<NetworkEvent> EventSchedule::PopUntil(core::SimTime cutoff) {
  const auto it = std::lower_bound(
      events_.begin(), events_.end(), cutoff,
      [](const NetworkEvent& e, core::SimTime t) { return e.time < t; });
  std::vector<NetworkEvent> out(events_.begin(), it);
  events_.erase(events_.begin(), it);
  return out;
}

}  // namespace sisyphus::netsim
