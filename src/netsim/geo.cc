#include "netsim/geo.h"

#include <cmath>

#include "core/error.h"

namespace sisyphus::netsim {

using core::CityId;
using core::Error;
using core::ErrorCode;
using core::Result;

double HaversineKm(Coordinates a, Coordinates b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = M_PI / 180.0;
  const double lat1 = a.latitude_deg * kDegToRad;
  const double lat2 = b.latitude_deg * kDegToRad;
  const double dlat = (b.latitude_deg - a.latitude_deg) * kDegToRad;
  const double dlon = (b.longitude_deg - a.longitude_deg) * kDegToRad;
  const double h = std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2.0) *
                       std::sin(dlon / 2.0);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double PropagationDelayMs(double distance_km, double stretch) {
  SISYPHUS_REQUIRE(distance_km >= 0.0 && stretch >= 1.0,
                   "PropagationDelayMs: bad arguments");
  // Light in fiber travels ~204 km/ms (c * 0.68).
  constexpr double kFiberKmPerMs = 204.0;
  return distance_km * stretch / kFiberKmPerMs;
}

CityId CityRegistry::Add(City city) {
  for (std::size_t i = 0; i < cities_.size(); ++i) {
    if (cities_[i].name == city.name)
      return CityId(static_cast<CityId::underlying_type>(i));
  }
  cities_.push_back(std::move(city));
  return CityId(static_cast<CityId::underlying_type>(cities_.size() - 1));
}

Result<CityId> CityRegistry::Find(std::string_view name) const {
  for (std::size_t i = 0; i < cities_.size(); ++i) {
    if (cities_[i].name == name)
      return CityId(static_cast<CityId::underlying_type>(i));
  }
  return Error(ErrorCode::kNotFound,
               "CityRegistry: unknown city '" + std::string(name) + "'");
}

const City& CityRegistry::Get(CityId id) const {
  SISYPHUS_REQUIRE(id.value() < cities_.size(), "CityRegistry: bad id");
  return cities_[id.value()];
}

double CityRegistry::DistanceKm(CityId a, CityId b) const {
  return HaversineKm(Get(a).location, Get(b).location);
}

}  // namespace sisyphus::netsim
