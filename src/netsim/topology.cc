#include "netsim/topology.h"

#include <cstdio>

#include "core/error.h"
#include "core/logging.h"

namespace sisyphus::netsim {

using core::Asn;
using core::CityId;
using core::Error;
using core::ErrorCode;
using core::IxpId;
using core::LinkId;
using core::Result;

const char* ToString(Relationship relationship) {
  switch (relationship) {
    case Relationship::kCustomerToProvider: return "c2p";
    case Relationship::kPeerToPeer: return "p2p";
    case Relationship::kIntraAs: return "intra";
  }
  return "?";
}

Ipv4 Ipv4::FromOctets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d) {
  Ipv4 out;
  out.value = (static_cast<std::uint32_t>(a) << 24) |
              (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | d;
  return out;
}

std::string Ipv4::ToText() const {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%u.%u.%u.%u", value >> 24,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buffer;
}

bool InPrefix(Ipv4 address, Ipv4 prefix, int bits) {
  SISYPHUS_REQUIRE(bits >= 0 && bits <= 32, "InPrefix: bad mask length");
  if (bits == 0) return true;
  const std::uint32_t mask = bits == 32 ? ~0u : ~((1u << (32 - bits)) - 1);
  return (address.value & mask) == (prefix.value & mask);
}

Result<PopIndex> Topology::AddPop(Asn asn, CityId city, AsRole role) {
  if (FindPop(asn, city).ok()) {
    return Error(ErrorCode::kInvalidArgument,
                 "AddPop: duplicate PoP AS" + std::to_string(asn.value()) +
                     "/" + cities_.Get(city).name);
  }
  if (pops_.size() >= 1 << 16) {
    return Error(ErrorCode::kCapacity, "AddPop: PoP limit (65536) reached");
  }
  Pop pop;
  pop.asn = asn;
  pop.city = city;
  pop.role = role;
  pop.label = "AS" + std::to_string(asn.value()) + "/" + cities_.Get(city).name;
  pops_.push_back(std::move(pop));
  adjacency_.emplace_back();
  return static_cast<PopIndex>(pops_.size() - 1);
}

IxpId Topology::AddIxp(std::string name, CityId city) {
  Ixp ixp;
  ixp.name = std::move(name);
  ixp.city = city;
  ixp.lan_octet = static_cast<std::uint8_t>(ixps_.size());
  ixps_.push_back(std::move(ixp));
  return IxpId(static_cast<IxpId::underlying_type>(ixps_.size() - 1));
}

Result<LinkId> Topology::AddLink(PopIndex a, PopIndex b,
                                 Relationship relationship,
                                 std::optional<IxpId> ixp,
                                 std::optional<double> propagation_ms) {
  if (a >= pops_.size() || b >= pops_.size() || a == b) {
    return Error(ErrorCode::kInvalidArgument, "AddLink: bad endpoints");
  }
  for (LinkId existing : adjacency_[a]) {
    const Link& link = links_[existing.value()];
    if ((link.a == a && link.b == b) || (link.a == b && link.b == a)) {
      return Error(ErrorCode::kInvalidArgument,
                   "AddLink: duplicate link " + pops_[a].label + " - " +
                       pops_[b].label);
    }
  }
  if (relationship == Relationship::kIntraAs &&
      pops_[a].asn != pops_[b].asn) {
    return Error(ErrorCode::kInvalidArgument,
                 "AddLink: intra-AS link between different ASNs");
  }
  if (relationship != Relationship::kIntraAs &&
      pops_[a].asn == pops_[b].asn) {
    return Error(ErrorCode::kInvalidArgument,
                 "AddLink: same-ASN link must be kIntraAs");
  }
  Link link;
  link.a = a;
  link.b = b;
  link.relationship = relationship;
  link.ixp = ixp;
  if (propagation_ms.has_value()) {
    link.propagation_ms = *propagation_ms;
  } else {
    const double km = cities_.DistanceKm(pops_[a].city, pops_[b].city);
    // Same-city links still traverse a metro: floor at 0.2 ms one way.
    link.propagation_ms = std::max(0.2, PropagationDelayMs(km));
  }
  links_.push_back(link);
  const LinkId id(static_cast<LinkId::underlying_type>(links_.size() - 1));
  adjacency_[a].push_back(id);
  adjacency_[b].push_back(id);
  (SISYPHUS_LOG(kDebug) << "link added")
      .With("a", pops_[a].label)
      .With("b", pops_[b].label)
      .With("relationship", ToString(relationship))
      .With("propagation_ms", link.propagation_ms);
  return id;
}

const Pop& Topology::GetPop(PopIndex i) const {
  SISYPHUS_REQUIRE(i < pops_.size(), "GetPop: bad index");
  return pops_[i];
}

const Link& Topology::GetLink(LinkId id) const {
  SISYPHUS_REQUIRE(id.value() < links_.size(), "GetLink: bad id");
  return links_[id.value()];
}

Link& Topology::MutableLink(LinkId id) {
  SISYPHUS_REQUIRE(id.value() < links_.size(), "MutableLink: bad id");
  return links_[id.value()];
}

const Ixp& Topology::GetIxp(IxpId id) const {
  SISYPHUS_REQUIRE(id.value() < ixps_.size(), "GetIxp: bad id");
  return ixps_[id.value()];
}

Result<PopIndex> Topology::FindPop(Asn asn, CityId city) const {
  for (std::size_t i = 0; i < pops_.size(); ++i) {
    if (pops_[i].asn == asn && pops_[i].city == city) {
      return static_cast<PopIndex>(i);
    }
  }
  return Error(ErrorCode::kNotFound,
               "FindPop: no PoP for AS" + std::to_string(asn.value()) +
                   " in city #" + std::to_string(city.value()));
}

std::vector<PopIndex> Topology::PopsOfAs(Asn asn) const {
  std::vector<PopIndex> out;
  for (std::size_t i = 0; i < pops_.size(); ++i) {
    if (pops_[i].asn == asn) out.push_back(static_cast<PopIndex>(i));
  }
  return out;
}

const std::vector<LinkId>& Topology::LinksOf(PopIndex i) const {
  SISYPHUS_REQUIRE(i < adjacency_.size(), "LinksOf: bad index");
  return adjacency_[i];
}

PopIndex Topology::Neighbor(LinkId link, PopIndex from) const {
  const Link& l = GetLink(link);
  SISYPHUS_REQUIRE(l.a == from || l.b == from, "Neighbor: PoP not on link");
  return l.a == from ? l.b : l.a;
}

bool Topology::IsProviderSide(LinkId link, PopIndex from) const {
  const Link& l = GetLink(link);
  return l.relationship == Relationship::kCustomerToProvider && l.b == from;
}

Ipv4 Topology::RouterAddress(PopIndex i) const {
  SISYPHUS_REQUIRE(i < pops_.size(), "RouterAddress: bad index");
  return Ipv4::FromOctets(10, static_cast<std::uint8_t>(i >> 8),
                          static_cast<std::uint8_t>(i & 0xff), 1);
}

Ipv4 Topology::IxpLanAddress(IxpId ixp, PopIndex member) const {
  SISYPHUS_REQUIRE(ixp.value() < ixps_.size(), "IxpLanAddress: bad ixp");
  // Host part derived from the PoP index; keeps addresses distinct for up
  // to 254 members per IXP, ample for scenarios.
  const std::uint8_t host = static_cast<std::uint8_t>(1 + (member % 254));
  return Ipv4::FromOctets(196, 60, ixps_[ixp.value()].lan_octet, host);
}

Ipv4 Topology::IxpLanPrefix(IxpId ixp) const {
  SISYPHUS_REQUIRE(ixp.value() < ixps_.size(), "IxpLanPrefix: bad ixp");
  return Ipv4::FromOctets(196, 60, ixps_[ixp.value()].lan_octet, 0);
}

bool Topology::IsIxpAddress(Ipv4 address, IxpId* which) const {
  for (std::size_t k = 0; k < ixps_.size(); ++k) {
    if (InPrefix(address, Ipv4::FromOctets(196, 60, ixps_[k].lan_octet, 0),
                 24)) {
      if (which != nullptr)
        *which = IxpId(static_cast<IxpId::underlying_type>(k));
      return true;
    }
  }
  return false;
}

}  // namespace sisyphus::netsim
