// BGP-style policy routing over a Topology.
//
// Implements the Gao–Rexford model: routes learned from customers are
// preferred over peer routes over provider routes, and a route learned
// from a peer or provider is only exported to customers (valley-free
// export). Selection below local preference is by AS-path length, then a
// deterministic tie-break. Convergence is computed synchronously to a
// fixed point per destination — adequate because experiments consume
// converged paths and change events, not MRAI-timescale dynamics
// (DESIGN.md §4).
//
// Two intervention knobs mirror the paper's discussion:
//  - local-preference overrides per (PoP, link): the endogenous traffic-
//    engineering shifts (§3's C -> R edge) and operator policy changes;
//  - BGP poisoning per destination (PoiRoot-style): an origin can force
//    paths to avoid a chosen ASN — a clean exogenous instrument.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "core/ids.h"
#include "core/result.h"
#include "netsim/topology.h"

namespace sisyphus::netsim {

/// Address family of a routing computation. IPv6 uses only dual-stack
/// links (Link::ipv6), so v4 and v6 converge onto different paths when
/// the topologies differ — a controllable source of exogenous path
/// variation (§4).
enum class AddressFamily { kIpv4, kIpv6 };

const char* ToString(AddressFamily af);

/// How the best route to a destination was learned (Gao–Rexford class).
enum class RouteClass { kSelf, kCustomer, kPeer, kProvider };

const char* ToString(RouteClass cls);

/// Base local preference per class; overrides add to this.
double BasePreference(RouteClass cls);

/// A converged route from one PoP towards a destination PoP.
struct BgpRoute {
  std::vector<PopIndex> pop_path;   ///< this PoP first, destination last
  std::vector<core::Asn> asn_path;  ///< consecutive duplicates collapsed
  RouteClass cls = RouteClass::kSelf;
  double preference = 0.0;          ///< effective local preference

  /// Links traversed, aligned with pop_path steps (size = hops).
  std::vector<core::LinkId> links;

  bool CrossesAsn(core::Asn asn) const;
  bool CrossesIxp(const Topology& topology, core::IxpId ixp) const;
  std::string ToText(const Topology& topology) const;
};

/// All best routes towards one destination.
struct RouteTable {
  PopIndex destination = 0;
  /// best[i] = best route from PoP i; nullopt = unreachable.
  std::vector<std::optional<BgpRoute>> best;
  std::size_t sweeps = 0;  ///< sweeps to convergence (diagnostic)
};

class BgpSimulator {
 public:
  /// Holds a reference; the topology must outlive the simulator. Link
  /// up/down state is read from the topology on every computation.
  explicit BgpSimulator(const Topology& topology);

  /// Adds `delta` to the local preference of routes PoP `pop` learns over
  /// `link`. Positive deltas attract traffic to that link. Replaces any
  /// previous override. Invalidate happens automatically.
  void SetLocalPrefOverride(PopIndex pop, core::LinkId link, double delta);
  void ClearLocalPrefOverride(PopIndex pop, core::LinkId link);

  /// Poisons `asns` in announcements originated by `destination`: any PoP
  /// whose ASN is poisoned discards the route (BGP loop detection), so
  /// converged paths avoid those ASNs.
  void SetPoisonedAsns(PopIndex destination, std::set<core::Asn> asns);
  void ClearPoisonedAsns(PopIndex destination);

  /// Drops all cached tables. Call after mutating topology link state.
  void InvalidateCache();

  /// Converged routing table towards `destination` (cached per family).
  ///
  /// Thread-safe: the cache is mutex-guarded, so concurrent parallel tasks
  /// may query routes (std::map node stability keeps returned references
  /// valid across inserts). The policy/topology mutators above are NOT safe
  /// to call while queries are in flight — event processing stays serial by
  /// design (DESIGN.md §7).
  const RouteTable& RoutesTo(PopIndex destination,
                             AddressFamily af = AddressFamily::kIpv4);

  /// Computes (and caches) tables for every destination in `destinations`,
  /// fanning the per-destination convergence runs across the thread pool.
  /// Already-cached destinations are skipped; insertion happens afterwards
  /// in destination order, so cache contents — and the hit/miss metric
  /// counts of later queries — are independent of thread count.
  void WarmRoutes(const std::vector<PopIndex>& destinations,
                  AddressFamily af = AddressFamily::kIpv4);

  /// Best route from src to dst; kNotFound when unreachable.
  core::Result<BgpRoute> Route(PopIndex source, PopIndex destination,
                               AddressFamily af = AddressFamily::kIpv4);

  const Topology& topology() const { return topology_; }

 private:
  RouteTable Compute(PopIndex destination, AddressFamily af) const;

  const Topology& topology_;
  std::map<std::pair<PopIndex, core::LinkId>, double> pref_overrides_;
  std::map<PopIndex, std::set<core::Asn>> poisoned_;
  /// Guards cache_ only (route queries are the one concurrent entry point).
  mutable std::mutex cache_mu_;
  mutable std::map<std::pair<PopIndex, AddressFamily>, RouteTable> cache_;
};

}  // namespace sisyphus::netsim
