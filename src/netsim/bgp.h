// BGP-style policy routing over a Topology.
//
// Implements the Gao–Rexford model: routes learned from customers are
// preferred over peer routes over provider routes, and a route learned
// from a peer or provider is only exported to customers (valley-free
// export). Selection below local preference is by AS-path length, then a
// deterministic tie-break. Convergence is computed synchronously to a
// fixed point per destination — adequate because experiments consume
// converged paths and change events, not MRAI-timescale dynamics
// (DESIGN.md §4).
//
// Route maintenance is *incremental* (DESIGN.md §14): a link or policy
// mutation repairs only the cached tables it can affect, by frontier
// reconvergence seeded from the changed adjacency, instead of dropping
// every converged table. A reverse link→destination index, maintained at
// cache-insert time, scopes link-down events to the destination cone that
// actually traverses the link. The SISYPHUS_BGP_CHECK environment variable
// enables a differential mode that recomputes every cached table from
// scratch after each repair and aborts on any divergence.
//
// Two intervention knobs mirror the paper's discussion:
//  - local-preference overrides per (PoP, link): the endogenous traffic-
//    engineering shifts (§3's C -> R edge) and operator policy changes;
//  - BGP poisoning per destination (PoiRoot-style): an origin can force
//    paths to avoid a chosen ASN — a clean exogenous instrument.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "core/ids.h"
#include "core/result.h"
#include "netsim/topology.h"

namespace sisyphus::netsim {

/// Address family of a routing computation. IPv6 uses only dual-stack
/// links (Link::ipv6), so v4 and v6 converge onto different paths when
/// the topologies differ — a controllable source of exogenous path
/// variation (§4).
enum class AddressFamily { kIpv4, kIpv6 };

const char* ToString(AddressFamily af);

/// How the best route to a destination was learned (Gao–Rexford class).
enum class RouteClass { kSelf, kCustomer, kPeer, kProvider };

const char* ToString(RouteClass cls);

/// Base local preference per class; overrides add to this.
double BasePreference(RouteClass cls);

/// A converged route from one PoP towards a destination PoP.
struct BgpRoute {
  std::vector<PopIndex> pop_path;   ///< this PoP first, destination last
  std::vector<core::Asn> asn_path;  ///< consecutive duplicates collapsed
  RouteClass cls = RouteClass::kSelf;
  double preference = 0.0;          ///< effective local preference

  /// Links traversed, aligned with pop_path steps (size = hops).
  std::vector<core::LinkId> links;

  bool CrossesAsn(core::Asn asn) const;
  bool CrossesIxp(const Topology& topology, core::IxpId ixp) const;
  std::string ToText(const Topology& topology) const;
};

/// Full route-content equality (path, ASNs, links, class, preference).
bool operator==(const BgpRoute& a, const BgpRoute& b);
inline bool operator!=(const BgpRoute& a, const BgpRoute& b) {
  return !(a == b);
}

/// All best routes towards one destination.
struct RouteTable {
  PopIndex destination = 0;
  /// best[i] = best route from PoP i; nullopt = unreachable.
  std::vector<std::optional<BgpRoute>> best;
  std::size_t sweeps = 0;  ///< sweeps to convergence (diagnostic)
};

/// Route-content equality between tables: destination and every best[]
/// entry. `sweeps` is a diagnostic of how the table was computed, not of
/// what it routes, and is deliberately excluded — an incrementally
/// repaired table and a from-scratch one must satisfy SameRoutes.
bool SameRoutes(const RouteTable& a, const RouteTable& b);

/// Outcome of one frontier repair of one cached table (DESIGN.md §14).
struct RepairStats {
  std::size_t rounds = 0;           ///< frontier rounds run (≈ sweeps)
  std::size_t pops_recomputed = 0;  ///< selection functions re-evaluated
  bool changed = false;             ///< any best[] entry actually changed
  bool fell_back = false;           ///< round cap hit; recomputed from scratch
};

class BgpSimulator {
 public:
  /// Holds a reference; the topology must outlive the simulator. Link
  /// up/down state is read from the topology on every computation.
  explicit BgpSimulator(const Topology& topology);

  /// Adds `delta` to the local preference of routes PoP `pop` learns over
  /// `link`. Positive deltas attract traffic to that link. Replaces any
  /// previous override. Cached tables are repaired incrementally from a
  /// frontier seeded at `pop` (only that PoP's selection changed).
  void SetLocalPrefOverride(PopIndex pop, core::LinkId link, double delta);
  void ClearLocalPrefOverride(PopIndex pop, core::LinkId link);

  /// Poisons `asns` in announcements originated by `destination`: any PoP
  /// whose ASN is poisoned discards the route (BGP loop detection), so
  /// converged paths avoid those ASNs. Only that destination's cached
  /// tables are dropped; all others are retained.
  void SetPoisonedAsns(PopIndex destination, std::set<core::Asn> asns);
  void ClearPoisonedAsns(PopIndex destination);

  /// Reconverges the cache after `link`'s up/down state was mutated in the
  /// topology. Link-down repairs only the destination cone — cached tables
  /// whose routes traverse the link, found via the reverse index; a
  /// removed offer that was never selected cannot change any other table.
  /// Link-up repairs every cached table (a new adjacency can create a
  /// shortcut anywhere), but the frontier seeded at the link's endpoints
  /// makes untouched tables O(endpoint degree) to confirm converged.
  void ApplyLinkEvent(core::LinkId link);

  /// Drops all cached tables. Still correct after any external topology
  /// mutation; ApplyLinkEvent is the cheap scoped alternative for link
  /// state flips.
  void InvalidateCache();

  /// Frontier reconvergence of `table` after `changed_links` were mutated:
  /// re-evaluates best-route selection only along the wavefront reachable
  /// from the changed adjacency, repairing the stale table in place
  /// instead of recomputing all n PoPs. Falls back to a from-scratch
  /// Compute if the defensive round cap is hit. The repaired table
  /// satisfies SameRoutes against a from-scratch computation.
  RepairStats RecomputeFrom(RouteTable& table,
                            const std::vector<core::LinkId>& changed_links,
                            AddressFamily af = AddressFamily::kIpv4) const;

  /// Converged routing table towards `destination` (cached per family).
  ///
  /// Thread-safe: the cache is mutex-guarded, so concurrent parallel tasks
  /// may query routes (std::map node stability keeps returned references
  /// valid across inserts). The policy/topology mutators above are NOT safe
  /// to call while queries are in flight — event processing stays serial by
  /// design (DESIGN.md §7).
  const RouteTable& RoutesTo(PopIndex destination,
                             AddressFamily af = AddressFamily::kIpv4);

  /// Computes (and caches) tables for every destination in `destinations`,
  /// fanning the per-destination convergence runs across the thread pool.
  /// Already-cached destinations are skipped; insertion happens afterwards
  /// in destination order, so cache contents — and the hit/miss metric
  /// counts of later queries — are independent of thread count.
  void WarmRoutes(const std::vector<PopIndex>& destinations,
                  AddressFamily af = AddressFamily::kIpv4);

  /// Best route from src to dst; kNotFound when unreachable.
  core::Result<BgpRoute> Route(PopIndex source, PopIndex destination,
                               AddressFamily af = AddressFamily::kIpv4);

  /// Number of cached (destination, family) tables.
  std::size_t CachedTableCount() const;

  /// True when the differential check mode is on: every repair is followed
  /// by a from-scratch recomputation of every cached table and a
  /// SameRoutes comparison (std::logic_error on divergence). Enabled by a
  /// non-empty, non-"0" SISYPHUS_BGP_CHECK environment variable.
  static bool DifferentialCheckEnabled();
  /// Test hook: 1 = force on, 0 = force off, -1 = back to the env var.
  static void SetDifferentialCheckForTest(int mode);

  const Topology& topology() const { return topology_; }

 private:
  using CacheKey = std::pair<PopIndex, AddressFamily>;

  RouteTable Compute(PopIndex destination, AddressFamily af) const;

  /// One evaluation of PoP `u`'s selection function over its live
  /// neighbors' current routes in `table` — the shared relaxation operator
  /// of Compute's synchronous sweeps and the frontier repair, so both
  /// converge to identical routes.
  std::optional<BgpRoute> BestOfferAt(const RouteTable& table, PopIndex u,
                                      AddressFamily af) const;

  /// Link add/remove deltas (with multiplicity) accumulated by a repair:
  /// exactly the links of routes whose paths changed, so the reverse
  /// index can be updated in O(changed routes) instead of rescanning the
  /// whole table after every event.
  struct LinkDeltas {
    std::vector<core::LinkId> removed, added;
  };

  /// Frontier repair seeded at `seeds` (deduplicated PoPs). When `deltas`
  /// is non-null, path changes are recorded for index maintenance (not
  /// meaningful after a fell_back repair — the caller must rebuild).
  RepairStats RepairInPlace(RouteTable& table, AddressFamily af,
                            const std::vector<PopIndex>& seeds,
                            LinkDeltas* deltas = nullptr) const;

  /// Repairs `keys` (parallel, deterministic), reindexes them, emits the
  /// reconvergence-scope metrics/log line, and runs the differential
  /// check when enabled. Serial-context only (event processing).
  void RepairTables(const std::vector<CacheKey>& keys,
                    const std::vector<PopIndex>& seeds, const char* trigger);

  /// Per-link reference counts (#best routes traversing each link) of a
  /// full table — the from-scratch form of the reverse-index entry.
  std::map<core::LinkId, std::uint32_t> LinkCountsOf(
      const RouteTable& table) const;

  /// Reverse-index maintenance; cache_mu_ must be held. Reindex rebuilds
  /// a table's entry wholesale (insert / fallback path); ApplyLinkDeltas
  /// is the scoped per-event update.
  void ReindexTableLocked(const CacheKey& key,
                          std::map<core::LinkId, std::uint32_t> counts);
  void ApplyLinkDeltasLocked(const CacheKey& key, const LinkDeltas& deltas);
  void EraseTableLocked(const CacheKey& key);

  /// Recomputes every cached table from scratch and requires SameRoutes
  /// (SISYPHUS_BGP_CHECK differential mode).
  void RunDifferentialCheck(const char* trigger) const;

  const Topology& topology_;
  std::map<std::pair<PopIndex, core::LinkId>, double> pref_overrides_;
  std::map<PopIndex, std::set<core::Asn>> poisoned_;
  /// Guards cache_ and the reverse index (route queries are the one
  /// concurrent entry point).
  mutable std::mutex cache_mu_;
  mutable std::map<CacheKey, RouteTable> cache_;
  /// Reverse dependency index: which cached tables traverse each link,
  /// plus each table's per-link route refcounts (so repairs can update
  /// membership from their deltas without rescanning the table).
  mutable std::map<core::LinkId, std::set<CacheKey>> link_to_tables_;
  mutable std::map<CacheKey, std::map<core::LinkId, std::uint32_t>>
      table_links_;
};

}  // namespace sisyphus::netsim
