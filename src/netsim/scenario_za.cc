#include "netsim/scenario_za.h"

#include <array>
#include <map>

#include "core/error.h"
#include "core/rng.h"

namespace sisyphus::netsim {

namespace {

using core::Asn;
using core::CityId;
using core::LinkId;
using core::SimTime;

constexpr double kZaUtcOffset = 2.0;

struct CitySpec {
  const char* name;
  double lat;
  double lon;
};

// Real coordinates; UTC+2 throughout (London handled separately).
constexpr std::array<CitySpec, 14> kZaCities{{
    {"Johannesburg", -26.20, 28.04},
    {"Cape Town", -33.92, 18.42},
    {"Durban", -29.86, 31.02},
    {"East London", -33.02, 27.90},
    {"Polokwane", -23.90, 29.45},
    {"Edenvale", -26.14, 28.15},
    {"eMuziwezinto", -30.26, 30.66},
    {"Gqeberha", -33.96, 25.61},
    {"Bloemfontein", -29.12, 26.21},
    {"Pretoria", -25.75, 28.19},
    {"Pietermaritzburg", -29.60, 30.38},
    {"Nelspruit", -25.47, 30.97},
    {"Kimberley", -28.73, 24.76},
    {"George", -33.96, 22.46},
}};

struct TreatedSpec {
  std::uint32_t asn;
  const char* city;
  double paper_delta_ms;  ///< Table 1 value we aim to resemble
  /// Extra one-way propagation on the IXP peering path: positive makes
  /// the post-IXP path slower (congested IXP port, longer metro ring).
  /// Shared per ASN — the first unit of an ASN fixes it.
  double ixp_extra_ms;
  /// Congestion of the unit's transit attachment (base, amplitude):
  /// heavier values make the pre-IXP path slower and noisier.
  double transit_base_util;
  double transit_amplitude;
  /// Attach transit at the provider's JNB hub instead of the nearest hub
  /// (some regional ISPs buy transit only in Johannesburg).
  bool transit_at_jnb;
  /// One-way propagation of the intra-AS backhaul to the JNB presence;
  /// < 0 = derive from city distance. Long coastal rings make the IXP
  /// path slower than direct regional transit — the mechanism behind the
  /// paper's *positive* deltas.
  double backhaul_prop_ms;
  /// One-way propagation of the transit access link; < 0 = derive.
  double transit_prop_ms;
};

// Table 1's eight units, calibrated so the simulated deltas resemble the
// paper's (sign and rough size); see DESIGN.md substitution table.
constexpr std::array<TreatedSpec, 8> kTreated{{
    {3741, "East London", +3.40, 1.72, 0.35, 0.25, true, 5.9, -1.0},
    {3741, "Johannesburg", +1.50, 1.72, 0.35, 0.25, false, -1.0, -1.0},
    {37053, "Cape Town", -0.12, 0.83, 0.35, 0.25, false, -1.0, -1.0},
    {37611, "Edenvale", -0.91, 0.27, 0.42, 0.25, false, -1.0, -1.0},
    {37680, "Durban", -2.20, 0.05, 0.38, 0.28, false, -1.0, -1.0},
    {327966, "Polokwane", -7.28, 0.30, 0.78, 0.15, false, -1.0, 2.2},
    {328622, "eMuziwezinto", -1.30, 0.30, 0.35, 0.25, false, -1.0, -1.0},
    {328745, "Johannesburg", +0.30, 1.24, 0.35, 0.25, false, -1.0, -1.0},
}};

// ASNs for infrastructure.
constexpr std::uint32_t kContentAsn = 64600;   // content + M-Lab servers
constexpr std::uint32_t kDomTransitA = 37100;  // domestic transit (Seacom-ish)
constexpr std::uint32_t kDomTransitB = 5713;   // domestic transit (SAIX-ish)
constexpr std::uint32_t kGlobalTransit = 6453; // trombones via London
constexpr std::uint32_t kFirstDonorAsn = 64700;

PopIndex MustPop(Topology& topo, Asn asn, CityId city, AsRole role) {
  auto pop = topo.AddPop(asn, city, role);
  SISYPHUS_REQUIRE(pop.ok(), "ScenarioZa: AddPop failed: " +
                                 (pop.ok() ? "" : pop.error().ToText()));
  return pop.value();
}

LinkId MustLink(Topology& topo, PopIndex a, PopIndex b, Relationship rel,
                std::optional<core::IxpId> ixp = std::nullopt,
                std::optional<double> prop = std::nullopt) {
  auto link = topo.AddLink(a, b, rel, ixp, prop);
  SISYPHUS_REQUIRE(link.ok(), "ScenarioZa: AddLink failed: " +
                                  (link.ok() ? "" : link.error().ToText()));
  return link.value();
}

}  // namespace

ScenarioZa BuildScenarioZa(const ScenarioZaOptions& options) {
  core::Rng rng(options.seed);
  Topology topo;

  // ---- Cities ----
  std::vector<CityId> city_ids;
  for (const auto& spec : kZaCities) {
    city_ids.push_back(topo.cities().Add(
        {spec.name, {spec.lat, spec.lon}, kZaUtcOffset}));
  }
  const CityId london =
      topo.cities().Add({"London", {51.51, -0.13}, 0.0});
  const CityId jnb = city_ids[0];
  const CityId cpt = city_ids[1];
  const CityId dur = city_ids[2];

  auto city_by_name = [&](const std::string& name) {
    auto id = topo.cities().Find(name);
    SISYPHUS_REQUIRE(id.ok(), "ScenarioZa: unknown city " + name);
    return id.value();
  };

  // ---- Destination: content + M-Lab, on-net in JNB and CPT, origin in
  // London. Intra-AS backbone connects the three.
  const PopIndex content_jnb = MustPop(topo, Asn(kContentAsn), jnb,
                                       AsRole::kContent);
  const PopIndex content_cpt = MustPop(topo, Asn(kContentAsn), cpt,
                                       AsRole::kContent);
  const PopIndex content_lon = MustPop(topo, Asn(kContentAsn), london,
                                       AsRole::kContent);
  MustLink(topo, content_jnb, content_cpt, Relationship::kIntraAs);
  MustLink(topo, content_jnb, content_lon, Relationship::kIntraAs);

  // ---- NAPAfrica-JNB ----
  ScenarioZa out;
  out.options = options;
  out.napafrica_jnb = topo.AddIxp("NAPAfrica-JNB", jnb);

  // ---- Transit providers ----
  // Domestic A: JNB, CPT, DUR. Peers with content at JNB (private PNI).
  const PopIndex dta_jnb = MustPop(topo, Asn(kDomTransitA), jnb, AsRole::kTransit);
  const PopIndex dta_cpt = MustPop(topo, Asn(kDomTransitA), cpt, AsRole::kTransit);
  const PopIndex dta_dur = MustPop(topo, Asn(kDomTransitA), dur, AsRole::kTransit);
  MustLink(topo, dta_jnb, dta_cpt, Relationship::kIntraAs);
  MustLink(topo, dta_jnb, dta_dur, Relationship::kIntraAs);
  MustLink(topo, dta_jnb, content_jnb, Relationship::kPeerToPeer, std::nullopt,
           0.35);

  // Domestic B: JNB, CPT, DUR, Bloemfontein. Also peers with content at JNB.
  const PopIndex dtb_jnb = MustPop(topo, Asn(kDomTransitB), jnb, AsRole::kTransit);
  const PopIndex dtb_cpt = MustPop(topo, Asn(kDomTransitB), cpt, AsRole::kTransit);
  const PopIndex dtb_dur = MustPop(topo, Asn(kDomTransitB), dur, AsRole::kTransit);
  const PopIndex dtb_bfn =
      MustPop(topo, Asn(kDomTransitB), city_by_name("Bloemfontein"),
              AsRole::kTransit);
  MustLink(topo, dtb_jnb, dtb_cpt, Relationship::kIntraAs);
  MustLink(topo, dtb_jnb, dtb_dur, Relationship::kIntraAs);
  MustLink(topo, dtb_jnb, dtb_bfn, Relationship::kIntraAs);
  MustLink(topo, dtb_jnb, content_jnb, Relationship::kPeerToPeer, std::nullopt,
           0.35);

  // Global transit: ZA PoPs backhauled to London; peers with content in
  // London only — the trombone.
  const PopIndex gt_jnb = MustPop(topo, Asn(kGlobalTransit), jnb, AsRole::kTransit);
  const PopIndex gt_cpt = MustPop(topo, Asn(kGlobalTransit), cpt, AsRole::kTransit);
  const PopIndex gt_lon = MustPop(topo, Asn(kGlobalTransit), london, AsRole::kTransit);
  MustLink(topo, gt_jnb, gt_lon, Relationship::kIntraAs);
  MustLink(topo, gt_cpt, gt_lon, Relationship::kIntraAs);
  MustLink(topo, gt_lon, content_lon, Relationship::kPeerToPeer, std::nullopt,
           0.35);
  // Domestic transits buy global transit (for completeness of the DFZ).
  MustLink(topo, dta_jnb, gt_jnb, Relationship::kCustomerToProvider);
  MustLink(topo, dtb_jnb, gt_jnb, Relationship::kCustomerToProvider);

  auto nearest_hub = [&](CityId city, PopIndex a_jnb, PopIndex a_cpt,
                         PopIndex a_dur) {
    const double to_jnb = topo.cities().DistanceKm(city, jnb);
    const double to_cpt = topo.cities().DistanceKm(city, cpt);
    const double to_dur = topo.cities().DistanceKm(city, dur);
    if (to_cpt <= to_jnb && to_cpt <= to_dur) return a_cpt;
    if (to_dur <= to_jnb && to_dur <= to_cpt) return a_dur;
    return a_jnb;
  };

  // ---- Treated access units ----
  // Treated ISPs may appear in several cities (AS3741 twice); each keeps a
  // single JNB presence used for the IXP peering.
  std::map<std::uint32_t, PopIndex> treated_jnb_pop;
  std::map<std::uint32_t, LinkId> treated_ixp_link;
  for (const auto& spec : kTreated) {
    const CityId city = city_by_name(spec.city);
    const Asn asn{spec.asn};
    // The PoP may already exist as another unit's JNB backhaul presence.
    PopIndex access;
    if (auto existing = topo.FindPop(asn, city); existing.ok()) {
      access = existing.value();
    } else {
      access = MustPop(topo, asn, city, AsRole::kAccess);
    }

    // Transit attachment at the nearest (or JNB) domestic hub; alternate
    // the provider by ASN parity for pool diversity.
    const bool use_a = spec.asn % 2 == 0;
    PopIndex hub;
    if (spec.transit_at_jnb) {
      hub = use_a ? dta_jnb : dtb_jnb;
    } else {
      hub = use_a ? nearest_hub(city, dta_jnb, dta_cpt, dta_dur)
                  : nearest_hub(city, dtb_jnb, dtb_cpt, dtb_dur);
    }
    const LinkId transit_link =
        MustLink(topo, access, hub, Relationship::kCustomerToProvider,
                 std::nullopt,
                 spec.transit_prop_ms >= 0.0
                     ? std::optional<double>(spec.transit_prop_ms)
                     : std::nullopt);
    topo.MutableLink(transit_link).base_utilization = spec.transit_base_util;
    topo.MutableLink(transit_link).diurnal_amplitude = spec.transit_amplitude;

    // JNB presence for IXP peering (reuse if this ASN already has one).
    PopIndex jnb_pop;
    if (const auto it = treated_jnb_pop.find(spec.asn);
        it != treated_jnb_pop.end()) {
      jnb_pop = it->second;
    } else if (city == jnb) {
      jnb_pop = access;
      treated_jnb_pop[spec.asn] = access;
    } else {
      jnb_pop = MustPop(topo, asn, jnb, AsRole::kAccess);
      treated_jnb_pop[spec.asn] = jnb_pop;
    }
    if (jnb_pop != access) {
      MustLink(topo, access, jnb_pop, Relationship::kIntraAs, std::nullopt,
               spec.backhaul_prop_ms >= 0.0
                   ? std::optional<double>(spec.backhaul_prop_ms)
                   : std::nullopt);
    }

    // Pre-provisioned IXP peering with the content network: down until the
    // treatment event. Propagation = metro 0.3 ms + calibration extra. One
    // peering session per ASN — units of the same ISP share it.
    LinkId ixp_link;
    if (const auto it = treated_ixp_link.find(spec.asn);
        it != treated_ixp_link.end()) {
      ixp_link = it->second;
    } else {
      ixp_link =
          MustLink(topo, jnb_pop, content_jnb, Relationship::kPeerToPeer,
                   out.napafrica_jnb,
                   std::max(0.05, 0.30 + spec.ixp_extra_ms));
      topo.MutableLink(ixp_link).up = false;
      topo.MutableLink(ixp_link).base_utilization = 0.30;
      topo.MutableLink(ixp_link).diurnal_amplitude = 0.25;
      treated_ixp_link[spec.asn] = ixp_link;
    }

    TreatedUnit unit;
    unit.name = std::to_string(spec.asn) + " / " + spec.city;
    unit.asn = asn;
    unit.city = spec.city;
    unit.access_pop = access;
    unit.ixp_link = ixp_link;
    unit.paper_delta_ms = spec.paper_delta_ms;
    out.treated.push_back(std::move(unit));
  }

  // ---- Donor pool ----
  for (std::size_t i = 0; i < options.donor_units; ++i) {
    const Asn asn{kFirstDonorAsn + static_cast<std::uint32_t>(i)};
    const CityId city = city_ids[i % city_ids.size()];
    const PopIndex access = MustPop(topo, asn, city, AsRole::kAccess);
    // Most donors ride domestic transit; every 7th is tromboned through
    // the global provider (realistic heterogeneity in levels).
    LinkId transit_link;
    if (i % 7 == 3) {
      const PopIndex hub = nearest_hub(city, gt_jnb, gt_cpt, gt_jnb);
      transit_link =
          MustLink(topo, access, hub, Relationship::kCustomerToProvider);
    } else if (i % 2 == 0) {
      const PopIndex hub = nearest_hub(city, dta_jnb, dta_cpt, dta_dur);
      transit_link =
          MustLink(topo, access, hub, Relationship::kCustomerToProvider);
    } else {
      const PopIndex hub = nearest_hub(city, dtb_jnb, dtb_cpt, dtb_dur);
      transit_link =
          MustLink(topo, access, hub, Relationship::kCustomerToProvider);
    }
    // Heterogeneous congestion profiles.
    topo.MutableLink(transit_link).base_utilization =
        0.28 + 0.015 * static_cast<double>(i % 8);
    topo.MutableLink(transit_link).diurnal_amplitude =
        0.20 + 0.02 * static_cast<double>(i % 5);
    out.donors.push_back(access);
    out.donor_names.push_back(std::to_string(asn.value()) + " / " +
                              topo.cities().Get(city).name);
  }

  // ---- Simulator + events ----
  out.simulator = std::make_unique<NetworkSimulator>(std::move(topo),
                                                     SimTime(15));
  out.content_jnb = content_jnb;

  for (const TreatedUnit& unit : out.treated) {
    NetworkEvent event;
    event.time = options.treatment_time;
    event.type = EventType::kLinkUp;
    event.exogenous = true;
    event.description = "NAPAfrica-JNB peering live: " + unit.name;
    event.link = unit.ixp_link;
    out.simulator->schedule().Add(event);
    out.simulator->WatchPath(unit.access_pop, content_jnb);
  }

  // Background churn so the donor pool is not noise-free: two congestion
  // shocks and one maintenance window, at times unrelated to treatment.
  const auto& topo_ref = out.simulator->topology();
  if (topo_ref.LinkCount() > 10) {
    NetworkEvent shock1;
    shock1.time = SimTime::FromDays(11);
    shock1.type = EventType::kCongestionShock;
    shock1.exogenous = true;
    shock1.description = "metro congestion (backhoe reroute)";
    shock1.link = LinkId(5);
    shock1.shock_end = SimTime::FromDays(12.5);
    shock1.shock_extra = 0.18;
    out.simulator->schedule().Add(shock1);

    NetworkEvent shock2;
    shock2.time = SimTime::FromDays(39);
    shock2.type = EventType::kCongestionShock;
    shock2.exogenous = true;
    shock2.description = "subsea capacity degradation";
    shock2.link = LinkId(8);
    shock2.shock_end = SimTime::FromDays(41);
    shock2.shock_extra = 0.15;
    out.simulator->schedule().Add(shock2);
  }

  return out;
}

}  // namespace sisyphus::netsim
