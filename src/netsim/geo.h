// Geography: cities, great-circle distances, and fiber propagation delay.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/ids.h"
#include "core/result.h"

namespace sisyphus::netsim {

struct Coordinates {
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};

/// Great-circle distance in kilometres (haversine, mean Earth radius).
double HaversineKm(Coordinates a, Coordinates b);

/// One-way propagation delay in ms over fiber following a route `stretch`
/// times the great-circle distance (fiber paths are never straight lines;
/// 1.5-2.0 is typical for terrestrial routes).
double PropagationDelayMs(double distance_km, double stretch = 1.6);

struct City {
  std::string name;
  Coordinates location;
  double utc_offset_hours = 0.0;  ///< drives local diurnal peaks
};

/// Registry of cities used by a scenario.
class CityRegistry {
 public:
  /// Adds a city; re-adding the same name returns the existing id.
  core::CityId Add(City city);

  core::Result<core::CityId> Find(std::string_view name) const;
  const City& Get(core::CityId id) const;
  std::size_t size() const { return cities_.size(); }

  double DistanceKm(core::CityId a, core::CityId b) const;

 private:
  std::vector<City> cities_;
};

}  // namespace sisyphus::netsim
