// Diurnal traffic model.
//
// Link utilization follows a smooth daily curve (mid-morning shoulder plus
// a dominant evening peak, the classic eyeball pattern), shifted by the
// link's local time zone, plus optional event-driven shocks. Congestion is
// the paper's canonical confounder (C -> R and C -> L): the simulator uses
// the same utilization value both to trigger traffic-engineering route
// shifts and to inflate queueing delay.
#pragma once

#include "core/rng.h"
#include "core/sim_time.h"

namespace sisyphus::netsim {

/// Normalized diurnal demand in [0, 1] at local hour-of-day h (0-24).
/// Mixture of a work-hours bump (peak ~11h) and a stronger evening peak
/// (~20h30).
double DiurnalDemand(double local_hour);

struct DiurnalProfile {
  double base_utilization = 0.3;   ///< floor at the nightly trough
  double diurnal_amplitude = 0.35; ///< peak adds this much
  double utc_offset_hours = 0.0;   ///< local-time shift
  double noise_sd = 0.02;          ///< per-sample Gaussian wiggle

  /// Utilization in [0, 0.97] at `time` (noise drawn from `rng`).
  double Utilization(core::SimTime time, core::Rng& rng) const;

  /// Deterministic (noise-free) utilization — used by decision logic so
  /// route flaps do not depend on measurement noise draws.
  double MeanUtilization(core::SimTime time) const;
};

}  // namespace sisyphus::netsim
