// Parameterized random Internet generator.
//
// The ZA scenario is hand-built to match Table 1; this generator produces
// arbitrary-size three-tier topologies (clique of tier-1s, multihomed
// regional transits, access edge, optional IXPs with partial membership)
// for scale tests, property tests, and ablations that need many
// independent topologies. Deterministic for a given seed.
#pragma once

#include <memory>
#include <vector>

#include "netsim/simulator.h"

namespace sisyphus::netsim {

struct RandomInternetOptions {
  std::size_t tier1_count = 3;
  std::size_t transit_count = 8;
  std::size_t access_count = 40;
  std::size_t content_count = 2;
  std::size_t city_count = 6;
  std::size_t ixp_count = 1;
  /// Probability an access network is multihomed (two transits).
  double multihoming_probability = 0.3;
  /// Probability an access/content network joins a local IXP when one
  /// exists in its city (peering with content networks there).
  double ixp_membership_probability = 0.4;
  std::uint64_t seed = 1;
};

struct RandomInternet {
  std::unique_ptr<NetworkSimulator> simulator;
  std::vector<PopIndex> tier1;
  std::vector<PopIndex> transits;
  std::vector<PopIndex> access;
  std::vector<PopIndex> content;
  std::vector<core::IxpId> ixps;
};

/// Builds the topology. Every access and content network is attached to
/// at least one transit, transits to at least one tier-1, and tier-1s are
/// fully meshed (peering), so the graph is connected under valley-free
/// routing: every access network can reach every content network.
RandomInternet BuildRandomInternet(const RandomInternetOptions& options = {});

}  // namespace sisyphus::netsim
