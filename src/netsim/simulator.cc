#include "netsim/simulator.h"

#include <algorithm>

#include "core/error.h"
#include "core/logging.h"
#include "obs/metrics.h"

namespace sisyphus::netsim {

using core::Error;
using core::ErrorCode;
using core::Result;

NetworkSimulator::NetworkSimulator(Topology topology, core::SimTime tick,
                                   LatencyModelOptions latency_options)
    : topology_(std::move(topology)),
      bgp_(topology_),
      latency_(topology_, latency_options),
      tick_(tick) {
  SISYPHUS_REQUIRE(tick.minutes() > 0, "NetworkSimulator: zero tick");
}

void NetworkSimulator::AddTePolicy(TePolicy policy) {
  te_policies_.push_back(policy);
}

void NetworkSimulator::WatchPath(PopIndex source, PopIndex destination) {
  WatchedPair pair;
  pair.source = source;
  pair.destination = destination;
  if (auto route = bgp_.Route(source, destination); route.ok()) {
    pair.last_asn_path = route.value().asn_path;
  } else {
    // No route at watch time: record the state instead of silently
    // treating it as "unknown", so later path-change detection starts
    // from an explicit unreachable baseline.
    pair.unreachable_at_watch = true;
    SISYPHUS_METRIC_COUNT("netsim.watch.unreachable_at_watch", 1);
    (SISYPHUS_LOG(kWarn) << "WatchPath: initial route lookup failed")
        .With("source", topology_.GetPop(source).label)
        .With("destination", topology_.GetPop(destination).label)
        .With("error", route.error().message());
  }
  watched_.push_back(std::move(pair));
}

std::size_t NetworkSimulator::UnreachableWatchCount() const {
  std::size_t count = 0;
  for (const WatchedPair& pair : watched_) {
    if (pair.unreachable_at_watch) ++count;
  }
  return count;
}

void NetworkSimulator::ApplyEvent(const NetworkEvent& event) {
  switch (event.type) {
    case EventType::kLinkDown:
      SISYPHUS_REQUIRE(event.link.has_value(), "kLinkDown: missing link");
      topology_.MutableLink(*event.link).up = false;
      // Scoped reconvergence: repair only the destination cone that
      // traverses the link instead of dropping every converged table.
      bgp_.ApplyLinkEvent(*event.link);
      break;
    case EventType::kLinkUp:
      SISYPHUS_REQUIRE(event.link.has_value(), "kLinkUp: missing link");
      topology_.MutableLink(*event.link).up = true;
      bgp_.ApplyLinkEvent(*event.link);
      break;
    case EventType::kLocalPrefChange:
      SISYPHUS_REQUIRE(event.link.has_value(), "kLocalPrefChange: no link");
      bgp_.SetLocalPrefOverride(event.pop, *event.link, event.pref_delta);
      break;
    case EventType::kLocalPrefClear:
      SISYPHUS_REQUIRE(event.link.has_value(), "kLocalPrefClear: no link");
      bgp_.ClearLocalPrefOverride(event.pop, *event.link);
      break;
    case EventType::kCongestionShock:
      SISYPHUS_REQUIRE(event.link.has_value(), "kCongestionShock: no link");
      latency_.AddUtilizationShock(*event.link, event.time, event.shock_end,
                                   event.shock_extra);
      break;
    case EventType::kPoisonAsns:
      bgp_.SetPoisonedAsns(event.destination, event.asns);
      break;
    case EventType::kClearPoison:
      bgp_.ClearPoisonedAsns(event.destination);
      break;
    case EventType::kPopOutage:
      SISYPHUS_REQUIRE(event.shock_end > event.time,
                       "kPopOutage: empty window");
      pop_outages_.push_back({event.pop, event.time, event.shock_end});
      break;
  }
  SISYPHUS_METRIC_COUNT("netsim.events.applied", 1);
  if (event.exogenous) SISYPHUS_METRIC_COUNT("netsim.events.exogenous", 1);
  (SISYPHUS_LOG(kDebug) << "event applied")
      .With("time", event.time.ToText())
      .With("type", ToString(event.type))
      .With("description", event.description);
}

void NetworkSimulator::ApplyTePolicies() {
  for (TePolicy& policy : te_policies_) {
    const double utilization =
        latency_.LinkUtilization(policy.watched_link, now_);
    // Utilization summary over every watched link at every tick — the
    // netsim-side congestion picture behind MNAR loss coupling.
#if !defined(SISYPHUS_OBS_DISABLED)
    static obs::Histogram* utilization_hist =
        obs::Registry::Global().GetHistogram(
            "netsim.link.utilization",
            {0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5, 2.0});
    utilization_hist->Observe(utilization);
#endif
    if (!policy.active && utilization > policy.threshold) {
      bgp_.SetLocalPrefOverride(policy.pop, policy.watched_link,
                                policy.shift_delta);
      policy.active = true;
      SISYPHUS_METRIC_COUNT("netsim.te.shifts", 1);
      RecordPathChanges(
          "te:" + topology_.GetPop(policy.pop).label + " shift-away",
          /*exogenous=*/false);
    } else if (policy.active &&
               utilization < policy.threshold - policy.hysteresis) {
      bgp_.ClearLocalPrefOverride(policy.pop, policy.watched_link);
      policy.active = false;
      RecordPathChanges(
          "te:" + topology_.GetPop(policy.pop).label + " shift-back",
          /*exogenous=*/false);
    }
  }
}

void NetworkSimulator::RecordPathChanges(const std::string& trigger,
                                         bool exogenous) {
  // The scan below queries one route per watched pair; computing the cold
  // per-destination tables is the expensive part, so fan that out first.
  std::vector<PopIndex> destinations;
  destinations.reserve(watched_.size());
  for (const WatchedPair& pair : watched_) {
    destinations.push_back(pair.destination);
  }
  bgp_.WarmRoutes(destinations);
  for (WatchedPair& pair : watched_) {
    std::vector<core::Asn> current;
    if (auto route = bgp_.Route(pair.source, pair.destination); route.ok()) {
      current = route.value().asn_path;
    }
    if (current != pair.last_asn_path) {
      if (pair.unreachable_at_watch && !current.empty()) {
        // First transition out of the unreachable-at-watch state: from
        // here on the pair behaves like any other watched path.
        pair.unreachable_at_watch = false;
      }
      RouteChangeRecord record;
      record.time = now_;
      record.source = pair.source;
      record.destination = pair.destination;
      record.old_asn_path = pair.last_asn_path;
      record.new_asn_path = current;
      record.trigger = trigger;
      record.exogenous = exogenous;
      route_changes_.push_back(std::move(record));
      pair.last_asn_path = current;
      SISYPHUS_METRIC_COUNT("netsim.route_changes.recorded", 1);
    }
  }
}

void NetworkSimulator::ApplyNow(const NetworkEvent& event) {
  ApplyEvent(event);
  RecordPathChanges(event.description.empty()
                        ? std::string(ToString(event.type))
                        : event.description,
                    event.exogenous);
}

void NetworkSimulator::AdvanceTo(core::SimTime until) {
  SISYPHUS_REQUIRE(now_ <= until, "AdvanceTo: time moves forward only");
  while (now_ < until) {
    now_ = std::min(until, now_ + tick_);
    SISYPHUS_METRIC_GAUGE("netsim.events.pending",
                          static_cast<double>(schedule_.pending()));
    // Events due strictly before (or at) the new time.
    for (const NetworkEvent& event :
         schedule_.PopUntil(now_ + core::SimTime(1))) {
      ApplyEvent(event);
      RecordPathChanges(event.description.empty()
                            ? std::string(ToString(event.type))
                            : event.description,
                        event.exogenous);
    }
    ApplyTePolicies();
  }
}

Result<BgpRoute> NetworkSimulator::RouteBetween(PopIndex source,
                                                PopIndex destination,
                                                AddressFamily af) {
  return bgp_.Route(source, destination, af);
}

void NetworkSimulator::WarmRoutes(const std::vector<PopIndex>& destinations,
                                  AddressFamily af) {
  bgp_.WarmRoutes(destinations, af);
}

bool NetworkSimulator::PopDark(PopIndex pop, core::SimTime t) const {
  for (const PopOutage& outage : pop_outages_) {
    if (outage.pop == pop && outage.start <= t && t < outage.end) return true;
  }
  return false;
}

Result<double> NetworkSimulator::SampleRtt(PopIndex source,
                                           PopIndex destination,
                                           core::Rng& rng,
                                           AddressFamily af) {
  auto route = bgp_.Route(source, destination, af);
  if (!route.ok()) return route.error();
  return latency_.SampleRttMs(route.value(), now_, rng);
}

}  // namespace sisyphus::netsim
