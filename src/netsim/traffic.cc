#include "netsim/traffic.h"

#include <algorithm>
#include <cmath>

namespace sisyphus::netsim {

namespace {
/// Periodic (wrap-around) squared distance on the 24h circle.
double CircularGap(double h, double center) {
  double d = std::fmod(std::abs(h - center), 24.0);
  if (d > 12.0) d = 24.0 - d;
  return d;
}

double Bump(double h, double center, double width) {
  const double d = CircularGap(h, center);
  return std::exp(-(d * d) / (2.0 * width * width));
}
}  // namespace

double DiurnalDemand(double local_hour) {
  // Work-hours shoulder (11:00) + evening peak (20:30), trough ~04:00.
  const double value =
      0.45 * Bump(local_hour, 11.0, 3.5) + 1.0 * Bump(local_hour, 20.5, 2.8);
  return std::min(1.0, value);
}

double DiurnalProfile::MeanUtilization(core::SimTime time) const {
  const double local_hour =
      std::fmod(time.HourOfDay() + utc_offset_hours + 24.0, 24.0);
  const double u =
      base_utilization + diurnal_amplitude * DiurnalDemand(local_hour);
  return std::clamp(u, 0.0, 0.97);
}

double DiurnalProfile::Utilization(core::SimTime time, core::Rng& rng) const {
  const double u =
      MeanUtilization(time) + (noise_sd > 0.0 ? rng.Gaussian(0.0, noise_sd) : 0.0);
  return std::clamp(u, 0.0, 0.97);
}

}  // namespace sisyphus::netsim
