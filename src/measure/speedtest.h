// Speed tests: the measurement primitive of the Table 1 case study.
//
// A speed test records RTT and throughput between a vantage point (user
// behind an access ⟨ASN, city⟩ PoP) and a measurement server, plus the
// traceroute triggered after the test (as M-Lab does). Every record
// carries an intent tag — one of the paper's §4 platform proposals — so
// analysts can condition on *why* a measurement exists and avoid collider
// bias when they must.
#pragma once

#include <string>
#include <vector>

#include "core/ids.h"
#include "core/rng.h"
#include "core/sim_time.h"
#include "measure/traceroute.h"
#include "netsim/simulator.h"

namespace sisyphus::measure {

/// Why a measurement was taken (§4 proposal 2: intent tagging).
enum class Intent {
  kBaseline,        ///< scheduled, state-independent (exogenous timing)
  kUserInitiated,   ///< user ran a test — more likely when things look bad
  kEventTriggered,  ///< platform reacted to an external signal (BGP change)
};

const char* ToString(Intent intent);

struct SpeedTestRecord {
  core::MeasurementId id;
  core::SimTime time;
  core::Asn asn;               ///< vantage ASN
  std::string city;            ///< vantage city name
  netsim::PopIndex vantage_pop = 0;
  netsim::PopIndex server_pop = 0;
  double rtt_ms = 0.0;
  double loss_rate = 0.0;  ///< end-to-end path loss during the test
  double throughput_mbps = 0.0;
  Intent intent = Intent::kBaseline;
  netsim::AddressFamily address_family = netsim::AddressFamily::kIpv4;
  /// Probe attempts consumed before this record existed (1 = first try).
  /// Extends §4 intent tagging to *failure* provenance: analysts can see
  /// that a record only exists because the platform retried through loss.
  std::uint32_t attempts = 1;
  Traceroute traceroute;
  std::vector<core::Asn> asn_path;

  /// ⟨ASN, city⟩ unit key, e.g. "3741 / East London".
  std::string UnitKey() const;
};

struct SpeedTestModelOptions {
  /// Last-mile access overhead added to the path RTT (WiFi, DSLAM...).
  double last_mile_base_ms = 2.0;
  double last_mile_sd_ms = 0.8;
  /// Probability a test hits a transient last-mile spike, and its scale.
  double spike_probability = 0.03;
  double spike_scale_ms = 25.0;
  /// Bottleneck throughput model: the minimum of an access-capacity
  /// curve capacity / (1 + rtt/rtt_half) and a Mathis-style single-flow
  /// TCP limit mss_bits * C / (rtt * sqrt(loss)).
  double access_capacity_mbps = 95.0;
  double rtt_half_ms = 120.0;
  double throughput_noise_sigma = 0.15;
  double mathis_constant = 1.22;
  double mss_bytes = 1460.0;
};

/// Executes one speed test right now. Fails (kNotFound) when the vantage
/// cannot reach the server.
core::Result<SpeedTestRecord> RunSpeedTest(
    netsim::NetworkSimulator& simulator, netsim::PopIndex vantage,
    netsim::PopIndex server, Intent intent, core::Rng& rng,
    const SpeedTestModelOptions& options = {},
    netsim::AddressFamily af = netsim::AddressFamily::kIpv4);

}  // namespace sisyphus::measure
