// Measurement platform: runs campaigns over the simulated Internet and
// implements the paper's §4 design proposals.
//
//  (1) Conditional activation — when a watched path changes, the platform
//      fires a burst of tests tagged kEventTriggered, turning route events
//      into usable before/after measurements.
//  (2) Intent tagging — every record carries WHY it exists (baseline
//      schedule, user frustration, event reaction), so analysts can see —
//      and avoid conditioning on — the collider.
//  (4) Endogeneity as signal — user-initiated tests are generated with the
//      realistic feedback: users test more when performance degrades or
//      right after a route change. The bias is simulated, not assumed
//      away, which is what lets the collider experiment (bench E3) show it.
//
// Proposal (3), the exogenous-intervention API, lives in intervention.h.
#pragma once

#include <vector>

#include "core/rng.h"
#include "measure/edge_steering.h"
#include "measure/speedtest.h"
#include "measure/store.h"
#include "netsim/simulator.h"

namespace sisyphus::measure {

struct VantageConfig {
  netsim::PopIndex pop = 0;
  /// Scheduled tests/day (Poisson); exogenous timing.
  double baseline_tests_per_day = 8.0;
  /// User-initiated base rate; scaled up by dissatisfaction.
  double user_tests_per_day = 0.0;
  /// Extra rate multiplier per unit of relative RTT excess over the
  /// user's habituated level: rate *= 1 + gain * max(0, rtt/ewma - 1).
  double dissatisfaction_gain = 8.0;
  /// Multiplier applied during a step in which this vantage's path to the
  /// server changed.
  double route_change_multiplier = 3.0;
};

struct PlatformOptions {
  netsim::PopIndex server = 0;
  core::SimTime step = core::SimTime::FromHours(1);
  /// §4 proposal 1: fire a test burst when a watched path changes.
  bool conditional_activation = false;
  std::size_t event_burst_tests = 4;
  /// EWMA smoothing for the user's habituated RTT (per step).
  double ewma_alpha = 0.05;
  SpeedTestModelOptions test_model;
};

class Platform {
 public:
  /// The simulator must outlive the platform.
  Platform(netsim::NetworkSimulator& simulator, PlatformOptions options);

  /// Registers a vantage point; also registers a path watch on the
  /// simulator so conditional activation and user reactions can see
  /// route changes.
  void AddVantage(VantageConfig config);

  /// Routes every test's server choice through `steering` (resolver
  /// rotation / anycast model) instead of the fixed options.server.
  /// Non-owning; pass nullptr to revert. The steering object must outlive
  /// the platform while installed.
  void SetEdgeSteering(EdgeSteering* steering) { steering_ = steering; }

  /// Runs the campaign from the simulator's current time to `until`,
  /// advancing the network and generating tests step by step.
  void Run(core::SimTime until, core::Rng& rng);

  MeasurementStore& store() { return store_; }
  const MeasurementStore& store() const { return store_; }
  const PlatformOptions& options() const { return options_; }

  /// Total tests by intent (diagnostics).
  std::size_t CountByIntent(Intent intent) const;

 private:
  struct VantageState {
    VantageConfig config;
    double ewma_rtt = -1.0;  ///< habituated RTT; <0 = uninitialized
  };

  void RunTests(VantageState& vantage, std::size_t count, Intent intent,
                core::Rng& rng);

  netsim::NetworkSimulator& simulator_;
  PlatformOptions options_;
  std::vector<VantageState> vantages_;
  MeasurementStore store_;
  std::size_t route_change_cursor_ = 0;
  EdgeSteering* steering_ = nullptr;
};

}  // namespace sisyphus::measure
