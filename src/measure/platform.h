// Measurement platform: runs campaigns over the simulated Internet and
// implements the paper's §4 design proposals.
//
//  (1) Conditional activation — when a watched path changes, the platform
//      fires a burst of tests tagged kEventTriggered, turning route events
//      into usable before/after measurements.
//  (2) Intent tagging — every record carries WHY it exists (baseline
//      schedule, user frustration, event reaction), so analysts can see —
//      and avoid conditioning on — the collider.
//  (4) Endogeneity as signal — user-initiated tests are generated with the
//      realistic feedback: users test more when performance degrades or
//      right after a route change. The bias is simulated, not assumed
//      away, which is what lets the collider experiment (bench E3) show it.
//
// Proposal (3), the exogenous-intervention API, lives in intervention.h.
#pragma once

#include <map>
#include <vector>

#include "core/rng.h"
#include "measure/edge_steering.h"
#include "measure/faults.h"
#include "measure/speedtest.h"
#include "measure/store.h"
#include "netsim/simulator.h"

namespace sisyphus::measure {

struct VantageConfig {
  netsim::PopIndex pop = 0;
  /// Scheduled tests/day (Poisson); exogenous timing.
  double baseline_tests_per_day = 8.0;
  /// User-initiated base rate; scaled up by dissatisfaction.
  double user_tests_per_day = 0.0;
  /// Extra rate multiplier per unit of relative RTT excess over the
  /// user's habituated level: rate *= 1 + gain * max(0, rtt/ewma - 1).
  double dissatisfaction_gain = 8.0;
  /// Multiplier applied during a step in which this vantage's path to the
  /// server changed.
  double route_change_multiplier = 3.0;
};

/// Retry policy for failed probes: attempt, then exponential backoff in
/// simulated time within the step. Retries help against transient probe
/// loss; they cannot help against outage windows or missing routes.
struct RetryOptions {
  std::size_t max_attempts = 3;
  core::SimTime backoff_base = core::SimTime(1);
  double backoff_multiplier = 2.0;
};

struct PlatformOptions {
  netsim::PopIndex server = 0;
  core::SimTime step = core::SimTime::FromHours(1);
  /// §4 proposal 1: fire a test burst when a watched path changes.
  bool conditional_activation = false;
  std::size_t event_burst_tests = 4;
  /// EWMA smoothing for the user's habituated RTT (per step).
  double ewma_alpha = 0.05;
  SpeedTestModelOptions test_model;
  RetryOptions retry;
  /// Ingest bounds for the platform's store (quarantine thresholds).
  StoreValidationOptions validation;
};

/// A probe that produced no record even after retries — the failure-side
/// counterpart of intent tagging (§4): the archive records not only why a
/// measurement exists but why one is absent.
struct ProbeFailure {
  core::SimTime time;
  netsim::PopIndex vantage = 0;
  Intent intent = Intent::kBaseline;
  ProbeFault reason = ProbeFault::kNone;
  std::uint32_t attempts = 0;
};

class Platform {
 public:
  /// The simulator must outlive the platform.
  Platform(netsim::NetworkSimulator& simulator, PlatformOptions options);

  /// Registers a vantage point; also registers a path watch on the
  /// simulator so conditional activation and user reactions can see
  /// route changes.
  void AddVantage(VantageConfig config);

  /// Routes every test's server choice through `steering` (resolver
  /// rotation / anycast model) instead of the fixed options.server.
  /// Non-owning; pass nullptr to revert. The steering object must outlive
  /// the platform while installed.
  void SetEdgeSteering(EdgeSteering* steering) { steering_ = steering; }

  /// Installs a fault injector consulted on every probe attempt and every
  /// successful record. Non-owning; pass nullptr for a failure-free
  /// platform. Must outlive the platform while installed.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Runs the campaign from the simulator's current time to `until`,
  /// advancing the network and generating tests step by step.
  ///
  /// Within a step, vantages are independent: each one draws from a
  /// generator forked off a per-step seed (Rng::Fork(step_seed, vantage)),
  /// produces a local batch of records and failures, and the batches are
  /// merged into the store in vantage order with sequential ids. The
  /// per-vantage work therefore fans out across the core::ThreadPool with
  /// results byte-identical to the serial order at any SISYPHUS_THREADS
  /// (DESIGN.md §7). With edge steering installed, the same forked-stream
  /// structure runs serially (the steering decision log is order-sensitive
  /// shared state), producing identical output.
  void Run(core::SimTime until, core::Rng& rng);

  MeasurementStore& store() { return store_; }
  const MeasurementStore& store() const { return store_; }
  const PlatformOptions& options() const { return options_; }

  /// Total tests by intent (diagnostics).
  std::size_t CountByIntent(Intent intent) const;

  /// Probes that produced no record even after retries, in time order.
  const std::vector<ProbeFailure>& failures() const { return failures_; }

  /// Terminal probe-failure counts by reason (mirrors the ProbeFault
  /// provenance of failures(), pre-aggregated for manifests and logs).
  std::map<std::string, std::size_t> FailureReasonCounts() const;

  /// Failed-probe counts per vantage PoP — the per-vantage outage/loss
  /// picture, queryable without walking failures().
  std::map<netsim::PopIndex, std::size_t> FailuresByVantage() const;

  /// Emits the campaign-end summary line (archive/quarantine/failure
  /// counts, broken down by reason) at Info level. Called by Run().
  void LogCampaignSummary() const;

 private:
  struct VantageState {
    VantageConfig config;
    double ewma_rtt = -1.0;  ///< habituated RTT; <0 = uninitialized
  };

  /// A record awaiting merge: ids are assigned at merge time so they stay
  /// sequential in vantage order regardless of task scheduling.
  struct PendingRecord {
    SpeedTestRecord record;
    bool duplicate = false;      ///< deliver a second copy (injected fault)
    std::uint8_t fault_mask = 0; ///< obs::kLineageFault* bits that fired
  };

  /// Per-vantage, per-step output produced inside a parallel task and
  /// merged into store_/failures_ on the campaign thread.
  struct VantageBatch {
    std::vector<PendingRecord> records;
    std::vector<ProbeFailure> failures;
  };

  void RunTests(VantageState& vantage, std::size_t count, Intent intent,
                double congestion_signal, core::Rng& rng,
                VantageBatch& batch);

  /// One probe with retry/backoff; appends the record or a failure to the
  /// batch.
  void RunOneTest(VantageState& vantage, Intent intent,
                  double congestion_signal, core::Rng& rng,
                  VantageBatch& batch);

  /// Appends to failures_ and bumps the failure metrics (total + per
  /// ProbeFault reason), keeping the two views consistent.
  void RecordFailure(ProbeFailure failure);

  netsim::NetworkSimulator& simulator_;
  PlatformOptions options_;
  std::vector<VantageState> vantages_;
  MeasurementStore store_;
  std::vector<ProbeFailure> failures_;
  std::size_t route_change_cursor_ = 0;
  /// Campaign-local record ids (1-based). RunSpeedTest's process-global
  /// counter would differ across campaigns in one process, breaking the
  /// byte-identical-replay guarantee of seeded fault plans.
  std::uint64_t next_record_id_ = 1;
  EdgeSteering* steering_ = nullptr;
  FaultInjector* injector_ = nullptr;
};

}  // namespace sisyphus::measure
