// Measurement platform: runs campaigns over the simulated Internet and
// implements the paper's §4 design proposals.
//
//  (1) Conditional activation — when a watched path changes, the platform
//      fires a burst of tests tagged kEventTriggered, turning route events
//      into usable before/after measurements.
//  (2) Intent tagging — every record carries WHY it exists (baseline
//      schedule, user frustration, event reaction), so analysts can see —
//      and avoid conditioning on — the collider.
//  (4) Endogeneity as signal — user-initiated tests are generated with the
//      realistic feedback: users test more when performance degrades or
//      right after a route change. The bias is simulated, not assumed
//      away, which is what lets the collider experiment (bench E3) show it.
//
// Proposal (3), the exogenous-intervention API, lives in intervention.h.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/rng.h"
#include "measure/edge_steering.h"
#include "measure/faults.h"
#include "measure/panel.h"
#include "measure/speedtest.h"
#include "measure/store.h"
#include "netsim/simulator.h"

namespace sisyphus::measure {

struct VantageConfig {
  netsim::PopIndex pop = 0;
  /// Scheduled tests/day (Poisson); exogenous timing.
  double baseline_tests_per_day = 8.0;
  /// User-initiated base rate; scaled up by dissatisfaction.
  double user_tests_per_day = 0.0;
  /// Extra rate multiplier per unit of relative RTT excess over the
  /// user's habituated level: rate *= 1 + gain * max(0, rtt/ewma - 1).
  double dissatisfaction_gain = 8.0;
  /// Multiplier applied during a step in which this vantage's path to the
  /// server changed.
  double route_change_multiplier = 3.0;
};

/// Retry policy for failed probes: attempt, then exponential backoff in
/// simulated time within the step. Retries help against transient probe
/// loss; they cannot help against outage windows or missing routes.
struct RetryOptions {
  std::size_t max_attempts = 3;
  core::SimTime backoff_base = core::SimTime(1);
  double backoff_multiplier = 2.0;
};

struct PlatformOptions {
  netsim::PopIndex server = 0;
  core::SimTime step = core::SimTime::FromHours(1);
  /// §4 proposal 1: fire a test burst when a watched path changes.
  bool conditional_activation = false;
  std::size_t event_burst_tests = 4;
  /// EWMA smoothing for the user's habituated RTT (per step).
  double ewma_alpha = 0.05;
  SpeedTestModelOptions test_model;
  RetryOptions retry;
  /// Ingest bounds for the platform's store (quarantine thresholds).
  StoreValidationOptions validation;
  /// Emit a live progress line every N committed steps (0 = never). The
  /// cadence is step-count-based, never wall-clock, so the line sequence
  /// is deterministic; the measure.stream.* gauges refresh every step
  /// regardless.
  std::size_t heartbeat_every_steps = 50;
};

/// A probe that produced no record even after retries — the failure-side
/// counterpart of intent tagging (§4): the archive records not only why a
/// measurement exists but why one is absent.
struct ProbeFailure {
  core::SimTime time;
  netsim::PopIndex vantage = 0;
  Intent intent = Intent::kBaseline;
  ProbeFault reason = ProbeFault::kNone;
  std::uint32_t attempts = 0;
};

/// Options for the streaming ingest path.
struct StreamingOptions {
  PanelOptions panel;
  std::size_t shard_count = ShardedMeasurementStore::kDefaultShardCount;
};

/// Everything one platform step produced, before any of it is committed:
/// the merge-ordered record batch (sequential ids already assigned in
/// vantage order) and the step's probe failures. This is the unit of
/// durability (DESIGN.md §11): the journal records a serialized StepOutput
/// before it is applied, and recovery re-generates the same StepOutput
/// from the restored RNG/simulator state and verifies it byte-for-byte
/// against the journaled frame.
struct StepOutput {
  std::vector<PendingRecord> records;
  std::vector<ProbeFailure> failures;
  core::SimTime step_end;
};

/// The streaming campaign sink: owns the sharded columnar store and the
/// incremental panel builder, and ingests merge-ordered batches as the
/// platform produces them. One batch = one platform step; within a batch,
/// ingest fans out across the core::ThreadPool with one task per shard
/// (shard = hash(unit)), so validation, quarantine metrics, lineage
/// emission, and panel folds all run inside the owning shard's task.
/// Because the shard layout is a pure function of unit keys and the pool
/// replays captured metric/lineage writes in shard-index order, every
/// artifact is byte-identical to the batch path at any SISYPHUS_THREADS
/// (DESIGN.md §10).
class StreamingCampaign {
 public:
  StreamingCampaign(StoreValidationOptions validation,
                    StreamingOptions options);

  /// Ingests one merge-ordered batch (ids already assigned). Every record
  /// reaches exactly one terminal verdict: archived into its shard's arena
  /// and folded into the panel, or quarantined — with the same
  /// metrics/lineage the batch path records.
  void IngestBatch(const std::vector<PendingRecord>& batch);

  /// Serial variant of IngestBatch: identical verdicts, metrics, lineage,
  /// and panel folds, but shards are walked in order on the calling thread
  /// with no pool region. This is the pipelined-consumer path (DESIGN.md
  /// §11): the consumer thread must not open parallel regions of its own,
  /// and serial shard order equals the pool's index-ordered replay, so the
  /// artifacts stay byte-identical either way.
  void IngestBatchSerial(const std::vector<PendingRecord>& batch);

  /// Serializes / restores the full campaign state (store arenas, panel
  /// aggregates, batch counters) for a durable snapshot (DESIGN.md §11).
  void Save(core::binio::Writer& w) const;
  bool Load(core::binio::Reader& r);

  /// Assembles the panel from the running cell aggregates (serial; call
  /// after the campaign ends).
  Panel FinalizePanel() const { return panel_.Finalize(); }

  ShardedMeasurementStore& store() { return store_; }
  const ShardedMeasurementStore& store() const { return store_; }
  const IncrementalPanelBuilder& panel_builder() const { return panel_; }
  std::uint64_t batches() const { return batches_; }
  /// Record copies offered for ingest (archived + quarantined).
  std::uint64_t ingested() const { return ingested_; }

 private:
  /// Shared per-shard ingest body: one shard's slice of a batch, applied
  /// on whatever thread owns the shard for this batch (a pool task or the
  /// serial consumer). `units[i]` is batch[i]'s precomputed unit key.
  void IngestShard(std::size_t shard, const std::vector<PendingRecord>& batch,
                   const std::vector<std::string>& units,
                   const std::vector<std::uint32_t>& indices);

  StreamingOptions options_;
  ShardedMeasurementStore store_;
  IncrementalPanelBuilder panel_;
  std::uint64_t batches_ = 0;
  std::uint64_t ingested_ = 0;
};

class Platform {
 public:
  /// The simulator must outlive the platform.
  Platform(netsim::NetworkSimulator& simulator, PlatformOptions options);

  /// Registers a vantage point; also registers a path watch on the
  /// simulator so conditional activation and user reactions can see
  /// route changes.
  void AddVantage(VantageConfig config);

  /// Routes every test's server choice through `steering` (resolver
  /// rotation / anycast model) instead of the fixed options.server.
  /// Non-owning; pass nullptr to revert. The steering object must outlive
  /// the platform while installed.
  void SetEdgeSteering(EdgeSteering* steering) { steering_ = steering; }

  /// Installs a fault injector consulted on every probe attempt and every
  /// successful record. Non-owning; pass nullptr for a failure-free
  /// platform. Must outlive the platform while installed.
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  /// Runs the campaign from the simulator's current time to `until`,
  /// advancing the network and generating tests step by step.
  ///
  /// Within a step, vantages are independent: each one draws from a
  /// generator forked off a per-step seed (Rng::Fork(step_seed, vantage)),
  /// produces a local batch of records and failures, and the batches are
  /// merged into the store in vantage order with sequential ids. The
  /// per-vantage work therefore fans out across the core::ThreadPool with
  /// results byte-identical to the serial order at any SISYPHUS_THREADS
  /// (DESIGN.md §7). With edge steering installed, the same forked-stream
  /// structure runs serially (the steering decision log is order-sensitive
  /// shared state), producing identical output.
  void Run(core::SimTime until, core::Rng& rng);

  /// Streaming variant of Run(): identical step loop, generation, and
  /// merge-time id assignment, but each step's merge-ordered record batch
  /// is handed to `sink.IngestBatch` instead of the in-memory batch store
  /// (which stays empty). Probe failures are recorded on the platform
  /// either way. Same seed + same fault plan => sink artifacts
  /// byte-identical to the batch path's, at any SISYPHUS_THREADS.
  void RunStreaming(core::SimTime until, core::Rng& rng,
                    StreamingCampaign& sink);

  // -- step-at-a-time API (the durable service drives these directly) ----

  /// Runs ONE step ending at min(Now() + step, until) — advance the
  /// simulator, fan per-vantage generation across the pool, habituate
  /// EWMAs — and returns the merge-ordered batch with sequential ids
  /// assigned in vantage order, WITHOUT committing anything to a store or
  /// recording failures. Both Run() and RunStreaming() are loops over
  /// GenerateStep; the durable service journals the StepOutput before
  /// applying it. Precondition: Now() < until.
  StepOutput GenerateStep(core::SimTime until, core::Rng& rng);

  /// Records a step's probe failures (metrics + lineage + failures()).
  void CommitFailures(const std::vector<ProbeFailure>& failures);

  /// Commits a batch-path step: lineage verdicts + store() ingestion in
  /// merge order, then the failures.
  void CommitBatch(StepOutput&& step);

  /// Fast-forwards one step of simulated time WITHOUT generating tests,
  /// consuming RNG draws, or touching EWMAs: advances the simulator,
  /// swallows the step's route changes, and touches every
  /// (vantage, server) route so the BGP route cache is as warm as a live
  /// step would leave it. Recovery replays k snapshot-covered steps with
  /// this before restoring state (DESIGN.md §11).
  void SkipStep(core::SimTime until);

  /// The platform-side mutable state a snapshot must carry: everything a
  /// resumed process cannot re-derive from re-construction (EWMAs evolve
  /// per step; ids/cursor/failures accumulate).
  struct StreamState {
    std::uint64_t next_record_id = 1;
    std::uint64_t route_change_cursor = 0;
    std::vector<double> ewma_rtt;  ///< one per vantage, AddVantage order
    std::vector<ProbeFailure> failures;
  };
  StreamState CaptureStreamState() const;
  void RestoreStreamState(const StreamState& state);

  MeasurementStore& store() { return store_; }
  const MeasurementStore& store() const { return store_; }
  const PlatformOptions& options() const { return options_; }

  /// Current simulated time (the step loop driven externally by the
  /// durable service needs the clock the internal loops read).
  core::SimTime Now() const { return simulator_.Now(); }

  /// Total tests by intent (diagnostics).
  std::size_t CountByIntent(Intent intent) const;

  /// Probes that produced no record even after retries, in time order.
  const std::vector<ProbeFailure>& failures() const { return failures_; }

  /// Terminal probe-failure counts by reason (mirrors the ProbeFault
  /// provenance of failures(), pre-aggregated for manifests and logs).
  std::map<std::string, std::size_t> FailureReasonCounts() const;

  /// Failed-probe counts per vantage PoP — the per-vantage outage/loss
  /// picture, queryable without walking failures().
  std::map<netsim::PopIndex, std::size_t> FailuresByVantage() const;

  /// Emits the campaign-end summary line (archive/quarantine/failure
  /// counts, broken down by reason) at Info level. Called by Run().
  void LogCampaignSummary() const;

 private:
  struct VantageState {
    VantageConfig config;
    double ewma_rtt = -1.0;  ///< habituated RTT; <0 = uninitialized
  };

  /// Per-vantage, per-step output produced inside a parallel task and
  /// merged into store_/failures_ on the campaign thread.
  struct VantageBatch {
    std::vector<PendingRecord> records;
    std::vector<ProbeFailure> failures;
  };

  void RunTests(VantageState& vantage, std::size_t count, Intent intent,
                double congestion_signal, core::Rng& rng,
                VantageBatch& batch);

  /// One probe with retry/backoff; appends the record or a failure to the
  /// batch.
  void RunOneTest(VantageState& vantage, Intent intent,
                  double congestion_signal, core::Rng& rng,
                  VantageBatch& batch);

  /// Appends to failures_ and bumps the failure metrics (total + per
  /// ProbeFault reason), keeping the two views consistent.
  void RecordFailure(ProbeFailure failure);

  /// The shared step loop behind Run and RunStreaming: simulate, fan
  /// per-vantage generation across the pool, then merge in vantage order —
  /// into store_ when `streaming` is null, into the sink otherwise.
  void RunLoop(core::SimTime until, core::Rng& rng,
               StreamingCampaign* streaming);

  netsim::NetworkSimulator& simulator_;
  PlatformOptions options_;
  std::vector<VantageState> vantages_;
  MeasurementStore store_;
  std::vector<ProbeFailure> failures_;
  std::size_t route_change_cursor_ = 0;
  /// Campaign-local record ids (1-based). RunSpeedTest's process-global
  /// counter would differ across campaigns in one process, breaking the
  /// byte-identical-replay guarantee of seeded fault plans.
  std::uint64_t next_record_id_ = 1;
  EdgeSteering* steering_ = nullptr;
  FaultInjector* injector_ = nullptr;
};

/// Streaming telemetry heartbeat, shared by the platform step loop (batch
/// and streaming branches) and the durable service's step loop so the
/// gauges agree across every execution path. Every call refreshes the
/// measure.stream.{records_ingested,journal_high_water,queue_depth}
/// gauges with values that are pure functions of the committed step
/// stream (queue_depth is always 0 at a step boundary — a live depth
/// would leak scheduling into metrics.json and break batch/stream
/// parity). Every `every` steps it additionally emits an info-level
/// progress line, where `live_queue_depth` (the pipelined consumer's
/// backlog, timing-dependent) is allowed to appear because log lines are
/// not part of the artifact contract.
void EmitStreamHeartbeat(std::uint64_t committed_steps,
                         std::uint64_t committed_records,
                         std::size_t live_queue_depth, std::size_t every);

/// Step-boundary telemetry: the heartbeat above plus the timeline sample
/// for this committed step (DESIGN.md §15). Produce-phase series — stream
/// counters and the netsim.bgp.* reconvergence counters, all pure
/// functions of the committed step stream — are sampled and the produce
/// phase closed. The ingest phase is then closed too: with the running
/// means from `campaign` when it is non-null (batch-path callers pass
/// null: no panel builder, so no RTT series), or empty — unless
/// `ingest_sampled_elsewhere` is set, which the pipelined durable loop
/// uses because its consumer thread closes the ingest phase itself via
/// SampleTimelineIngest after the step's batch lands.
void EmitStepTelemetry(std::uint64_t committed_steps,
                       std::uint64_t committed_records,
                       std::size_t live_queue_depth, std::size_t every,
                       const StreamingCampaign* campaign,
                       bool ingest_sampled_elsewhere);

/// Samples every panel unit's running RTT mean into the timeline (series
/// `rtt.mean.<unit>`, level-shift detector attached) and closes the
/// step's ingest phase. Call exactly once per committed step, after the
/// step's batch has been ingested; in the pipelined durable loop this
/// runs on the consumer thread before the step is marked done, so
/// quiesce/snapshot points never see a half-sampled step.
void SampleTimelineIngest(std::uint64_t step,
                          const StreamingCampaign& campaign);

/// Declares the fixed produce-phase series (stream counters + netsim.bgp
/// reconvergence counters) up front. Step loops call this before their
/// first step so series ids are pinned before the pipelined consumer can
/// declare its first rtt.mean.* series — otherwise id assignment (and so
/// the artifact bytes) would depend on which thread sampled first.
void DeclareStreamTelemetrySeries();

}  // namespace sisyphus::measure
