// Fault injection for the measurement platform.
//
// The paper's central warning is that real measurement archives are not
// clean panels: probes vanish, vantages go dark, traceroutes truncate,
// collectors duplicate and corrupt records, and clocks drift — and the
// missingness is often correlated with the very network conditions under
// study (MNAR). A FaultPlan describes that failure model declaratively; a
// FaultInjector executes it deterministically from a single seed, so any
// experiment can be replayed bit-for-bit on degraded data (DESIGN.md §5,
// "Failure model & degraded-data semantics").
//
// The injector is consulted by Platform on every probe attempt (probe
// loss, outage windows) and on every successful record (truncation,
// duplication, corruption, clock skew). Corrupted records are meant to be
// caught by MeasurementStore's quarantine, never by downstream estimators.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/sim_time.h"
#include "measure/speedtest.h"
#include "netsim/topology.h"

namespace sisyphus::measure {

/// Why a probe attempt produced no usable record.
enum class ProbeFault {
  kNone,             ///< the attempt succeeded
  kProbeLoss,        ///< the probe vanished (possibly congestion-coupled)
  kVantageOutage,    ///< the vantage was dark for the attempt window
  kCollectorOutage,  ///< the collector was down; the result was dropped
  kUnreachable,      ///< no route existed (network-level, not injected)
};

const char* ToString(ProbeFault fault);

/// A half-open dark window [start, end).
struct OutageWindow {
  core::SimTime start, end;

  bool Contains(core::SimTime t) const { return start <= t && t < end; }
};

/// Outage windows of one vantage PoP.
struct VantageOutagePlan {
  netsim::PopIndex pop = 0;
  std::vector<OutageWindow> windows;
};

/// Declarative failure model. All probabilities are per probe attempt /
/// per record; everything is driven by `seed` alone.
struct FaultPlan {
  std::uint64_t seed = 1;

  /// Baseline probability that a probe attempt is lost.
  double probe_loss_probability = 0.0;
  /// MNAR knob: extra loss probability per unit of congestion signal (the
  /// probed path's loss rate), so missingness correlates with exactly the
  /// conditions the causal analysis wants to measure. Effective loss is
  /// clamped to [0, 1].
  double mnar_loss_gain = 0.0;

  /// Per-vantage and collector-wide dark windows.
  std::vector<VantageOutagePlan> vantage_outages;
  std::vector<OutageWindow> collector_outages;

  /// Probability a successful test's traceroute is truncated (a uniform
  /// number of tail hops dropped, keeping at least `truncation_min_hops`).
  double traceroute_truncation_probability = 0.0;
  std::size_t truncation_min_hops = 1;

  /// Probability a record is delivered twice (collector at-least-once).
  double duplicate_probability = 0.0;
  /// Probability a record is corrupted in flight (negative RTT, bogus
  /// timestamp, impossible loss rate, non-finite throughput — one variant
  /// chosen at random). Quarantine fodder.
  double corruption_probability = 0.0;

  /// Bounded clock skew: record timestamps shift by a uniform offset in
  /// [-max_clock_skew, +max_clock_skew].
  core::SimTime max_clock_skew{0};
};

/// Deterministically places `count` windows of length `duration` uniformly
/// in [0, horizon - duration], sorted by start. Windows may overlap.
std::vector<OutageWindow> GenerateOutageWindows(std::uint64_t seed,
                                                core::SimTime horizon,
                                                std::size_t count,
                                                core::SimTime duration);

/// Canonical one-line serialization of a plan — equal plans produce equal
/// strings. Hash it (core::Fnv1a64Hex) for run-manifest provenance.
std::string FaultPlanFingerprint(const FaultPlan& plan);

/// Counters of what the injector actually did (diagnostics).
struct FaultStats {
  std::size_t probes_lost = 0;
  std::size_t vantage_outage_hits = 0;
  std::size_t collector_outage_hits = 0;
  std::size_t traceroutes_truncated = 0;
  std::size_t records_duplicated = 0;
  std::size_t records_corrupted = 0;
  std::size_t records_skewed = 0;
};

/// Executes a FaultPlan. Decisions are drawn from a caller-provided
/// generator (Platform passes its per-vantage forked stream, DESIGN.md §7),
/// each decision consuming exactly ONE draw that is then mixed with a
/// plan-seed-derived constant. Consequences:
///  - deterministic: the same plan and the same caller stream make
///    identical decisions in an identical call sequence;
///  - plan.seed still matters: two plans differing only in seed realize
///    different faults from the same caller stream;
///  - stream-aligned: every call consumes a fixed number of caller draws
///    regardless of plan probabilities or outcomes, so runs with different
///    plans (or none of the optional faults firing) stay comparable;
///  - thread-safe: the injector holds no generator state, and the stats
///    counters are atomic, so one injector can serve concurrent
///    per-vantage probe tasks.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  /// Snapshot of the fault counters (atomics copied into a plain struct).
  FaultStats stats() const;

  /// True while `pop` / the collector is inside a planned dark window.
  /// Const queries: no randomness, no counter updates.
  bool VantageDark(netsim::PopIndex pop, core::SimTime t) const;
  bool CollectorDark(core::SimTime t) const;

  /// Decides whether one probe attempt is lost. `congestion_signal` is the
  /// probed path's current loss rate (or any non-negative congestion
  /// proxy); with mnar_loss_gain > 0 it couples missingness to treatment.
  /// Consumes exactly one draw from `rng`.
  ProbeFault SampleProbeFault(double congestion_signal, core::Rng& rng);

  /// Applies record-level faults in place (clock skew, traceroute
  /// truncation, corruption). Returns true when the record should ALSO be
  /// delivered a second time (duplication). Always consumes the same
  /// number of draws from `rng` (six) regardless of outcome, so decision
  /// streams stay aligned across plans that differ only in probabilities.
  /// When `fault_mask` is non-null, the obs::kLineageFault* bits of the
  /// faults that actually fired are OR-ed into it (lineage provenance).
  bool ApplyRecordFaults(SpeedTestRecord& record, core::Rng& rng,
                         std::uint8_t* fault_mask = nullptr);

 private:
  /// Atomic mirror of FaultStats (updated from concurrent probe tasks).
  struct AtomicFaultStats {
    std::atomic<std::size_t> probes_lost{0};
    std::atomic<std::size_t> vantage_outage_hits{0};
    std::atomic<std::size_t> collector_outage_hits{0};
    std::atomic<std::size_t> traceroutes_truncated{0};
    std::atomic<std::size_t> records_duplicated{0};
    std::atomic<std::size_t> records_corrupted{0};
    std::atomic<std::size_t> records_skewed{0};
  };

  /// One caller draw mixed with the plan seed, finalized to 64 bits.
  std::uint64_t DecisionBits(core::Rng& rng) const;
  /// Decision helpers built on DecisionBits (one draw each, fixed cost).
  double DecisionDouble(core::Rng& rng) const;
  bool DecisionBernoulli(core::Rng& rng, double p) const;
  std::int64_t DecisionInt(core::Rng& rng, std::int64_t lo,
                           std::int64_t hi) const;

  FaultPlan plan_;
  std::uint64_t mix_ = 0;  ///< plan-seed-derived decision mixing constant
  AtomicFaultStats stats_;
};

}  // namespace sisyphus::measure
