// MeasurementStore: the archive of speed-test records, queryable by
// ⟨ASN, city⟩ unit, time window, intent, and IXP-crossing status.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "measure/speedtest.h"

namespace sisyphus::measure {

class MeasurementStore {
 public:
  void Add(SpeedTestRecord record);

  std::size_t size() const { return records_.size(); }
  const std::vector<SpeedTestRecord>& records() const { return records_; }

  /// Distinct unit keys, sorted.
  std::vector<std::string> Units() const;

  /// Records of one unit, in time order.
  std::vector<const SpeedTestRecord*> ForUnit(const std::string& unit) const;

  /// Records matching a predicate.
  std::vector<const SpeedTestRecord*> Select(
      const std::function<bool(const SpeedTestRecord&)>& predicate) const;

  /// First time a record of `unit` crossed `ixp` (by traceroute hop
  /// matching); nullopt if it never does.
  std::optional<core::SimTime> FirstIxpCrossing(
      const netsim::Topology& topology, const std::string& unit,
      core::IxpId ixp) const;

  /// Fraction of a unit's tests in [start, end) that cross `ixp`.
  double IxpCrossingShare(const netsim::Topology& topology,
                          const std::string& unit, core::IxpId ixp,
                          core::SimTime start, core::SimTime end) const;

 private:
  std::vector<SpeedTestRecord> records_;
  std::map<std::string, std::vector<std::size_t>> by_unit_;
};

}  // namespace sisyphus::measure
