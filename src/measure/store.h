// MeasurementStore: the archive of speed-test records, queryable by
// ⟨ASN, city⟩ unit, time window, intent, and IXP-crossing status.
//
// Ingest is validating: records that cannot be physically right (negative
// RTT, out-of-range timestamps, impossible loss rates, non-finite
// throughput) never enter the archive — they land in an inspectable
// quarantine with a reason, so corrupt data cannot poison downstream
// panels and estimators while remaining available for debugging.
#pragma once

#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/result.h"
#include "measure/speedtest.h"

namespace sisyphus::measure {

/// What Add() accepts into the archive. Everything outside these bounds is
/// quarantined, not dropped.
struct StoreValidationOptions {
  double max_rtt_ms = 60'000.0;  ///< 1 minute: beyond any sane speed test
  core::SimTime min_time{0};
  core::SimTime max_time{std::numeric_limits<std::int64_t>::max()};
};

/// Ok, or the reason a record is implausible.
core::Status ValidateRecord(const SpeedTestRecord& record,
                            const StoreValidationOptions& options = {});

/// A rejected record plus why it was rejected.
struct QuarantinedRecord {
  SpeedTestRecord record;
  std::string reason;
};

/// Short stable tag for a quarantine reason ("rtt", "loss_rate",
/// "throughput", "timestamp", "other") — the key of the queryable
/// quarantine counter map.
std::string QuarantineReasonTag(const std::string& reason);

class MeasurementStore {
 public:
  MeasurementStore() = default;
  explicit MeasurementStore(StoreValidationOptions validation)
      : validation_(validation) {}

  /// Archives a valid record (returns true); quarantines an invalid one
  /// (returns false) — the caller-facing verdict lineage records.
  bool Add(SpeedTestRecord record);

  std::size_t size() const { return records_.size(); }
  const std::vector<SpeedTestRecord>& records() const { return records_; }

  const std::vector<QuarantinedRecord>& quarantine() const {
    return quarantine_;
  }

  /// Quarantine counts per reason tag (see QuarantineReasonTag) —
  /// queryable without iterating the quarantined records themselves.
  const std::map<std::string, std::size_t>& QuarantineReasonCounts() const {
    return quarantine_reason_counts_;
  }

  const StoreValidationOptions& validation() const { return validation_; }

  /// Distinct unit keys, sorted.
  std::vector<std::string> Units() const;

  /// Records of one unit, in time order.
  std::vector<const SpeedTestRecord*> ForUnit(const std::string& unit) const;

  /// Records matching a predicate.
  std::vector<const SpeedTestRecord*> Select(
      const std::function<bool(const SpeedTestRecord&)>& predicate) const;

  /// First time a record of `unit` crossed `ixp` (by traceroute hop
  /// matching); nullopt if it never does.
  std::optional<core::SimTime> FirstIxpCrossing(
      const netsim::Topology& topology, const std::string& unit,
      core::IxpId ixp) const;

  /// Fraction of a unit's tests in [start, end) that cross `ixp`.
  double IxpCrossingShare(const netsim::Topology& topology,
                          const std::string& unit, core::IxpId ixp,
                          core::SimTime start, core::SimTime end) const;

 private:
  StoreValidationOptions validation_;
  std::vector<SpeedTestRecord> records_;
  std::vector<QuarantinedRecord> quarantine_;
  std::map<std::string, std::size_t> quarantine_reason_counts_;
  std::map<std::string, std::vector<std::size_t>> by_unit_;
};

}  // namespace sisyphus::measure
