// MeasurementStore: the archive of speed-test records, queryable by
// ⟨ASN, city⟩ unit, time window, intent, and IXP-crossing status.
//
// Ingest is validating: records that cannot be physically right (negative
// RTT, out-of-range timestamps, impossible loss rates, non-finite
// throughput) never enter the archive — they land in an inspectable
// quarantine with a reason, so corrupt data cannot poison downstream
// panels and estimators while remaining available for debugging.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"
#include "measure/speedtest.h"

namespace sisyphus::core::binio {
class Writer;
class Reader;
}  // namespace sisyphus::core::binio

namespace sisyphus::measure {

/// What Add() accepts into the archive. Everything outside these bounds is
/// quarantined, not dropped.
struct StoreValidationOptions {
  double max_rtt_ms = 60'000.0;  ///< 1 minute: beyond any sane speed test
  core::SimTime min_time{0};
  core::SimTime max_time{std::numeric_limits<std::int64_t>::max()};
};

/// Ok, or the reason a record is implausible.
core::Status ValidateRecord(const SpeedTestRecord& record,
                            const StoreValidationOptions& options = {});

/// A rejected record plus why it was rejected.
struct QuarantinedRecord {
  SpeedTestRecord record;
  std::string reason;
};

/// Short stable tag for a quarantine reason ("rtt", "loss_rate",
/// "throughput", "timestamp", "other") — the key of the queryable
/// quarantine counter map.
std::string QuarantineReasonTag(const std::string& reason);

/// A record emitted by the platform awaiting ingest. Ids are assigned at
/// merge time — sequential in vantage order — so archives stay
/// byte-identical at any thread count; `duplicate` marks an injected
/// duplicate-delivery fault (the second copy shares id and content).
struct PendingRecord {
  SpeedTestRecord record;
  bool duplicate = false;
  std::uint8_t fault_mask = 0;  ///< obs::kLineageFault* bits that fired
};

class MeasurementStore {
 public:
  MeasurementStore() = default;
  explicit MeasurementStore(StoreValidationOptions validation)
      : validation_(validation) {}

  /// Archives a valid record (returns true); quarantines an invalid one
  /// (returns false) — the caller-facing verdict lineage records.
  bool Add(SpeedTestRecord record);

  std::size_t size() const { return records_.size(); }
  const std::vector<SpeedTestRecord>& records() const { return records_; }

  const std::vector<QuarantinedRecord>& quarantine() const {
    return quarantine_;
  }

  /// Quarantine counts per reason tag (see QuarantineReasonTag) —
  /// queryable without iterating the quarantined records themselves.
  const std::map<std::string, std::size_t>& QuarantineReasonCounts() const {
    return quarantine_reason_counts_;
  }

  const StoreValidationOptions& validation() const { return validation_; }

  /// Distinct unit keys, sorted.
  std::vector<std::string> Units() const;

  /// Records of one unit, in time order.
  std::vector<const SpeedTestRecord*> ForUnit(const std::string& unit) const;

  /// Records matching a predicate.
  std::vector<const SpeedTestRecord*> Select(
      const std::function<bool(const SpeedTestRecord&)>& predicate) const;

  /// First time a record of `unit` crossed `ixp` (by traceroute hop
  /// matching); nullopt if it never does.
  std::optional<core::SimTime> FirstIxpCrossing(
      const netsim::Topology& topology, const std::string& unit,
      core::IxpId ixp) const;

  /// Fraction of a unit's tests in [start, end) that cross `ixp`.
  double IxpCrossingShare(const netsim::Topology& topology,
                          const std::string& unit, core::IxpId ixp,
                          core::SimTime start, core::SimTime end) const;

 private:
  StoreValidationOptions validation_;
  std::vector<SpeedTestRecord> records_;
  std::vector<QuarantinedRecord> quarantine_;
  std::map<std::string, std::size_t> quarantine_reason_counts_;
  std::map<std::string, std::vector<std::size_t>> by_unit_;
};

/// The streaming archive: records land in columnar (structure-of-arrays)
/// arenas, one arena per shard, shard = Fnv1a64(unit key) % shard_count.
/// Sharding by *unit* — never by thread — keeps every unit's records in
/// exactly one arena in a deterministic order, which is what lets ingest
/// fan out across the thread pool while panel/metrics/lineage artifacts
/// stay byte-identical to the batch path (DESIGN.md §10).
///
/// Only the scalar columns the streaming pipeline consumes are retained
/// (id, time, unit, rtt, loss, throughput, intent, attempts, vantage);
/// traceroutes and AS paths are not — per-record payloads are what caps
/// the batch path near 1M records. Validation, quarantine accounting, and
/// the metric names mirror MeasurementStore::Add exactly.
///
/// Thread safety: distinct shards may be appended to concurrently; a
/// single shard must only be touched by one thread at a time (the ingest
/// fan-out runs one task per shard).
class ShardedMeasurementStore {
 public:
  static constexpr std::size_t kDefaultShardCount = 16;

  explicit ShardedMeasurementStore(StoreValidationOptions validation = {},
                                   std::size_t shard_count = kDefaultShardCount);

  std::size_t shard_count() const { return shards_.size(); }

  /// The shard that owns `unit` — a pure function of the unit key, so the
  /// layout never depends on SISYPHUS_THREADS.
  std::size_t ShardOf(std::string_view unit) const;

  /// Validating columnar append of one record copy into `shard`'s arena.
  /// Returns the same archived/quarantined verdict as
  /// MeasurementStore::Add and bumps the same metric counters.
  /// Precondition: shard == ShardOf(record.UnitKey()).
  bool Append(std::size_t shard, const SpeedTestRecord& record);

  /// One shard's arena, in append order. Parallel arrays: entry i of every
  /// column describes the i-th archived record copy of the shard.
  struct Columns {
    std::vector<std::uint64_t> id;
    std::vector<std::int64_t> time_minutes;
    std::vector<std::uint32_t> unit;  ///< index into unit_names
    std::vector<double> rtt_ms;
    std::vector<double> loss_rate;
    std::vector<double> throughput_mbps;
    std::vector<std::uint8_t> intent;
    std::vector<std::uint8_t> attempts;  ///< clamped to 255
    std::vector<std::uint32_t> vantage_pop;
    std::vector<std::string> unit_names;  ///< interned keys, first-seen order
    std::map<std::string, std::uint32_t, std::less<>> unit_index;
    std::map<std::string, std::uint64_t> quarantine_reason_counts;
    std::uint64_t quarantined = 0;
    std::size_t size() const { return id.size(); }
  };
  const Columns& shard(std::size_t s) const { return shards_[s]; }

  /// Archived record copies across all shards.
  std::uint64_t size() const;
  std::uint64_t quarantined() const;
  /// Quarantine counts per reason tag, merged over shards.
  std::map<std::string, std::uint64_t> QuarantineReasonCounts() const;
  /// Distinct unit keys across shards, sorted.
  std::vector<std::string> Units() const;
  std::uint64_t CountByIntent(Intent intent) const;
  const StoreValidationOptions& validation() const { return validation_; }

  /// Deterministic CSV dump of the scalar columns (shard-major, append
  /// order within a shard) — the streaming analogue of StoreToCsv for
  /// replay/determinism audits. Not row-compatible with the batch CSV:
  /// traceroute and AS-path columns do not exist here.
  std::string ToCsv() const;

  /// Serializes / restores every shard arena for a durable snapshot
  /// (DESIGN.md §11). Load replaces all arenas; the shard count in the
  /// snapshot must match this store's (false on mismatch or truncation).
  void Save(core::binio::Writer& w) const;
  bool Load(core::binio::Reader& r);

 private:
  StoreValidationOptions validation_;
  std::vector<Columns> shards_;
};

}  // namespace sisyphus::measure
