#include "measure/traceroute.h"

#include <algorithm>

namespace sisyphus::measure {

std::string Traceroute::ToText() const {
  std::string out;
  for (std::size_t i = 0; i < hops.size(); ++i) {
    if (i > 0) out += " ";
    out += hops[i].address.ToText();
  }
  return out;
}

Traceroute SimulateTraceroute(const netsim::Topology& topology,
                              const netsim::BgpRoute& route) {
  Traceroute out;
  if (route.pop_path.empty()) return out;
  // First hop: the source PoP's own router.
  {
    TracerouteHop hop;
    hop.pop = route.pop_path.front();
    hop.asn = topology.GetPop(hop.pop).asn;
    hop.address = topology.RouterAddress(hop.pop);
    out.hops.push_back(hop);
  }
  for (std::size_t i = 0; i + 1 < route.pop_path.size(); ++i) {
    const netsim::PopIndex next = route.pop_path[i + 1];
    const auto& link = topology.GetLink(route.links[i]);
    TracerouteHop hop;
    hop.pop = next;
    hop.asn = topology.GetPop(next).asn;
    // Across an IXP LAN the far router answers with its LAN interface.
    hop.address = link.ixp.has_value()
                      ? topology.IxpLanAddress(*link.ixp, next)
                      : topology.RouterAddress(next);
    out.hops.push_back(hop);
  }
  return out;
}

std::vector<core::IxpId> DetectIxpCrossings(const netsim::Topology& topology,
                                            const Traceroute& traceroute) {
  std::vector<core::IxpId> out;
  for (const auto& hop : traceroute.hops) {
    core::IxpId which;
    if (topology.IsIxpAddress(hop.address, &which) &&
        std::find(out.begin(), out.end(), which) == out.end()) {
      out.push_back(which);
    }
  }
  return out;
}

bool CrossesIxp(const netsim::Topology& topology, const Traceroute& traceroute,
                core::IxpId ixp) {
  const auto crossings = DetectIxpCrossings(topology, traceroute);
  return std::find(crossings.begin(), crossings.end(), ixp) != crossings.end();
}

}  // namespace sisyphus::measure
