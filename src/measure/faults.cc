#include "measure/faults.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "obs/lineage.h"

namespace sisyphus::measure {

const char* ToString(ProbeFault fault) {
  switch (fault) {
    case ProbeFault::kNone: return "none";
    case ProbeFault::kProbeLoss: return "probe_loss";
    case ProbeFault::kVantageOutage: return "vantage_outage";
    case ProbeFault::kCollectorOutage: return "collector_outage";
    case ProbeFault::kUnreachable: return "unreachable";
  }
  return "?";
}

std::vector<OutageWindow> GenerateOutageWindows(std::uint64_t seed,
                                                core::SimTime horizon,
                                                std::size_t count,
                                                core::SimTime duration) {
  core::Rng rng(seed);
  std::vector<OutageWindow> out;
  out.reserve(count);
  const std::int64_t latest_start =
      std::max<std::int64_t>(0, horizon.minutes() - duration.minutes());
  for (std::size_t i = 0; i < count; ++i) {
    const core::SimTime start(rng.UniformInt(0, latest_start));
    out.push_back({start, start + duration});
  }
  std::sort(out.begin(), out.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.start < b.start;
            });
  return out;
}

std::string FaultPlanFingerprint(const FaultPlan& plan) {
  const auto num = [](double v) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    return std::string(buffer);
  };
  std::string out = "seed=" + std::to_string(plan.seed);
  out += " loss=" + num(plan.probe_loss_probability);
  out += " mnar=" + num(plan.mnar_loss_gain);
  out += " trunc=" + num(plan.traceroute_truncation_probability);
  out += " trunc_min=" + std::to_string(plan.truncation_min_hops);
  out += " dup=" + num(plan.duplicate_probability);
  out += " corrupt=" + num(plan.corruption_probability);
  out += " skew=" + std::to_string(plan.max_clock_skew.minutes());
  for (const VantageOutagePlan& vantage : plan.vantage_outages) {
    out += " v" + std::to_string(vantage.pop) + "=[";
    for (const OutageWindow& window : vantage.windows) {
      out += std::to_string(window.start.minutes()) + "-" +
             std::to_string(window.end.minutes()) + ";";
    }
    out += "]";
  }
  for (const OutageWindow& window : plan.collector_outages) {
    out += " c=" + std::to_string(window.start.minutes()) + "-" +
           std::to_string(window.end.minutes());
  }
  return out;
}

namespace {

// SplitMix64 finalizer (stateless form) for decision mixing.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), mix_(Mix64(plan_.seed)) {}

FaultStats FaultInjector::stats() const {
  FaultStats out;
  out.probes_lost = stats_.probes_lost.load(std::memory_order_relaxed);
  out.vantage_outage_hits =
      stats_.vantage_outage_hits.load(std::memory_order_relaxed);
  out.collector_outage_hits =
      stats_.collector_outage_hits.load(std::memory_order_relaxed);
  out.traceroutes_truncated =
      stats_.traceroutes_truncated.load(std::memory_order_relaxed);
  out.records_duplicated =
      stats_.records_duplicated.load(std::memory_order_relaxed);
  out.records_corrupted =
      stats_.records_corrupted.load(std::memory_order_relaxed);
  out.records_skewed = stats_.records_skewed.load(std::memory_order_relaxed);
  return out;
}

std::uint64_t FaultInjector::DecisionBits(core::Rng& rng) const {
  return Mix64(rng.Next() ^ mix_);
}

double FaultInjector::DecisionDouble(core::Rng& rng) const {
  // 53 high bits -> [0,1), as Rng::NextDouble.
  return static_cast<double>(DecisionBits(rng) >> 11) * 0x1.0p-53;
}

bool FaultInjector::DecisionBernoulli(core::Rng& rng, double p) const {
  return DecisionDouble(rng) < p;
}

std::int64_t FaultInjector::DecisionInt(core::Rng& rng, std::int64_t lo,
                                        std::int64_t hi) const {
  // Fixed-width multiply-shift: exactly one draw (no rejection loop, so
  // consumption never depends on the drawn value); bias is span / 2^64.
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  const auto scaled = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(DecisionBits(rng)) * span) >> 64);
  return lo + static_cast<std::int64_t>(scaled);
}

bool FaultInjector::VantageDark(netsim::PopIndex pop, core::SimTime t) const {
  for (const VantageOutagePlan& vantage : plan_.vantage_outages) {
    if (vantage.pop != pop) continue;
    for (const OutageWindow& window : vantage.windows) {
      if (window.Contains(t)) return true;
    }
  }
  return false;
}

bool FaultInjector::CollectorDark(core::SimTime t) const {
  for (const OutageWindow& window : plan_.collector_outages) {
    if (window.Contains(t)) return true;
  }
  return false;
}

ProbeFault FaultInjector::SampleProbeFault(double congestion_signal,
                                           core::Rng& rng) {
  const double loss = std::clamp(
      plan_.probe_loss_probability +
          plan_.mnar_loss_gain * std::max(0.0, congestion_signal),
      0.0, 1.0);
  if (DecisionBernoulli(rng, loss)) {
    stats_.probes_lost.fetch_add(1, std::memory_order_relaxed);
    return ProbeFault::kProbeLoss;
  }
  return ProbeFault::kNone;
}

bool FaultInjector::ApplyRecordFaults(SpeedTestRecord& record,
                                      core::Rng& rng,
                                      std::uint8_t* fault_mask) {
  const auto mark = [fault_mask](std::uint8_t bit) {
    if (fault_mask != nullptr) *fault_mask |= bit;
  };
  // Clock skew first so corruption can still override the timestamp.
  const double skew_span =
      static_cast<double>(plan_.max_clock_skew.minutes());
  const double skew_minutes =
      -skew_span + 2.0 * skew_span * DecisionDouble(rng);
  if (plan_.max_clock_skew.minutes() > 0) {
    record.time =
        record.time + core::SimTime(static_cast<std::int64_t>(skew_minutes));
    stats_.records_skewed.fetch_add(1, std::memory_order_relaxed);
    mark(obs::kLineageFaultSkewed);
  }

  const bool truncate =
      DecisionBernoulli(rng, plan_.traceroute_truncation_probability);
  const std::size_t hops = record.traceroute.hops.size();
  // Drawn unconditionally to keep the stream aligned (see header).
  const std::int64_t drop = DecisionInt(
      rng, 1,
      std::max<std::int64_t>(1, static_cast<std::int64_t>(hops)));
  if (truncate && hops > plan_.truncation_min_hops) {
    const std::size_t keep = std::max(
        plan_.truncation_min_hops, hops - static_cast<std::size_t>(drop));
    if (keep < hops) {
      record.traceroute.hops.resize(keep);
      stats_.traceroutes_truncated.fetch_add(1, std::memory_order_relaxed);
      mark(obs::kLineageFaultTruncated);
    }
  }

  const bool corrupt = DecisionBernoulli(rng, plan_.corruption_probability);
  const std::int64_t variant = DecisionInt(rng, 0, 3);
  if (corrupt) {
    switch (variant) {
      case 0:  // negative RTT
        record.rtt_ms = -std::abs(record.rtt_ms) - 1.0;
        break;
      case 1:  // timestamp before the epoch
        record.time = core::SimTime(-1 - std::abs(record.time.minutes()));
        break;
      case 2:  // impossible loss rate
        record.loss_rate = 2.0;
        break;
      default:  // non-finite throughput
        record.throughput_mbps = std::numeric_limits<double>::quiet_NaN();
        break;
    }
    stats_.records_corrupted.fetch_add(1, std::memory_order_relaxed);
    mark(obs::kLineageFaultCorrupted);
  }

  const bool duplicate = DecisionBernoulli(rng, plan_.duplicate_probability);
  if (duplicate) {
    stats_.records_duplicated.fetch_add(1, std::memory_order_relaxed);
    mark(obs::kLineageFaultDuplicated);
  }
  return duplicate;
}

}  // namespace sisyphus::measure
