#include "measure/intervention.h"

namespace sisyphus::measure {

using core::Status;
using netsim::EventType;
using netsim::NetworkEvent;

InterventionApi::InterventionApi(netsim::NetworkSimulator& simulator)
    : simulator_(simulator) {}

void InterventionApi::Record(std::string action, std::string justification) {
  audit_.push_back(
      {simulator_.Now(), std::move(action), std::move(justification)});
}

Status InterventionApi::PoisonAsns(netsim::PopIndex origin,
                                   std::set<core::Asn> asns,
                                   std::string justification) {
  NetworkEvent event;
  event.time = simulator_.Now();
  event.type = EventType::kPoisonAsns;
  event.exogenous = true;
  event.destination = origin;
  event.asns = asns;
  event.description = "intervention: poison from " +
                      simulator_.topology().GetPop(origin).label;
  simulator_.ApplyNow(event);
  Record(event.description, std::move(justification));
  return Status::Ok();
}

Status InterventionApi::ClearPoison(netsim::PopIndex origin,
                                    std::string justification) {
  NetworkEvent event;
  event.time = simulator_.Now();
  event.type = EventType::kClearPoison;
  event.exogenous = true;
  event.destination = origin;
  event.description = "intervention: clear poison from " +
                      simulator_.topology().GetPop(origin).label;
  simulator_.ApplyNow(event);
  Record(event.description, std::move(justification));
  return Status::Ok();
}

Status InterventionApi::SetLocalPref(netsim::PopIndex pop, core::LinkId link,
                                     double delta, std::string justification) {
  NetworkEvent event;
  event.time = simulator_.Now();
  event.type = EventType::kLocalPrefChange;
  event.exogenous = true;
  event.pop = pop;
  event.link = link;
  event.pref_delta = delta;
  event.description = "intervention: local-pref " + std::to_string(delta) +
                      " at " + simulator_.topology().GetPop(pop).label;
  simulator_.ApplyNow(event);
  Record(event.description, std::move(justification));
  return Status::Ok();
}

Status InterventionApi::ClearLocalPref(netsim::PopIndex pop,
                                       core::LinkId link,
                                       std::string justification) {
  NetworkEvent event;
  event.time = simulator_.Now();
  event.type = EventType::kLocalPrefClear;
  event.exogenous = true;
  event.pop = pop;
  event.link = link;
  event.description = "intervention: clear local-pref at " +
                      simulator_.topology().GetPop(pop).label;
  simulator_.ApplyNow(event);
  Record(event.description, std::move(justification));
  return Status::Ok();
}

Status InterventionApi::SetLinkState(core::LinkId link, bool up,
                                     std::string justification) {
  NetworkEvent event;
  event.time = simulator_.Now();
  event.type = up ? EventType::kLinkUp : EventType::kLinkDown;
  event.exogenous = true;
  event.link = link;
  event.description = std::string("intervention: link ") +
                      (up ? "enable" : "drain");
  simulator_.ApplyNow(event);
  Record(event.description, std::move(justification));
  return Status::Ok();
}

}  // namespace sisyphus::measure
