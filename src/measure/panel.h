// Panel construction: from raw speed tests to the ⟨unit⟩ x ⟨period⟩ median
// RTT matrix that synthetic control consumes.
//
// This mirrors the paper's pipeline: aggregate user tests per ⟨ASN, city⟩
// per time bucket to medians (robust to last-mile spikes), interpolate
// sparse buckets, and assemble a SyntheticControlInput for each treated
// unit against a donor pool that never crosses the IXP.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "causal/synthetic_control.h"
#include "core/result.h"
#include "measure/store.h"
#include "obs/lineage.h"

namespace sisyphus::core::binio {
class Writer;
class Reader;
}  // namespace sisyphus::core::binio

namespace sisyphus::measure {

struct PanelOptions {
  core::SimTime origin{0};
  core::SimTime bucket = core::SimTime::FromHours(6);
  std::size_t periods = 224;  ///< 56 days at 6h buckets
  /// Units with more than this fraction of empty buckets are dropped.
  double max_missing_fraction = 0.25;
};

/// A unit's bucketed median-RTT series.
struct UnitSeries {
  std::string unit;
  std::vector<double> values;       ///< interpolated, length = periods
  double missing_fraction = 0.0;
  /// Per-period missingness mask (true = the bucket had data). Values at
  /// unobserved periods are interpolation artifacts, and missing-aware
  /// estimators must not treat them as measurements.
  std::vector<bool> observed;
  /// Contributing record ids per period (lineage provenance). Populated
  /// only while obs::Lineage is enabled — empty otherwise; unobserved
  /// periods hold empty sets.
  std::vector<obs::IdRunSet> cell_ids;
  /// Records contributing to each period's cell (0 at unobserved periods).
  std::vector<std::uint32_t> cell_counts;
  /// Per-period mean RTT over the cell's records (0 at unobserved
  /// periods — consult `observed`). Computed with compensated summation
  /// over the cell's *sorted* values, so it is exactly reproducible no
  /// matter what order records arrived in (batch or streaming).
  std::vector<double> cell_means;
};

/// A unit excluded from the panel, with enough context to tell "never
/// measured" apart from "measured but dropped as too sparse".
struct DroppedUnit {
  std::string unit;
  double missing_fraction = 0.0;
};

/// The assembled panel.
struct Panel {
  PanelOptions options;
  std::vector<UnitSeries> units;
  /// Units dropped for sparsity (missing_fraction > max_missing_fraction).
  std::vector<DroppedUnit> dropped;

  /// Index of a unit by key. kNotFound when absent; for a unit dropped for
  /// sparsity the message names the max_missing_fraction cause.
  core::Result<std::size_t> Find(const std::string& unit) const;
};

/// Maintains per-cell running aggregates as records arrive, so a panel
/// can be assembled incrementally from ingest batches instead of a full
/// pass over an in-memory archive. The batch path (BuildRttPanel) and the
/// streaming path (StreamingCampaign) both fold records through this
/// builder, which is what makes their panels byte-identical by
/// construction: every cell aggregate (median, compensated mean, count,
/// id set) is a pure function of the cell's value multiset, never of
/// arrival order (DESIGN.md §10).
///
/// Shard discipline mirrors ShardedMeasurementStore: a unit's cells live
/// in exactly one shard, distinct shards may be fed concurrently, and a
/// single shard must only be touched by one thread at a time. Lineage
/// events emitted inside shard tasks are diverted to the pool's per-task
/// buffers and replayed in shard-index order.
class IncrementalPanelBuilder {
 public:
  /// Snapshot of obs::Lineage::enabled() is taken here: enable lineage
  /// before constructing the builder.
  explicit IncrementalPanelBuilder(PanelOptions options,
                                   std::size_t shard_count = 1);

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t ShardOf(std::string_view unit) const;

  /// Folds one archived record copy into its unit's cell. Records outside
  /// [origin, origin + periods*bucket) terminate as out-of-panel in the
  /// lineage ledger, exactly as the batch pass records them — but still
  /// create the unit entry, so a unit whose records all miss the horizon
  /// finalizes as "empty", matching BuildRttPanel.
  /// Precondition: shard == ShardOf(unit).
  void Observe(std::size_t shard, std::string_view unit, core::SimTime time,
               double rtt_ms, std::uint64_t id);

  /// Record copies folded in so far (in-horizon only), across shards.
  std::uint64_t observed() const;

  /// Visits every unit's running in-horizon RTT aggregate — (unit name,
  /// record count, compensated sum) — in ascending unit-name order across
  /// shards. The sum is maintained incrementally in arrival order with
  /// Neumaier compensation and serialized verbatim by Save/Load, so it is
  /// bit-identical across thread counts and kill/resume (per-unit arrival
  /// order is deterministic: one unit lives in one shard, shards replay
  /// batches in step order). This is the timeline sampler's read API.
  void VisitRunningMeans(
      const std::function<void(std::string_view unit, std::uint64_t count,
                               double sum)>& visit) const;

  /// Assembles the panel and emits the same per-unit metrics and lineage
  /// events (units_empty/dropped/kept, cells observed/masked, per-cell id
  /// sets in ascending period order) as a batch BuildRttPanel pass.
  /// Serial; call once, after the last Observe.
  Panel Finalize() const;

  /// Serializes / restores every shard's running cell aggregates for a
  /// durable snapshot (DESIGN.md §11). Load replaces all shards; shard
  /// count and period count must match (false on mismatch/truncation).
  void Save(core::binio::Writer& w) const;
  bool Load(core::binio::Reader& r);

 private:
  struct CellAccumulator {
    std::vector<double> values;       ///< arrival order (finalize sorts)
    std::vector<std::uint64_t> ids;   ///< only while lineage is enabled
  };
  struct UnitCells {
    std::vector<CellAccumulator> cells;  ///< length = options.periods
    // Unit-wide running RTT aggregate in arrival order (Neumaier
    // compensated), for the timeline sampler. Serialized by Save/Load —
    // recomputing from cell values would change summation order and break
    // kill/resume bit-identity.
    std::uint64_t running_count = 0;
    double running_sum = 0.0;
    double running_comp = 0.0;
  };
  struct Shard {
    std::map<std::string, UnitCells, std::less<>> units;
    std::uint64_t observed = 0;
  };

  PanelOptions options_;
  bool lineage_ = false;
  std::vector<Shard> shards_;
};

/// Builds the panel over every unit in the store (RTT medians per bucket).
/// Units that are entirely empty or too sparse are dropped (and listed in
/// panel.dropped). Implemented as a single-shard IncrementalPanelBuilder
/// pass, so cell aggregation is order-independent — clock-skewed or
/// retry-reordered archives produce the same panel as sorted ones.
Panel BuildRttPanel(const MeasurementStore& store, const PanelOptions& options);

/// Assembles a synthetic-control input: `treated_unit`'s series versus the
/// given donor units (donors absent from the panel are skipped; their
/// names are reported in `skipped`). `pre_periods` = buckets before the
/// treatment time. The input carries the panel's missingness masks, so
/// mask-aware estimators (robust synthetic control) can ignore
/// interpolated entries.
core::Result<causal::SyntheticControlInput> MakeSyntheticControlInput(
    const Panel& panel, const std::string& treated_unit,
    const std::vector<std::string>& donor_units, core::SimTime treatment_time,
    std::vector<std::string>* skipped = nullptr);

}  // namespace sisyphus::measure
