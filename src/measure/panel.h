// Panel construction: from raw speed tests to the ⟨unit⟩ x ⟨period⟩ median
// RTT matrix that synthetic control consumes.
//
// This mirrors the paper's pipeline: aggregate user tests per ⟨ASN, city⟩
// per time bucket to medians (robust to last-mile spikes), interpolate
// sparse buckets, and assemble a SyntheticControlInput for each treated
// unit against a donor pool that never crosses the IXP.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "causal/synthetic_control.h"
#include "core/result.h"
#include "measure/store.h"
#include "obs/lineage.h"

namespace sisyphus::measure {

struct PanelOptions {
  core::SimTime origin{0};
  core::SimTime bucket = core::SimTime::FromHours(6);
  std::size_t periods = 224;  ///< 56 days at 6h buckets
  /// Units with more than this fraction of empty buckets are dropped.
  double max_missing_fraction = 0.25;
};

/// A unit's bucketed median-RTT series.
struct UnitSeries {
  std::string unit;
  std::vector<double> values;       ///< interpolated, length = periods
  double missing_fraction = 0.0;
  /// Per-period missingness mask (true = the bucket had data). Values at
  /// unobserved periods are interpolation artifacts, and missing-aware
  /// estimators must not treat them as measurements.
  std::vector<bool> observed;
  /// Contributing record ids per period (lineage provenance). Populated
  /// only while obs::Lineage is enabled — empty otherwise; unobserved
  /// periods hold empty sets.
  std::vector<obs::IdRunSet> cell_ids;
};

/// A unit excluded from the panel, with enough context to tell "never
/// measured" apart from "measured but dropped as too sparse".
struct DroppedUnit {
  std::string unit;
  double missing_fraction = 0.0;
};

/// The assembled panel.
struct Panel {
  PanelOptions options;
  std::vector<UnitSeries> units;
  /// Units dropped for sparsity (missing_fraction > max_missing_fraction).
  std::vector<DroppedUnit> dropped;

  /// Index of a unit by key. kNotFound when absent; for a unit dropped for
  /// sparsity the message names the max_missing_fraction cause.
  core::Result<std::size_t> Find(const std::string& unit) const;
};

/// Builds the panel over every unit in the store (RTT medians per bucket).
/// Units that are entirely empty or too sparse are dropped (and listed in
/// panel.dropped). Records are sorted per unit before bucketing, so
/// clock-skewed archives do not break panel construction.
Panel BuildRttPanel(const MeasurementStore& store, const PanelOptions& options);

/// Assembles a synthetic-control input: `treated_unit`'s series versus the
/// given donor units (donors absent from the panel are skipped; their
/// names are reported in `skipped`). `pre_periods` = buckets before the
/// treatment time. The input carries the panel's missingness masks, so
/// mask-aware estimators (robust synthetic control) can ignore
/// interpolated entries.
core::Result<causal::SyntheticControlInput> MakeSyntheticControlInput(
    const Panel& panel, const std::string& treated_unit,
    const std::vector<std::string>& donor_units, core::SimTime treatment_time,
    std::vector<std::string>* skipped = nullptr);

}  // namespace sisyphus::measure
