#include "measure/store.h"

#include <cmath>

#include "core/error.h"
#include "core/logging.h"
#include "obs/metrics.h"

namespace sisyphus::measure {

using core::Error;
using core::ErrorCode;

core::Status ValidateRecord(const SpeedTestRecord& record,
                            const StoreValidationOptions& options) {
  if (!std::isfinite(record.rtt_ms) || record.rtt_ms <= 0.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "rtt_ms not a positive finite number: " +
                     std::to_string(record.rtt_ms));
  }
  if (record.rtt_ms > options.max_rtt_ms) {
    return Error(ErrorCode::kInvalidArgument,
                 "rtt_ms " + std::to_string(record.rtt_ms) +
                     " exceeds max_rtt_ms " +
                     std::to_string(options.max_rtt_ms));
  }
  if (!std::isfinite(record.loss_rate) || record.loss_rate < 0.0 ||
      record.loss_rate > 1.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "loss_rate outside [0, 1]: " +
                     std::to_string(record.loss_rate));
  }
  if (!std::isfinite(record.throughput_mbps) ||
      record.throughput_mbps < 0.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "throughput_mbps not a non-negative finite number: " +
                     std::to_string(record.throughput_mbps));
  }
  if (record.time < options.min_time || options.max_time < record.time) {
    return Error(ErrorCode::kInvalidArgument,
                 "timestamp " + std::to_string(record.time.minutes()) +
                     "min outside the valid window");
  }
  return core::Status::Ok();
}

std::string QuarantineReasonTag(const std::string& reason) {
  if (reason.find("rtt_ms") != std::string::npos) return "rtt";
  if (reason.find("loss_rate") != std::string::npos) return "loss_rate";
  if (reason.find("throughput") != std::string::npos) return "throughput";
  if (reason.find("timestamp") != std::string::npos) return "timestamp";
  return "other";
}

bool MeasurementStore::Add(SpeedTestRecord record) {
  if (auto status = ValidateRecord(record, validation_); !status.ok()) {
    const std::string reason = status.error().ToText();
    const std::string tag = QuarantineReasonTag(reason);
    ++quarantine_reason_counts_[tag];
    SISYPHUS_METRIC_COUNT("measure.store.quarantined", 1);
#if !defined(SISYPHUS_OBS_DISABLED)
    // Per-reason counters need a dynamic name; quarantine is rare enough
    // that the registry lookup is fine off the fast path.
    obs::Registry::Global()
        .GetCounter("measure.store.quarantined." + tag)
        ->Add(1);
#endif
    (SISYPHUS_LOG(kDebug) << "record quarantined")
        .With("unit", record.UnitKey())
        .With("tag", tag)
        .With("reason", reason);
    quarantine_.push_back({std::move(record), reason});
    return false;
  }
  SISYPHUS_METRIC_COUNT("measure.store.archived", 1);
  by_unit_[record.UnitKey()].push_back(records_.size());
  records_.push_back(std::move(record));
  return true;
}

std::vector<std::string> MeasurementStore::Units() const {
  std::vector<std::string> out;
  out.reserve(by_unit_.size());
  for (const auto& [unit, _] : by_unit_) out.push_back(unit);
  return out;
}

std::vector<const SpeedTestRecord*> MeasurementStore::ForUnit(
    const std::string& unit) const {
  std::vector<const SpeedTestRecord*> out;
  const auto it = by_unit_.find(unit);
  if (it == by_unit_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t index : it->second) out.push_back(&records_[index]);
  return out;
}

std::vector<const SpeedTestRecord*> MeasurementStore::Select(
    const std::function<bool(const SpeedTestRecord&)>& predicate) const {
  std::vector<const SpeedTestRecord*> out;
  for (const auto& record : records_) {
    if (predicate(record)) out.push_back(&record);
  }
  return out;
}

std::optional<core::SimTime> MeasurementStore::FirstIxpCrossing(
    const netsim::Topology& topology, const std::string& unit,
    core::IxpId ixp) const {
  for (const SpeedTestRecord* record : ForUnit(unit)) {
    if (CrossesIxp(topology, record->traceroute, ixp)) return record->time;
  }
  return std::nullopt;
}

double MeasurementStore::IxpCrossingShare(const netsim::Topology& topology,
                                          const std::string& unit,
                                          core::IxpId ixp,
                                          core::SimTime start,
                                          core::SimTime end) const {
  std::size_t total = 0, crossing = 0;
  for (const SpeedTestRecord* record : ForUnit(unit)) {
    if (record->time < start || !(record->time < end)) continue;
    ++total;
    if (CrossesIxp(topology, record->traceroute, ixp)) ++crossing;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(crossing) / static_cast<double>(total);
}

}  // namespace sisyphus::measure
