#include "measure/store.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/binio.h"
#include "core/error.h"
#include "core/hash.h"
#include "core/logging.h"
#include "obs/metrics.h"

namespace sisyphus::measure {

using core::Error;
using core::ErrorCode;

core::Status ValidateRecord(const SpeedTestRecord& record,
                            const StoreValidationOptions& options) {
  if (!std::isfinite(record.rtt_ms) || record.rtt_ms <= 0.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "rtt_ms not a positive finite number: " +
                     std::to_string(record.rtt_ms));
  }
  if (record.rtt_ms > options.max_rtt_ms) {
    return Error(ErrorCode::kInvalidArgument,
                 "rtt_ms " + std::to_string(record.rtt_ms) +
                     " exceeds max_rtt_ms " +
                     std::to_string(options.max_rtt_ms));
  }
  if (!std::isfinite(record.loss_rate) || record.loss_rate < 0.0 ||
      record.loss_rate > 1.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "loss_rate outside [0, 1]: " +
                     std::to_string(record.loss_rate));
  }
  if (!std::isfinite(record.throughput_mbps) ||
      record.throughput_mbps < 0.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "throughput_mbps not a non-negative finite number: " +
                     std::to_string(record.throughput_mbps));
  }
  if (record.time < options.min_time || options.max_time < record.time) {
    return Error(ErrorCode::kInvalidArgument,
                 "timestamp " + std::to_string(record.time.minutes()) +
                     "min outside the valid window");
  }
  return core::Status::Ok();
}

std::string QuarantineReasonTag(const std::string& reason) {
  if (reason.find("rtt_ms") != std::string::npos) return "rtt";
  if (reason.find("loss_rate") != std::string::npos) return "loss_rate";
  if (reason.find("throughput") != std::string::npos) return "throughput";
  if (reason.find("timestamp") != std::string::npos) return "timestamp";
  return "other";
}

bool MeasurementStore::Add(SpeedTestRecord record) {
  if (auto status = ValidateRecord(record, validation_); !status.ok()) {
    const std::string reason = status.error().ToText();
    const std::string tag = QuarantineReasonTag(reason);
    ++quarantine_reason_counts_[tag];
    SISYPHUS_METRIC_COUNT("measure.store.quarantined", 1);
#if !defined(SISYPHUS_OBS_DISABLED)
    // Per-reason counters need a dynamic name; quarantine is rare enough
    // that the registry lookup is fine off the fast path.
    obs::Registry::Global()
        .GetCounter("measure.store.quarantined." + tag)
        ->Add(1);
#endif
    (SISYPHUS_LOG(kDebug) << "record quarantined")
        .With("unit", record.UnitKey())
        .With("tag", tag)
        .With("reason", reason);
    quarantine_.push_back({std::move(record), reason});
    return false;
  }
  SISYPHUS_METRIC_COUNT("measure.store.archived", 1);
  by_unit_[record.UnitKey()].push_back(records_.size());
  records_.push_back(std::move(record));
  return true;
}

std::vector<std::string> MeasurementStore::Units() const {
  std::vector<std::string> out;
  out.reserve(by_unit_.size());
  for (const auto& [unit, _] : by_unit_) out.push_back(unit);
  return out;
}

std::vector<const SpeedTestRecord*> MeasurementStore::ForUnit(
    const std::string& unit) const {
  std::vector<const SpeedTestRecord*> out;
  const auto it = by_unit_.find(unit);
  if (it == by_unit_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t index : it->second) out.push_back(&records_[index]);
  return out;
}

std::vector<const SpeedTestRecord*> MeasurementStore::Select(
    const std::function<bool(const SpeedTestRecord&)>& predicate) const {
  std::vector<const SpeedTestRecord*> out;
  for (const auto& record : records_) {
    if (predicate(record)) out.push_back(&record);
  }
  return out;
}

std::optional<core::SimTime> MeasurementStore::FirstIxpCrossing(
    const netsim::Topology& topology, const std::string& unit,
    core::IxpId ixp) const {
  for (const SpeedTestRecord* record : ForUnit(unit)) {
    if (CrossesIxp(topology, record->traceroute, ixp)) return record->time;
  }
  return std::nullopt;
}

double MeasurementStore::IxpCrossingShare(const netsim::Topology& topology,
                                          const std::string& unit,
                                          core::IxpId ixp,
                                          core::SimTime start,
                                          core::SimTime end) const {
  std::size_t total = 0, crossing = 0;
  for (const SpeedTestRecord* record : ForUnit(unit)) {
    if (record->time < start || !(record->time < end)) continue;
    ++total;
    if (CrossesIxp(topology, record->traceroute, ixp)) ++crossing;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(crossing) / static_cast<double>(total);
}

ShardedMeasurementStore::ShardedMeasurementStore(
    StoreValidationOptions validation, std::size_t shard_count)
    : validation_(validation) {
  SISYPHUS_REQUIRE(shard_count > 0, "ShardedMeasurementStore: zero shards");
  shards_.resize(shard_count);
}

std::size_t ShardedMeasurementStore::ShardOf(std::string_view unit) const {
  return static_cast<std::size_t>(core::Fnv1a64(unit) % shards_.size());
}

bool ShardedMeasurementStore::Append(std::size_t shard,
                                     const SpeedTestRecord& record) {
  Columns& arena = shards_[shard];
  const std::string unit = record.UnitKey();
  if (auto status = ValidateRecord(record, validation_); !status.ok()) {
    const std::string reason = status.error().ToText();
    const std::string tag = QuarantineReasonTag(reason);
    ++arena.quarantine_reason_counts[tag];
    ++arena.quarantined;
    SISYPHUS_METRIC_COUNT("measure.store.quarantined", 1);
#if !defined(SISYPHUS_OBS_DISABLED)
    // Same dynamic per-tag counter the batch store bumps; Registry
    // registration is mutex-guarded and Add() is capture-aware, so this is
    // safe (and deterministic) from inside a shard task.
    obs::Registry::Global()
        .GetCounter("measure.store.quarantined." + tag)
        ->Add(1);
#endif
    (SISYPHUS_LOG(kDebug) << "record quarantined")
        .With("unit", unit)
        .With("tag", tag)
        .With("reason", reason);
    return false;
  }
  SISYPHUS_METRIC_COUNT("measure.store.archived", 1);
  auto it = arena.unit_index.find(unit);
  if (it == arena.unit_index.end()) {
    it = arena.unit_index
             .emplace(unit, static_cast<std::uint32_t>(arena.unit_names.size()))
             .first;
    arena.unit_names.push_back(unit);
  }
  arena.id.push_back(record.id.value());
  arena.time_minutes.push_back(record.time.minutes());
  arena.unit.push_back(it->second);
  arena.rtt_ms.push_back(record.rtt_ms);
  arena.loss_rate.push_back(record.loss_rate);
  arena.throughput_mbps.push_back(record.throughput_mbps);
  arena.intent.push_back(static_cast<std::uint8_t>(record.intent));
  arena.attempts.push_back(
      static_cast<std::uint8_t>(std::min<std::uint32_t>(record.attempts, 255)));
  arena.vantage_pop.push_back(record.vantage_pop);
  return true;
}

std::uint64_t ShardedMeasurementStore::size() const {
  std::uint64_t total = 0;
  for (const Columns& arena : shards_) total += arena.size();
  return total;
}

std::uint64_t ShardedMeasurementStore::quarantined() const {
  std::uint64_t total = 0;
  for (const Columns& arena : shards_) total += arena.quarantined;
  return total;
}

std::map<std::string, std::uint64_t>
ShardedMeasurementStore::QuarantineReasonCounts() const {
  std::map<std::string, std::uint64_t> out;
  for (const Columns& arena : shards_) {
    for (const auto& [tag, count] : arena.quarantine_reason_counts) {
      out[tag] += count;
    }
  }
  return out;
}

std::vector<std::string> ShardedMeasurementStore::Units() const {
  std::vector<std::string> out;
  for (const Columns& arena : shards_) {
    for (const auto& [unit, _] : arena.unit_index) out.push_back(unit);
  }
  // Shards partition units (one unit never spans shards), so the merged
  // list has no duplicates — sorting alone restores the global order.
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t ShardedMeasurementStore::CountByIntent(Intent intent) const {
  const auto wanted = static_cast<std::uint8_t>(intent);
  std::uint64_t count = 0;
  for (const Columns& arena : shards_) {
    for (std::uint8_t tag : arena.intent) {
      if (tag == wanted) ++count;
    }
  }
  return count;
}

void ShardedMeasurementStore::Save(core::binio::Writer& w) const {
  w.PutU64(shards_.size());
  for (const Columns& arena : shards_) {
    core::binio::PutU64Vector(w, arena.id);
    w.PutU64(arena.time_minutes.size());
    for (std::int64_t t : arena.time_minutes) w.PutI64(t);
    w.PutU64(arena.unit.size());
    for (std::uint32_t u : arena.unit) w.PutU32(u);
    core::binio::PutDoubleVector(w, arena.rtt_ms);
    core::binio::PutDoubleVector(w, arena.loss_rate);
    core::binio::PutDoubleVector(w, arena.throughput_mbps);
    w.PutU64(arena.intent.size());
    for (std::uint8_t v : arena.intent) w.PutU8(v);
    w.PutU64(arena.attempts.size());
    for (std::uint8_t v : arena.attempts) w.PutU8(v);
    w.PutU64(arena.vantage_pop.size());
    for (std::uint32_t v : arena.vantage_pop) w.PutU32(v);
    w.PutU64(arena.unit_names.size());
    for (const std::string& name : arena.unit_names) w.PutString(name);
    w.PutU64(arena.quarantine_reason_counts.size());
    for (const auto& [tag, count] : arena.quarantine_reason_counts) {
      w.PutString(tag);
      w.PutU64(count);
    }
    w.PutU64(arena.quarantined);
  }
}

bool ShardedMeasurementStore::Load(core::binio::Reader& r) {
  const std::uint64_t shard_count = r.GetU64();
  if (!r.ok() || shard_count != shards_.size()) return false;
  std::vector<Columns> loaded(shards_.size());
  for (Columns& arena : loaded) {
    arena.id = core::binio::GetU64Vector(r);
    const std::uint64_t time_count = r.GetU64();
    if (!r.ok() || time_count > r.remaining() / 8) return false;
    arena.time_minutes.reserve(static_cast<std::size_t>(time_count));
    for (std::uint64_t i = 0; i < time_count; ++i) {
      arena.time_minutes.push_back(r.GetI64());
    }
    const std::uint64_t unit_count = r.GetU64();
    if (!r.ok() || unit_count > r.remaining() / 4) return false;
    arena.unit.reserve(static_cast<std::size_t>(unit_count));
    for (std::uint64_t i = 0; i < unit_count; ++i) {
      arena.unit.push_back(r.GetU32());
    }
    arena.rtt_ms = core::binio::GetDoubleVector(r);
    arena.loss_rate = core::binio::GetDoubleVector(r);
    arena.throughput_mbps = core::binio::GetDoubleVector(r);
    const std::uint64_t intent_count = r.GetU64();
    if (!r.ok() || intent_count > r.remaining()) return false;
    arena.intent.reserve(static_cast<std::size_t>(intent_count));
    for (std::uint64_t i = 0; i < intent_count; ++i) {
      arena.intent.push_back(r.GetU8());
    }
    const std::uint64_t attempt_count = r.GetU64();
    if (!r.ok() || attempt_count > r.remaining()) return false;
    arena.attempts.reserve(static_cast<std::size_t>(attempt_count));
    for (std::uint64_t i = 0; i < attempt_count; ++i) {
      arena.attempts.push_back(r.GetU8());
    }
    const std::uint64_t vantage_count = r.GetU64();
    if (!r.ok() || vantage_count > r.remaining() / 4) return false;
    arena.vantage_pop.reserve(static_cast<std::size_t>(vantage_count));
    for (std::uint64_t i = 0; i < vantage_count; ++i) {
      arena.vantage_pop.push_back(r.GetU32());
    }
    const std::uint64_t name_count = r.GetU64();
    if (!r.ok() || name_count > r.remaining()) return false;
    for (std::uint64_t i = 0; i < name_count; ++i) {
      std::string name = r.GetString();
      arena.unit_index.emplace(name,
                               static_cast<std::uint32_t>(i));
      arena.unit_names.push_back(std::move(name));
    }
    const std::uint64_t reason_count = r.GetU64();
    for (std::uint64_t i = 0; i < reason_count && r.ok(); ++i) {
      const std::string tag = r.GetString();
      arena.quarantine_reason_counts[tag] = r.GetU64();
    }
    arena.quarantined = r.GetU64();
    if (!r.ok()) return false;
  }
  shards_ = std::move(loaded);
  return true;
}

std::string ShardedMeasurementStore::ToCsv() const {
  std::string out =
      "shard,id,time_minutes,unit,intent,attempts,vantage_pop,rtt_ms,"
      "loss_rate,throughput_mbps\n";
  char buffer[64];
  const auto append_double = [&](double value) {
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    out += buffer;
  };
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Columns& arena = shards_[s];
    for (std::size_t i = 0; i < arena.size(); ++i) {
      out += std::to_string(s);
      out += ',';
      out += std::to_string(arena.id[i]);
      out += ',';
      out += std::to_string(arena.time_minutes[i]);
      out += ",\"";
      out += arena.unit_names[arena.unit[i]];
      out += "\",";
      out += std::to_string(arena.intent[i]);
      out += ',';
      out += std::to_string(arena.attempts[i]);
      out += ',';
      out += std::to_string(arena.vantage_pop[i]);
      out += ',';
      append_double(arena.rtt_ms[i]);
      out += ',';
      append_double(arena.loss_rate[i]);
      out += ',';
      append_double(arena.throughput_mbps[i]);
      out += '\n';
    }
  }
  return out;
}

}  // namespace sisyphus::measure
