#include "measure/store.h"

#include "core/error.h"

namespace sisyphus::measure {

void MeasurementStore::Add(SpeedTestRecord record) {
  by_unit_[record.UnitKey()].push_back(records_.size());
  records_.push_back(std::move(record));
}

std::vector<std::string> MeasurementStore::Units() const {
  std::vector<std::string> out;
  out.reserve(by_unit_.size());
  for (const auto& [unit, _] : by_unit_) out.push_back(unit);
  return out;
}

std::vector<const SpeedTestRecord*> MeasurementStore::ForUnit(
    const std::string& unit) const {
  std::vector<const SpeedTestRecord*> out;
  const auto it = by_unit_.find(unit);
  if (it == by_unit_.end()) return out;
  out.reserve(it->second.size());
  for (std::size_t index : it->second) out.push_back(&records_[index]);
  return out;
}

std::vector<const SpeedTestRecord*> MeasurementStore::Select(
    const std::function<bool(const SpeedTestRecord&)>& predicate) const {
  std::vector<const SpeedTestRecord*> out;
  for (const auto& record : records_) {
    if (predicate(record)) out.push_back(&record);
  }
  return out;
}

std::optional<core::SimTime> MeasurementStore::FirstIxpCrossing(
    const netsim::Topology& topology, const std::string& unit,
    core::IxpId ixp) const {
  for (const SpeedTestRecord* record : ForUnit(unit)) {
    if (CrossesIxp(topology, record->traceroute, ixp)) return record->time;
  }
  return std::nullopt;
}

double MeasurementStore::IxpCrossingShare(const netsim::Topology& topology,
                                          const std::string& unit,
                                          core::IxpId ixp,
                                          core::SimTime start,
                                          core::SimTime end) const {
  std::size_t total = 0, crossing = 0;
  for (const SpeedTestRecord* record : ForUnit(unit)) {
    if (record->time < start || !(record->time < end)) continue;
    ++total;
    if (CrossesIxp(topology, record->traceroute, ixp)) ++crossing;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(crossing) / static_cast<double>(total);
}

}  // namespace sisyphus::measure
