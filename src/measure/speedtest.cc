#include "measure/speedtest.h"

#include <atomic>
#include <cmath>

namespace sisyphus::measure {

using core::Error;
using core::ErrorCode;
using core::Result;

const char* ToString(Intent intent) {
  switch (intent) {
    case Intent::kBaseline: return "baseline";
    case Intent::kUserInitiated: return "user_initiated";
    case Intent::kEventTriggered: return "event_triggered";
  }
  return "?";
}

std::string SpeedTestRecord::UnitKey() const {
  return std::to_string(asn.value()) + " / " + city;
}

Result<SpeedTestRecord> RunSpeedTest(netsim::NetworkSimulator& simulator,
                                     netsim::PopIndex vantage,
                                     netsim::PopIndex server, Intent intent,
                                     core::Rng& rng,
                                     const SpeedTestModelOptions& options,
                                     netsim::AddressFamily af) {
  static std::atomic<std::uint64_t> next_id{1};

  auto route = simulator.RouteBetween(vantage, server, af);
  if (!route.ok()) return route.error();

  SpeedTestRecord record;
  record.id = core::MeasurementId(next_id.fetch_add(1));
  record.time = simulator.Now();
  const auto& pop = simulator.topology().GetPop(vantage);
  record.asn = pop.asn;
  record.city = simulator.topology().cities().Get(pop.city).name;
  record.vantage_pop = vantage;
  record.server_pop = server;
  record.intent = intent;
  record.address_family = af;

  const double path_rtt =
      simulator.latency().SampleRttMs(route.value(), simulator.Now(), rng);
  double last_mile =
      std::max(0.2, rng.Gaussian(options.last_mile_base_ms,
                                 options.last_mile_sd_ms));
  if (rng.Bernoulli(options.spike_probability)) {
    last_mile += rng.Exponential(1.0 / options.spike_scale_ms);
  }
  record.rtt_ms = path_rtt + last_mile;
  record.loss_rate =
      simulator.latency().PathLossRate(route.value(), simulator.Now());

  const double access_limit =
      options.access_capacity_mbps /
      (1.0 + record.rtt_ms / options.rtt_half_ms);
  // Mathis et al.: single-flow TCP throughput ~ C * MSS / (RTT sqrt(p)).
  const double loss = std::max(record.loss_rate, 1e-6);
  const double mathis_limit_mbps =
      options.mathis_constant * options.mss_bytes * 8.0 /
      (record.rtt_ms / 1000.0 * std::sqrt(loss)) / 1e6;
  const double mean_throughput = std::min(access_limit, mathis_limit_mbps);
  record.throughput_mbps =
      mean_throughput *
      std::exp(rng.Gaussian(0.0, options.throughput_noise_sigma));

  record.traceroute = SimulateTraceroute(simulator.topology(), route.value());
  record.asn_path = route.value().asn_path;
  return record;
}

}  // namespace sisyphus::measure
