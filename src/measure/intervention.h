// Exogenous-intervention API — the paper's §4 proposal 3 (PEERING-style
// knobs), as a library surface.
//
// Researchers get explicit, audited controls that induce variation in
// routing *independently of network state*: exactly what a valid
// instrument requires. Every call is recorded in an audit log with its
// justification, mirroring the paper's demand that instruments come with
// documented exogeneity arguments.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/result.h"
#include "netsim/simulator.h"

namespace sisyphus::measure {

struct InterventionAudit {
  core::SimTime time;
  std::string action;
  std::string justification;
};

class InterventionApi {
 public:
  /// The simulator must outlive the API object.
  explicit InterventionApi(netsim::NetworkSimulator& simulator);

  /// BGP poisoning from `origin`: converged paths towards it avoid `asns`
  /// (PoiRoot's instrument). Applied immediately.
  core::Status PoisonAsns(netsim::PopIndex origin, std::set<core::Asn> asns,
                          std::string justification);
  core::Status ClearPoison(netsim::PopIndex origin,
                           std::string justification);

  /// Local-preference override at (pop, link): models a controlled
  /// announcement/policy knob.
  core::Status SetLocalPref(netsim::PopIndex pop, core::LinkId link,
                            double delta, std::string justification);
  core::Status ClearLocalPref(netsim::PopIndex pop, core::LinkId link,
                              std::string justification);

  /// Administratively disable/enable a link (e.g. drain a peering for a
  /// controlled experiment).
  core::Status SetLinkState(core::LinkId link, bool up,
                            std::string justification);

  const std::vector<InterventionAudit>& audit_log() const { return audit_; }

 private:
  void Record(std::string action, std::string justification);

  netsim::NetworkSimulator& simulator_;
  std::vector<InterventionAudit> audit_;
};

}  // namespace sisyphus::measure
