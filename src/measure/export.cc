#include "measure/export.h"

#include <cstdio>
#include <fstream>

#include "core/logging.h"

namespace sisyphus::measure {

namespace {

std::string Quote(const std::string& field) {
  if (field.find(',') == std::string::npos &&
      field.find('"') == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string FormatDouble(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

namespace {

std::string RecordToCsvRow(const SpeedTestRecord& record) {
  std::string out;
  out += std::to_string(record.id.value()) + ",";
  out += std::to_string(record.time.minutes()) + ",";
  out += std::to_string(record.asn.value()) + ",";
  out += Quote(record.city) + ",";
  out += ToString(record.intent);
  out += ",";
  out += netsim::ToString(record.address_family);
  out += ",";
  out += FormatDouble(record.rtt_ms) + ",";
  out += FormatDouble(record.loss_rate) + ",";
  out += FormatDouble(record.throughput_mbps) + ",";
  out += std::to_string(record.attempts) + ",";
  std::string path;
  for (std::size_t i = 0; i < record.asn_path.size(); ++i) {
    if (i > 0) path += " ";
    path += std::to_string(record.asn_path[i].value());
  }
  out += Quote(path) + ",";
  out += Quote(record.traceroute.ToText());
  return out;
}

constexpr const char* kRecordCsvHeader =
    "id,time_minutes,asn,city,intent,address_family,rtt_ms,loss_rate,"
    "throughput_mbps,attempts,asn_path,traceroute";

}  // namespace

std::string StoreToCsv(const MeasurementStore& store) {
  std::string out = std::string(kRecordCsvHeader) + "\n";
  for (const auto& record : store.records()) {
    out += RecordToCsvRow(record) + "\n";
  }
  return out;
}

std::string QuarantineToCsv(const MeasurementStore& store) {
  std::string out = std::string(kRecordCsvHeader) + ",reason\n";
  for (const auto& entry : store.quarantine()) {
    out += RecordToCsvRow(entry.record) + "," + Quote(entry.reason) + "\n";
  }
  return out;
}

std::string PanelToCsv(const Panel& panel) {
  std::string out = "period";
  for (const auto& unit : panel.units) out += "," + Quote(unit.unit);
  out += "\n";
  const std::size_t periods =
      panel.units.empty() ? 0 : panel.units.front().values.size();
  for (std::size_t t = 0; t < periods; ++t) {
    out += std::to_string(t);
    for (const auto& unit : panel.units) {
      out += "," + FormatDouble(unit.values[t]);
    }
    out += "\n";
  }
  return out;
}

std::string DatasetToCsv(const causal::Dataset& data) {
  std::string out;
  const auto& names = data.ColumnNames();
  for (std::size_t c = 0; c < names.size(); ++c) {
    if (c > 0) out += ",";
    out += Quote(names[c]);
  }
  out += "\n";
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < names.size(); ++c) {
      if (c > 0) out += ",";
      out += FormatDouble(data.ColumnOrDie(names[c])[r]);
    }
    out += "\n";
  }
  return out;
}

core::Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    (SISYPHUS_LOG(kError) << "export open failed").With("path", path);
    return core::Error(core::ErrorCode::kInvalidArgument,
                       "WriteTextFile: cannot open '" + path + "'");
  }
  file << text;
  if (!file) {
    (SISYPHUS_LOG(kError) << "export write failed").With("path", path);
    return core::Error(core::ErrorCode::kInvalidArgument,
                       "WriteTextFile: write failed for '" + path + "'");
  }
  (SISYPHUS_LOG(kDebug) << "export written")
      .With("path", path)
      .With("bytes", text.size());
  return core::Status::Ok();
}

}  // namespace sisyphus::measure
