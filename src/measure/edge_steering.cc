#include "measure/edge_steering.h"

#include <limits>

#include "core/error.h"

namespace sisyphus::measure {

using core::Error;
using core::ErrorCode;
using core::Result;

const char* ToString(SteeringMode mode) {
  switch (mode) {
    case SteeringMode::kNearest: return "nearest";
    case SteeringMode::kRandomSite: return "random_site";
    case SteeringMode::kPinned: return "pinned";
  }
  return "?";
}

EdgeSteering::EdgeSteering(netsim::NetworkSimulator& simulator,
                           std::vector<netsim::PopIndex> sites)
    : simulator_(simulator), sites_(std::move(sites)) {
  SISYPHUS_REQUIRE(!sites_.empty(), "EdgeSteering: no sites");
  pinned_ = sites_.front();
}

void EdgeSteering::SetMode(SteeringMode mode) { mode_ = mode; }

void EdgeSteering::Pin(netsim::PopIndex site) {
  SISYPHUS_REQUIRE(
      std::find(sites_.begin(), sites_.end(), site) != sites_.end(),
      "EdgeSteering::Pin: unknown site");
  pinned_ = site;
  mode_ = SteeringMode::kPinned;
}

Result<netsim::PopIndex> EdgeSteering::ChooseServer(netsim::PopIndex vantage,
                                                    core::Rng& rng) {
  netsim::PopIndex chosen = pinned_;
  switch (mode_) {
    case SteeringMode::kPinned:
      if (!simulator_.RouteBetween(vantage, pinned_).ok()) {
        return Error(ErrorCode::kNotFound,
                     "EdgeSteering: pinned site unreachable");
      }
      chosen = pinned_;
      break;
    case SteeringMode::kRandomSite: {
      // Uniform over reachable sites.
      std::vector<netsim::PopIndex> reachable;
      for (netsim::PopIndex site : sites_) {
        if (simulator_.RouteBetween(vantage, site).ok()) {
          reachable.push_back(site);
        }
      }
      if (reachable.empty()) {
        return Error(ErrorCode::kNotFound,
                     "EdgeSteering: no reachable site");
      }
      chosen = reachable[static_cast<std::size_t>(rng.UniformInt(
          0, static_cast<std::int64_t>(reachable.size()) - 1))];
      break;
    }
    case SteeringMode::kNearest: {
      double best = std::numeric_limits<double>::infinity();
      bool found = false;
      for (netsim::PopIndex site : sites_) {
        auto route = simulator_.RouteBetween(vantage, site);
        if (!route.ok()) continue;
        const double rtt =
            simulator_.latency().PathRttMs(route.value(), simulator_.Now());
        if (rtt < best) {
          best = rtt;
          chosen = site;
          found = true;
        }
      }
      if (!found) {
        return Error(ErrorCode::kNotFound,
                     "EdgeSteering: no reachable site");
      }
      break;
    }
  }
  decisions_.push_back({simulator_.Now(), vantage, chosen, mode_});
  return chosen;
}

}  // namespace sisyphus::measure
