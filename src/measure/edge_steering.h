// Edge steering: the paper's §4 example knob "rotating DNS resolvers to
// shift CDN edge selection", modeled as controlled assignment of a
// vantage's tests to one of several anycast server sites.
//
// A SteeringPolicy decides, per test, which server PoP a vantage reaches:
//   kNearest     — resolver returns the lowest-RTT edge (the default CDN
//                  behaviour; endogenous, since it depends on network
//                  state);
//   kRandomSite  — uniformly random site (the M-Lab style randomizer — an
//                  instrument);
//   kPinned      — researcher-pinned site (a controlled intervention).
// Assignments are recorded so analysts can condition on the mechanism.
#pragma once

#include <vector>

#include "core/rng.h"
#include "netsim/simulator.h"

namespace sisyphus::measure {

enum class SteeringMode { kNearest, kRandomSite, kPinned };

const char* ToString(SteeringMode mode);

struct SteeringDecision {
  core::SimTime time;
  netsim::PopIndex vantage = 0;
  netsim::PopIndex server = 0;
  SteeringMode mode = SteeringMode::kNearest;
};

/// Chooses a server site per test for one vantage.
class EdgeSteering {
 public:
  /// `sites` must be non-empty; the simulator must outlive this object.
  EdgeSteering(netsim::NetworkSimulator& simulator,
               std::vector<netsim::PopIndex> sites);

  void SetMode(SteeringMode mode);
  /// Pins to a specific site (switches mode to kPinned).
  /// Precondition: `site` is one of the configured sites.
  void Pin(netsim::PopIndex site);

  SteeringMode mode() const { return mode_; }
  const std::vector<netsim::PopIndex>& sites() const { return sites_; }

  /// Picks the server for a test from `vantage` now. kNearest compares
  /// current mean path RTTs (unreachable sites skipped); kRandomSite
  /// draws uniformly. Fails (kNotFound) when no site is reachable.
  core::Result<netsim::PopIndex> ChooseServer(netsim::PopIndex vantage,
                                              core::Rng& rng);

  /// Every decision made, in order (for selection-mechanism audits).
  const std::vector<SteeringDecision>& decisions() const { return decisions_; }

 private:
  netsim::NetworkSimulator& simulator_;
  std::vector<netsim::PopIndex> sites_;
  SteeringMode mode_ = SteeringMode::kNearest;
  netsim::PopIndex pinned_ = 0;
  std::vector<SteeringDecision> decisions_;
};

}  // namespace sisyphus::measure
