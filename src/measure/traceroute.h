// Traceroute simulation over converged BGP paths.
//
// Hops are the router addresses a real traceroute would elicit. When a
// link crosses an IXP peering LAN, the responding interface on the far
// side is that router's address *on the LAN* (196.60.x.y) — which is
// exactly the artifact the paper exploits: matching hop IPs against the
// IXP's announced prefix reveals whether the path crosses the IXP.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/ids.h"
#include "netsim/bgp.h"
#include "netsim/topology.h"

namespace sisyphus::measure {

struct TracerouteHop {
  netsim::Ipv4 address;
  core::Asn asn;           ///< owner of the responding router
  netsim::PopIndex pop = 0;
};

struct Traceroute {
  std::vector<TracerouteHop> hops;  ///< source router first, dest last

  /// "10.0.0.1 196.60.0.3 10.0.2.1".
  std::string ToText() const;
};

/// Builds the traceroute a probe at route.pop_path.front() would observe.
Traceroute SimulateTraceroute(const netsim::Topology& topology,
                              const netsim::BgpRoute& route);

/// IXPs whose peering LAN appears among the hops (the paper's detection
/// rule). Deduplicated, in first-seen order.
std::vector<core::IxpId> DetectIxpCrossings(const netsim::Topology& topology,
                                            const Traceroute& traceroute);

/// True iff `traceroute` crosses the given IXP.
bool CrossesIxp(const netsim::Topology& topology, const Traceroute& traceroute,
                core::IxpId ixp);

}  // namespace sisyphus::measure
