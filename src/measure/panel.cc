#include "measure/panel.h"

#include <algorithm>
#include <cstdio>

#include "core/error.h"
#include "core/logging.h"
#include "obs/metrics.h"
#include "stats/timeseries.h"

namespace sisyphus::measure {

using core::Error;
using core::ErrorCode;
using core::Result;

Result<std::size_t> Panel::Find(const std::string& unit) const {
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i].unit == unit) return i;
  }
  for (const DroppedUnit& drop : dropped) {
    if (drop.unit == unit) {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "': dropped for sparsity (missing_fraction %.2f > "
                    "max_missing_fraction %.2f)",
                    drop.missing_fraction, options.max_missing_fraction);
      return Error(ErrorCode::kNotFound, "Panel: unit '" + unit + detail);
    }
  }
  return Error(ErrorCode::kNotFound, "Panel: no unit '" + unit + "'");
}

Panel BuildRttPanel(const MeasurementStore& store,
                    const PanelOptions& options) {
  Panel panel;
  panel.options = options;
  const bool lineage = obs::Lineage::enabled();
  for (const std::string& unit : store.Units()) {
    // Sort by time: retry backoff and clock skew can reorder records.
    auto records = store.ForUnit(unit);
    std::stable_sort(records.begin(), records.end(),
                     [](const SpeedTestRecord* a, const SpeedTestRecord* b) {
                       return a->time < b->time;
                     });
    stats::TimeSeries series;
    for (const SpeedTestRecord* record : records) {
      series.Append(record->time, record->rtt_ms);
    }
    // Per-bucket record attribution mirrors BucketedMedians' windows
    // exactly: bucket i covers [origin + i*bucket, origin + (i+1)*bucket).
    std::vector<std::vector<std::uint64_t>> bucket_ids;
    if (lineage) {
      bucket_ids.resize(options.periods);
      for (const SpeedTestRecord* record : records) {
        const std::int64_t from_origin =
            record->time.minutes() - options.origin.minutes();
        const std::int64_t idx =
            from_origin >= 0 ? from_origin / options.bucket.minutes() : -1;
        if (idx >= 0 && idx < static_cast<std::int64_t>(options.periods)) {
          bucket_ids[static_cast<std::size_t>(idx)].push_back(
              record->id.value());
        } else {
          // Skew/backoff can push a record outside the panel horizon: it
          // terminates here, contributing to no cell.
          obs::Lineage::Global().RecordOutOfPanel(record->id.value());
        }
      }
      for (auto& ids : bucket_ids) std::sort(ids.begin(), ids.end());
    }
    const auto buckets = series.BucketedMedians(options.origin, options.bucket,
                                                options.periods);
    if (stats::AllMissing(buckets)) {
      SISYPHUS_METRIC_COUNT("measure.panel.units_empty", 1);
      if (lineage) obs::Lineage::Global().PanelUnitEmpty(unit);
      (SISYPHUS_LOG(kDebug) << "panel unit skipped: no observed buckets")
          .With("unit", unit);
      continue;
    }
    const double missing = stats::MissingFraction(buckets);
    std::size_t observed_cells = 0;
    for (const auto& bucket : buckets) {
      if (bucket.has_value()) ++observed_cells;
    }
    SISYPHUS_METRIC_COUNT("measure.panel.cells_observed", observed_cells);
    SISYPHUS_METRIC_COUNT("measure.panel.cells_masked",
                          buckets.size() - observed_cells);
    if (missing > options.max_missing_fraction) {
      SISYPHUS_METRIC_COUNT("measure.panel.units_dropped", 1);
      if (lineage) {
        std::vector<std::uint64_t> in_range;
        for (const auto& ids : bucket_ids) {
          in_range.insert(in_range.end(), ids.begin(), ids.end());
        }
        std::sort(in_range.begin(), in_range.end());
        obs::Lineage::Global().PanelUnitDropped(
            unit, missing, observed_cells, buckets.size() - observed_cells,
            obs::IdRunSet::FromSorted(in_range));
      }
      (SISYPHUS_LOG(kDebug) << "panel unit dropped for sparsity")
          .With("unit", unit)
          .With("missing_fraction", missing)
          .With("max_missing_fraction", options.max_missing_fraction);
      panel.dropped.push_back({unit, missing});
      continue;
    }
    SISYPHUS_METRIC_COUNT("measure.panel.units_kept", 1);
    UnitSeries out;
    out.unit = unit;
    out.values = stats::InterpolateMissing(buckets);
    out.missing_fraction = missing;
    out.observed.reserve(buckets.size());
    for (const auto& bucket : buckets) {
      out.observed.push_back(bucket.has_value());
    }
    if (lineage) {
      obs::Lineage::Global().PanelUnitKept(
          unit, missing, observed_cells, buckets.size() - observed_cells);
      out.cell_ids.resize(options.periods);
      for (std::size_t t = 0; t < bucket_ids.size(); ++t) {
        if (bucket_ids[t].empty()) continue;
        auto ids = obs::IdRunSet::FromSorted(bucket_ids[t]);
        obs::Lineage::Global().PanelCell(
            unit, static_cast<std::uint32_t>(t), ids);
        out.cell_ids[t] = std::move(ids);
      }
    }
    panel.units.push_back(std::move(out));
  }
  return panel;
}

Result<causal::SyntheticControlInput> MakeSyntheticControlInput(
    const Panel& panel, const std::string& treated_unit,
    const std::vector<std::string>& donor_units, core::SimTime treatment_time,
    std::vector<std::string>* skipped) {
  auto treated_index = panel.Find(treated_unit);
  if (!treated_index.ok()) return treated_index.error();

  std::vector<stats::Vector> donor_columns;
  std::vector<stats::Vector> donor_masks;
  std::vector<std::string> donor_names;
  for (const std::string& donor : donor_units) {
    if (donor == treated_unit) continue;
    auto index = panel.Find(donor);
    if (!index.ok()) {
      SISYPHUS_METRIC_COUNT("measure.panel.donors_skipped", 1);
      (SISYPHUS_LOG(kDebug) << "donor skipped")
          .With("donor", donor)
          .With("reason", index.error().ToText());
      if (skipped != nullptr) skipped->push_back(donor);
      continue;
    }
    const UnitSeries& series = panel.units[index.value()];
    donor_columns.push_back(series.values);
    stats::Vector mask(series.values.size(), 1.0);
    for (std::size_t t = 0; t < series.observed.size(); ++t) {
      mask[t] = series.observed[t] ? 1.0 : 0.0;
    }
    donor_masks.push_back(std::move(mask));
    donor_names.push_back(donor);
  }
  if (donor_columns.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "MakeSyntheticControlInput: no usable donors");
  }

  const auto minutes_from_origin =
      treatment_time.minutes() - panel.options.origin.minutes();
  if (minutes_from_origin <= 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "MakeSyntheticControlInput: treatment before panel origin");
  }
  const std::size_t pre_periods = static_cast<std::size_t>(
      minutes_from_origin / panel.options.bucket.minutes());

  const UnitSeries& treated = panel.units[treated_index.value()];
  causal::SyntheticControlInput input;
  input.treated_name = treated_unit;
  input.treated = treated.values;
  input.treated_observed.assign(treated.values.size(), 1.0);
  for (std::size_t t = 0; t < treated.observed.size(); ++t) {
    input.treated_observed[t] = treated.observed[t] ? 1.0 : 0.0;
  }
  input.donors = stats::Matrix::FromColumns(donor_columns);
  input.donor_observed = stats::Matrix::FromColumns(donor_masks);
  input.donor_names = std::move(donor_names);
  input.pre_periods = pre_periods;
  if (auto s = input.Validate(); !s.ok()) return s.error();
  return input;
}

}  // namespace sisyphus::measure
