#include "measure/panel.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "core/binio.h"
#include "core/error.h"
#include "core/hash.h"
#include "core/logging.h"
#include "obs/metrics.h"
#include "stats/descriptive.h"
#include "stats/timeseries.h"

namespace sisyphus::measure {

using core::Error;
using core::ErrorCode;
using core::Result;

Result<std::size_t> Panel::Find(const std::string& unit) const {
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (units[i].unit == unit) return i;
  }
  for (const DroppedUnit& drop : dropped) {
    if (drop.unit == unit) {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "': dropped for sparsity (missing_fraction %.2f > "
                    "max_missing_fraction %.2f)",
                    drop.missing_fraction, options.max_missing_fraction);
      return Error(ErrorCode::kNotFound, "Panel: unit '" + unit + detail);
    }
  }
  return Error(ErrorCode::kNotFound, "Panel: no unit '" + unit + "'");
}

IncrementalPanelBuilder::IncrementalPanelBuilder(PanelOptions options,
                                                 std::size_t shard_count)
    : options_(options), lineage_(obs::Lineage::enabled()) {
  SISYPHUS_REQUIRE(shard_count > 0, "IncrementalPanelBuilder: zero shards");
  SISYPHUS_REQUIRE(options.bucket.minutes() > 0,
                   "IncrementalPanelBuilder: zero bucket");
  shards_.resize(shard_count);
}

std::size_t IncrementalPanelBuilder::ShardOf(std::string_view unit) const {
  return static_cast<std::size_t>(core::Fnv1a64(unit) % shards_.size());
}

void IncrementalPanelBuilder::Observe(std::size_t shard, std::string_view unit,
                                      core::SimTime time, double rtt_ms,
                                      std::uint64_t id) {
  Shard& owner = shards_[shard];
  auto it = owner.units.find(unit);
  if (it == owner.units.end()) {
    it = owner.units.emplace(std::string(unit), UnitCells{}).first;
    it->second.cells.resize(options_.periods);
  }
  // Cell attribution mirrors the bucketed-median windows exactly: bucket i
  // covers [origin + i*bucket, origin + (i+1)*bucket).
  const std::int64_t from_origin =
      time.minutes() - options_.origin.minutes();
  const std::int64_t idx =
      from_origin >= 0 ? from_origin / options_.bucket.minutes() : -1;
  if (idx < 0 || idx >= static_cast<std::int64_t>(options_.periods)) {
    // Skew/backoff can push a record outside the panel horizon: it
    // terminates here, contributing to no cell (the unit entry above still
    // counts it toward "unit exists but panel-empty").
    if (lineage_) obs::Lineage::Global().RecordOutOfPanel(id);
    return;
  }
  CellAccumulator& cell = it->second.cells[static_cast<std::size_t>(idx)];
  cell.values.push_back(rtt_ms);
  if (lineage_) cell.ids.push_back(id);
  UnitCells& unit_cells = it->second;
  ++unit_cells.running_count;
  const double t = unit_cells.running_sum + rtt_ms;
  if (std::abs(unit_cells.running_sum) >= std::abs(rtt_ms)) {
    unit_cells.running_comp += (unit_cells.running_sum - t) + rtt_ms;
  } else {
    unit_cells.running_comp += (rtt_ms - t) + unit_cells.running_sum;
  }
  unit_cells.running_sum = t;
  ++owner.observed;
}

std::uint64_t IncrementalPanelBuilder::observed() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) total += shard.observed;
  return total;
}

void IncrementalPanelBuilder::VisitRunningMeans(
    const std::function<void(std::string_view, std::uint64_t, double)>& visit)
    const {
  // Shards partition units, so the sorted concatenation of the per-shard
  // maps is the global sorted unit order (same gather as Finalize).
  std::vector<std::pair<std::string_view, const UnitCells*>> units;
  for (const Shard& shard : shards_) {
    for (const auto& [unit, cells] : shard.units) {
      units.emplace_back(unit, &cells);
    }
  }
  std::sort(units.begin(), units.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [unit, cells] : units) {
    visit(unit, cells->running_count,
          cells->running_sum + cells->running_comp);
  }
}

void IncrementalPanelBuilder::Save(core::binio::Writer& w) const {
  w.PutU64(shards_.size());
  w.PutU64(options_.periods);
  w.PutBool(lineage_);
  for (const Shard& shard : shards_) {
    w.PutU64(shard.units.size());
    for (const auto& [unit, cells] : shard.units) {
      w.PutString(unit);
      // Only non-empty cells are written; period indices key them back.
      std::uint64_t non_empty = 0;
      for (const CellAccumulator& cell : cells.cells) {
        if (!cell.values.empty()) ++non_empty;
      }
      w.PutU64(non_empty);
      for (std::size_t t = 0; t < cells.cells.size(); ++t) {
        const CellAccumulator& cell = cells.cells[t];
        if (cell.values.empty()) continue;
        w.PutU64(t);
        core::binio::PutDoubleVector(w, cell.values);
        core::binio::PutU64Vector(w, cell.ids);
      }
      w.PutU64(cells.running_count);
      w.PutDouble(cells.running_sum);
      w.PutDouble(cells.running_comp);
    }
    w.PutU64(shard.observed);
  }
}

bool IncrementalPanelBuilder::Load(core::binio::Reader& r) {
  const std::uint64_t shard_count = r.GetU64();
  const std::uint64_t periods = r.GetU64();
  const bool lineage = r.GetBool();
  if (!r.ok() || shard_count != shards_.size() ||
      periods != options_.periods || lineage != lineage_) {
    return false;
  }
  std::vector<Shard> loaded(shards_.size());
  for (Shard& shard : loaded) {
    const std::uint64_t unit_count = r.GetU64();
    for (std::uint64_t u = 0; u < unit_count && r.ok(); ++u) {
      const std::string unit = r.GetString();
      UnitCells cells;
      cells.cells.resize(options_.periods);
      const std::uint64_t non_empty = r.GetU64();
      for (std::uint64_t c = 0; c < non_empty && r.ok(); ++c) {
        const std::uint64_t t = r.GetU64();
        if (!r.ok() || t >= options_.periods) return false;
        CellAccumulator& cell = cells.cells[static_cast<std::size_t>(t)];
        cell.values = core::binio::GetDoubleVector(r);
        cell.ids = core::binio::GetU64Vector(r);
      }
      cells.running_count = r.GetU64();
      cells.running_sum = r.GetDouble();
      cells.running_comp = r.GetDouble();
      shard.units.emplace(unit, std::move(cells));
    }
    shard.observed = r.GetU64();
    if (!r.ok()) return false;
  }
  shards_ = std::move(loaded);
  return true;
}

Panel IncrementalPanelBuilder::Finalize() const {
  Panel panel;
  panel.options = options_;
  // Shards partition units, so the sorted concatenation of the per-shard
  // maps is exactly the global sorted unit order the batch pass iterates.
  std::vector<std::pair<std::string_view, const UnitCells*>> units;
  for (const Shard& shard : shards_) {
    for (const auto& [unit, cells] : shard.units) {
      units.emplace_back(unit, &cells);
    }
  }
  std::sort(units.begin(), units.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  for (const auto& [unit_view, unit_cells] : units) {
    const std::string unit(unit_view);
    std::vector<std::optional<double>> buckets(options_.periods);
    std::vector<std::uint32_t> counts(options_.periods, 0);
    std::vector<double> means(options_.periods, 0.0);
    for (std::size_t t = 0; t < options_.periods; ++t) {
      const CellAccumulator& cell = unit_cells->cells[t];
      if (cell.values.empty()) continue;
      // Sorting pins every aggregate to the cell's value *multiset*:
      // medians by definition, means via compensated summation over the
      // sorted values — so batch and streaming arrival orders agree
      // bit-for-bit (the parity audit this builder exists to close).
      std::vector<double> sorted = cell.values;
      std::sort(sorted.begin(), sorted.end());
      buckets[t] = stats::Median(sorted);
      means[t] = stats::CompensatedMean(sorted);
      counts[t] = static_cast<std::uint32_t>(sorted.size());
    }
    if (stats::AllMissing(buckets)) {
      SISYPHUS_METRIC_COUNT("measure.panel.units_empty", 1);
      if (lineage_) obs::Lineage::Global().PanelUnitEmpty(unit);
      (SISYPHUS_LOG(kDebug) << "panel unit skipped: no observed buckets")
          .With("unit", unit);
      continue;
    }
    const double missing = stats::MissingFraction(buckets);
    std::size_t observed_cells = 0;
    for (const auto& bucket : buckets) {
      if (bucket.has_value()) ++observed_cells;
    }
    SISYPHUS_METRIC_COUNT("measure.panel.cells_observed", observed_cells);
    SISYPHUS_METRIC_COUNT("measure.panel.cells_masked",
                          buckets.size() - observed_cells);
    std::vector<std::vector<std::uint64_t>> bucket_ids;
    if (lineage_) {
      bucket_ids.resize(options_.periods);
      for (std::size_t t = 0; t < options_.periods; ++t) {
        bucket_ids[t] = unit_cells->cells[t].ids;
        std::sort(bucket_ids[t].begin(), bucket_ids[t].end());
      }
    }
    if (missing > options_.max_missing_fraction) {
      SISYPHUS_METRIC_COUNT("measure.panel.units_dropped", 1);
      if (lineage_) {
        std::vector<std::uint64_t> in_range;
        for (const auto& ids : bucket_ids) {
          in_range.insert(in_range.end(), ids.begin(), ids.end());
        }
        std::sort(in_range.begin(), in_range.end());
        obs::Lineage::Global().PanelUnitDropped(
            unit, missing, observed_cells, buckets.size() - observed_cells,
            obs::IdRunSet::FromSorted(in_range));
      }
      (SISYPHUS_LOG(kDebug) << "panel unit dropped for sparsity")
          .With("unit", unit)
          .With("missing_fraction", missing)
          .With("max_missing_fraction", options_.max_missing_fraction);
      panel.dropped.push_back({unit, missing});
      continue;
    }
    SISYPHUS_METRIC_COUNT("measure.panel.units_kept", 1);
    UnitSeries out;
    out.unit = unit;
    out.values = stats::InterpolateMissing(buckets);
    out.missing_fraction = missing;
    out.observed.reserve(buckets.size());
    for (const auto& bucket : buckets) {
      out.observed.push_back(bucket.has_value());
    }
    out.cell_counts = std::move(counts);
    out.cell_means = std::move(means);
    if (lineage_) {
      obs::Lineage::Global().PanelUnitKept(
          unit, missing, observed_cells, buckets.size() - observed_cells);
      out.cell_ids.resize(options_.periods);
      for (std::size_t t = 0; t < bucket_ids.size(); ++t) {
        if (bucket_ids[t].empty()) continue;
        auto ids = obs::IdRunSet::FromSorted(bucket_ids[t]);
        obs::Lineage::Global().PanelCell(
            unit, static_cast<std::uint32_t>(t), ids);
        out.cell_ids[t] = std::move(ids);
      }
    }
    panel.units.push_back(std::move(out));
  }
  return panel;
}

Panel BuildRttPanel(const MeasurementStore& store,
                    const PanelOptions& options) {
  // The batch pass is a single-shard streaming fold: every record is
  // observed once (duplicate-delivery copies are distinct records in the
  // archive), then Finalize() assembles cells exactly as the streaming
  // path does. No pre-sort is needed — aggregation is order-independent.
  IncrementalPanelBuilder builder(options, 1);
  for (const std::string& unit : store.Units()) {
    for (const SpeedTestRecord* record : store.ForUnit(unit)) {
      builder.Observe(0, unit, record->time, record->rtt_ms,
                      record->id.value());
    }
  }
  return builder.Finalize();
}

Result<causal::SyntheticControlInput> MakeSyntheticControlInput(
    const Panel& panel, const std::string& treated_unit,
    const std::vector<std::string>& donor_units, core::SimTime treatment_time,
    std::vector<std::string>* skipped) {
  auto treated_index = panel.Find(treated_unit);
  if (!treated_index.ok()) return treated_index.error();

  std::vector<stats::Vector> donor_columns;
  std::vector<stats::Vector> donor_masks;
  std::vector<std::string> donor_names;
  for (const std::string& donor : donor_units) {
    if (donor == treated_unit) continue;
    auto index = panel.Find(donor);
    if (!index.ok()) {
      SISYPHUS_METRIC_COUNT("measure.panel.donors_skipped", 1);
      (SISYPHUS_LOG(kDebug) << "donor skipped")
          .With("donor", donor)
          .With("reason", index.error().ToText());
      if (skipped != nullptr) skipped->push_back(donor);
      continue;
    }
    const UnitSeries& series = panel.units[index.value()];
    donor_columns.push_back(series.values);
    stats::Vector mask(series.values.size(), 1.0);
    for (std::size_t t = 0; t < series.observed.size(); ++t) {
      mask[t] = series.observed[t] ? 1.0 : 0.0;
    }
    donor_masks.push_back(std::move(mask));
    donor_names.push_back(donor);
  }
  if (donor_columns.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "MakeSyntheticControlInput: no usable donors");
  }

  const auto minutes_from_origin =
      treatment_time.minutes() - panel.options.origin.minutes();
  if (minutes_from_origin <= 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "MakeSyntheticControlInput: treatment before panel origin");
  }
  const std::size_t pre_periods = static_cast<std::size_t>(
      minutes_from_origin / panel.options.bucket.minutes());

  const UnitSeries& treated = panel.units[treated_index.value()];
  causal::SyntheticControlInput input;
  input.treated_name = treated_unit;
  input.treated = treated.values;
  input.treated_observed.assign(treated.values.size(), 1.0);
  for (std::size_t t = 0; t < treated.observed.size(); ++t) {
    input.treated_observed[t] = treated.observed[t] ? 1.0 : 0.0;
  }
  input.donors = stats::Matrix::FromColumns(donor_columns);
  input.donor_observed = stats::Matrix::FromColumns(donor_masks);
  input.donor_names = std::move(donor_names);
  input.pre_periods = pre_periods;
  if (auto s = input.Validate(); !s.ok()) return s.error();
  return input;
}

}  // namespace sisyphus::measure
