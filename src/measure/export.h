// CSV export for measurement stores, panels, and Datasets — the boundary
// where a downstream analyst takes the data into their own tooling
// (dagitty, DoWhy, R's Synth...), as the paper expects real studies to.
#pragma once

#include <string>

#include "causal/dataset.h"
#include "measure/panel.h"
#include "measure/store.h"

namespace sisyphus::measure {

/// One row per speed test:
/// id,time_minutes,asn,city,intent,rtt_ms,throughput_mbps,attempts,
/// asn_path,traceroute. Fields containing commas are quoted.
std::string StoreToCsv(const MeasurementStore& store);

/// One row per quarantined record: the same fields plus the rejection
/// reason — the inspectable side-channel for corrupt data.
std::string QuarantineToCsv(const MeasurementStore& store);

/// Wide format: period index column then one column per unit (interpolated
/// median RTT).
std::string PanelToCsv(const Panel& panel);

/// Generic Dataset export, columns in insertion order.
std::string DatasetToCsv(const causal::Dataset& data);

/// Writes text to a file; kInvalidArgument when the file cannot be opened.
core::Status WriteTextFile(const std::string& path, const std::string& text);

}  // namespace sisyphus::measure
