#include "measure/platform.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace sisyphus::measure {

Platform::Platform(netsim::NetworkSimulator& simulator,
                   PlatformOptions options)
    : simulator_(simulator), options_(options) {
  SISYPHUS_REQUIRE(options.step.minutes() > 0, "Platform: zero step");
  route_change_cursor_ = simulator_.route_changes().size();
}

void Platform::AddVantage(VantageConfig config) {
  simulator_.WatchPath(config.pop, options_.server);
  VantageState state;
  state.config = config;
  vantages_.push_back(state);
}

void Platform::RunTests(VantageState& vantage, std::size_t count,
                        Intent intent, core::Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    netsim::PopIndex server = options_.server;
    if (steering_ != nullptr) {
      auto chosen = steering_->ChooseServer(vantage.config.pop, rng);
      if (!chosen.ok()) continue;  // no reachable site right now
      server = chosen.value();
    }
    auto record = RunSpeedTest(simulator_, vantage.config.pop, server,
                               intent, rng, options_.test_model);
    if (record.ok()) store_.Add(std::move(record).value());
    // Unreachable vantage: silently no data, like a real platform.
  }
}

std::size_t Platform::CountByIntent(Intent intent) const {
  std::size_t count = 0;
  for (const auto& record : store_.records()) {
    if (record.intent == intent) ++count;
  }
  return count;
}

void Platform::Run(core::SimTime until, core::Rng& rng) {
  while (simulator_.Now() < until) {
    const core::SimTime step_end =
        std::min(until, simulator_.Now() + options_.step);
    simulator_.AdvanceTo(step_end);

    // Route changes that landed during this step, per vantage PoP.
    const auto& changes = simulator_.route_changes();
    std::vector<netsim::PopIndex> changed_pops;
    for (; route_change_cursor_ < changes.size(); ++route_change_cursor_) {
      changed_pops.push_back(changes[route_change_cursor_].source);
    }

    const double step_days =
        static_cast<double>(options_.step.minutes()) / (24.0 * 60.0);
    for (VantageState& vantage : vantages_) {
      const bool path_changed =
          std::find(changed_pops.begin(), changed_pops.end(),
                    vantage.config.pop) != changed_pops.end();

      // Current network-level RTT (deterministic mean) drives perceived
      // performance.
      double current_rtt = -1.0;
      if (auto route =
              simulator_.RouteBetween(vantage.config.pop, options_.server);
          route.ok()) {
        current_rtt =
            simulator_.latency().PathRttMs(route.value(), simulator_.Now());
      }

      // Baseline schedule: timing independent of network state.
      const std::uint32_t baseline = rng.Poisson(
          vantage.config.baseline_tests_per_day * step_days);
      RunTests(vantage, baseline, Intent::kBaseline, rng);

      // User-initiated: rate inflated by dissatisfaction and route churn —
      // the collider mechanism.
      if (vantage.config.user_tests_per_day > 0.0 && current_rtt > 0.0) {
        double rate = vantage.config.user_tests_per_day * step_days;
        if (vantage.ewma_rtt > 0.0) {
          const double excess =
              std::max(0.0, current_rtt / vantage.ewma_rtt - 1.0);
          rate *= 1.0 + vantage.config.dissatisfaction_gain * excess;
        }
        if (path_changed) rate *= vantage.config.route_change_multiplier;
        RunTests(vantage, rng.Poisson(rate), Intent::kUserInitiated, rng);
      }

      // §4 proposal 1: conditional activation on external signals.
      if (options_.conditional_activation && path_changed) {
        RunTests(vantage, options_.event_burst_tests, Intent::kEventTriggered,
                 rng);
      }

      // Habituate.
      if (current_rtt > 0.0) {
        vantage.ewma_rtt =
            vantage.ewma_rtt < 0.0
                ? current_rtt
                : (1.0 - options_.ewma_alpha) * vantage.ewma_rtt +
                      options_.ewma_alpha * current_rtt;
      }
    }
  }
}

}  // namespace sisyphus::measure
