#include "measure/platform.h"

#include <algorithm>
#include <cmath>

#include "core/binio.h"
#include "core/error.h"
#include "core/logging.h"
#include "core/parallel.h"
#include "obs/lineage.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace sisyphus::measure {

Platform::Platform(netsim::NetworkSimulator& simulator,
                   PlatformOptions options)
    : simulator_(simulator), options_(options), store_(options.validation) {
  SISYPHUS_REQUIRE(options.step.minutes() > 0, "Platform: zero step");
  SISYPHUS_REQUIRE(options.retry.max_attempts > 0,
                   "Platform: zero max_attempts");
  route_change_cursor_ = simulator_.route_changes().size();
}

void Platform::AddVantage(VantageConfig config) {
  simulator_.WatchPath(config.pop, options_.server);
  VantageState state;
  state.config = config;
  vantages_.push_back(state);
}

void Platform::RunTests(VantageState& vantage, std::size_t count,
                        Intent intent, double congestion_signal,
                        core::Rng& rng, VantageBatch& batch) {
  for (std::size_t i = 0; i < count; ++i) {
    RunOneTest(vantage, intent, congestion_signal, rng, batch);
  }
}

void Platform::RunOneTest(VantageState& vantage, Intent intent,
                          double congestion_signal, core::Rng& rng,
                          VantageBatch& batch) {
  SISYPHUS_METRIC_COUNT("measure.probes.attempted", 1);
  const netsim::PopIndex pop = vantage.config.pop;
  netsim::PopIndex server = options_.server;
  if (steering_ != nullptr) {
    auto chosen = steering_->ChooseServer(pop, rng);
    if (!chosen.ok()) {
      batch.failures.push_back({simulator_.Now(), pop, intent,
                                ProbeFault::kUnreachable, 1});
      return;
    }
    server = chosen.value();
  }

  // Retry with exponential backoff in simulated time. Each attempt is
  // timestamped at its (backoff-shifted) send time, so records that only
  // exist because of a retry are visibly late.
  core::SimTime attempt_time = simulator_.Now();
  core::SimTime backoff = options_.retry.backoff_base;
  ProbeFault last_fault = ProbeFault::kNone;
  for (std::uint32_t attempt = 1;
       attempt <= options_.retry.max_attempts; ++attempt) {
    if (attempt > 1) {
      SISYPHUS_METRIC_COUNT("measure.probes.retried", 1);
      attempt_time = attempt_time + backoff;
      backoff = core::SimTime(static_cast<std::int64_t>(
          static_cast<double>(backoff.minutes()) *
          options_.retry.backoff_multiplier));
    }

    if (simulator_.PopDark(pop, attempt_time) ||
        (injector_ != nullptr &&
         injector_->VantageDark(pop, attempt_time))) {
      last_fault = ProbeFault::kVantageOutage;
      continue;
    }
    if (simulator_.PopDark(server, attempt_time) ||
        (injector_ != nullptr && injector_->CollectorDark(attempt_time))) {
      last_fault = ProbeFault::kCollectorOutage;
      continue;
    }
    if (injector_ != nullptr) {
      const ProbeFault fault =
          injector_->SampleProbeFault(congestion_signal, rng);
      if (fault != ProbeFault::kNone) {
        last_fault = fault;
        continue;
      }
    }

    auto record = RunSpeedTest(simulator_, pop, server, intent, rng,
                               options_.test_model);
    if (!record.ok()) {
      // No route: retrying within the step cannot help (routing only
      // changes between steps), so fail fast.
      batch.failures.push_back({simulator_.Now(), pop, intent,
                                ProbeFault::kUnreachable, attempt});
      return;
    }
    record.value().time = attempt_time;
    record.value().attempts = attempt;
    SISYPHUS_METRIC_COUNT("measure.probes.succeeded", 1);
    bool duplicate = false;
    std::uint8_t fault_mask = 0;
    if (injector_ != nullptr) {
      duplicate =
          injector_->ApplyRecordFaults(record.value(), rng, &fault_mask);
    }
    // The id is assigned at merge time (vantage order), not here: task
    // scheduling must not influence archive contents.
    batch.records.push_back(
        {std::move(record).value(), duplicate, fault_mask});
    return;
  }
  batch.failures.push_back(
      {simulator_.Now(), pop, intent, last_fault,
       static_cast<std::uint32_t>(options_.retry.max_attempts)});
}

void Platform::RecordFailure(ProbeFailure failure) {
  SISYPHUS_METRIC_COUNT("measure.probes.failed", 1);
#if !defined(SISYPHUS_OBS_DISABLED)
  // Per-reason counters mirror the ProbeFault provenance of failures().
  obs::Registry::Global()
      .GetCounter(std::string("measure.probes.failed.") +
                  std::string(ToString(failure.reason)))
      ->Add(1);
#endif
  SISYPHUS_LINEAGE(RecordProbeFailure(ToString(failure.reason)));
  failures_.push_back(failure);
}

std::map<std::string, std::size_t> Platform::FailureReasonCounts() const {
  std::map<std::string, std::size_t> counts;
  for (const ProbeFailure& failure : failures_) {
    ++counts[std::string(ToString(failure.reason))];
  }
  return counts;
}

std::map<netsim::PopIndex, std::size_t> Platform::FailuresByVantage() const {
  std::map<netsim::PopIndex, std::size_t> counts;
  for (const ProbeFailure& failure : failures_) ++counts[failure.vantage];
  return counts;
}

std::size_t Platform::CountByIntent(Intent intent) const {
  std::size_t count = 0;
  for (const auto& record : store_.records()) {
    if (record.intent == intent) ++count;
  }
  return count;
}

void Platform::Run(core::SimTime until, core::Rng& rng) {
  RunLoop(until, rng, nullptr);
  LogCampaignSummary();
}

namespace {

/// Appends p50/p95/p99 fields for every registered histogram with data
/// (one "<name>.pXX" triple each) to a campaign-end summary — the same
/// deterministic bucket-interpolated quantiles metrics.json carries.
void AppendHistogramQuantileFields(std::vector<core::LogField>& fields) {
  if (!obs::Registry::enabled()) return;
  for (const char* name : {"netsim.bgp.convergence_sweeps"}) {
    const obs::Histogram* histogram =
        obs::Registry::Global().FindHistogram(name);
    if (histogram == nullptr || histogram->count() == 0) continue;
    fields.emplace_back(std::string(name) + ".p50", histogram->Quantile(0.50));
    fields.emplace_back(std::string(name) + ".p95", histogram->Quantile(0.95));
    fields.emplace_back(std::string(name) + ".p99", histogram->Quantile(0.99));
  }
}

}  // namespace

void Platform::RunStreaming(core::SimTime until, core::Rng& rng,
                            StreamingCampaign& sink) {
  RunLoop(until, rng, &sink);
  std::vector<core::LogField> fields;
  fields.emplace_back("archived", sink.store().size());
  fields.emplace_back("quarantined", sink.store().quarantined());
  fields.emplace_back("failed_probes", failures_.size());
  fields.emplace_back("vantages", vantages_.size());
  fields.emplace_back("batches", sink.batches());
  fields.emplace_back("shards", sink.store().shard_count());
  for (const auto& [tag, count] : sink.store().QuarantineReasonCounts()) {
    fields.emplace_back("quarantine." + tag, count);
  }
  for (const auto& [reason, count] : FailureReasonCounts()) {
    fields.emplace_back("fail." + reason, count);
  }
  AppendHistogramQuantileFields(fields);
  core::LogLine(core::LogLevel::kInfo, "streaming campaign complete", fields);
}

StepOutput Platform::GenerateStep(core::SimTime until, core::Rng& rng) {
  const core::SimTime step_end =
      std::min(until, simulator_.Now() + options_.step);
  simulator_.AdvanceTo(step_end);

  // Route changes that landed during this step, per vantage PoP.
  const auto& changes = simulator_.route_changes();
  std::vector<netsim::PopIndex> changed_pops;
  for (; route_change_cursor_ < changes.size(); ++route_change_cursor_) {
    changed_pops.push_back(changes[route_change_cursor_].source);
  }

  const double step_days =
      static_cast<double>(options_.step.minutes()) / (24.0 * 60.0);

  // Serial prewarm: per-vantage network signals. Besides computing the
  // inputs the probe tasks need, this touches every (vantage, server)
  // route from the campaign thread, so the BGP route cache is warm and
  // the tasks below only ever read it.
  struct StepSignal {
    bool path_changed = false;
    double current_rtt = -1.0;
    double congestion_signal = 0.0;
  };
  std::vector<StepSignal> signals(vantages_.size());
  for (std::size_t i = 0; i < vantages_.size(); ++i) {
    StepSignal& signal = signals[i];
    signal.path_changed =
        std::find(changed_pops.begin(), changed_pops.end(),
                  vantages_[i].config.pop) != changed_pops.end();
    // Current network-level RTT (deterministic mean) drives perceived
    // performance; the path loss rate doubles as the congestion signal
    // that MNAR fault plans couple probe loss to.
    if (auto route =
            simulator_.RouteBetween(vantages_[i].config.pop, options_.server);
        route.ok()) {
      signal.current_rtt =
          simulator_.latency().PathRttMs(route.value(), simulator_.Now());
      signal.congestion_signal =
          simulator_.latency().PathLossRate(route.value(), simulator_.Now());
    }
  }

  // One campaign-stream draw per step; each vantage forks its own task
  // stream from it, so per-vantage randomness does not depend on how
  // tasks interleave (or on how many tests other vantages ran).
  const std::uint64_t step_seed = rng.Next();
  std::vector<VantageBatch> batches(vantages_.size());
  const auto run_vantage = [&](std::size_t i) {
    core::Rng task_rng = core::Rng::Fork(step_seed, i);
    VantageState& vantage = vantages_[i];
    const StepSignal& signal = signals[i];
    VantageBatch& batch = batches[i];

    // Baseline schedule: timing independent of network state.
    const std::uint32_t baseline = task_rng.Poisson(
        vantage.config.baseline_tests_per_day * step_days);
    RunTests(vantage, baseline, Intent::kBaseline, signal.congestion_signal,
             task_rng, batch);

    // User-initiated: rate inflated by dissatisfaction and route churn —
    // the collider mechanism.
    if (vantage.config.user_tests_per_day > 0.0 &&
        signal.current_rtt > 0.0) {
      double rate = vantage.config.user_tests_per_day * step_days;
      if (vantage.ewma_rtt > 0.0) {
        const double excess =
            std::max(0.0, signal.current_rtt / vantage.ewma_rtt - 1.0);
        rate *= 1.0 + vantage.config.dissatisfaction_gain * excess;
      }
      if (signal.path_changed) rate *= vantage.config.route_change_multiplier;
      RunTests(vantage, task_rng.Poisson(rate), Intent::kUserInitiated,
               signal.congestion_signal, task_rng, batch);
    }

    // §4 proposal 1: conditional activation on external signals.
    if (options_.conditional_activation && signal.path_changed) {
      RunTests(vantage, options_.event_burst_tests, Intent::kEventTriggered,
               signal.congestion_signal, task_rng, batch);
    }

    // Habituate (this task owns vantages_[i]; no sharing).
    if (signal.current_rtt > 0.0) {
      vantage.ewma_rtt =
          vantage.ewma_rtt < 0.0
              ? signal.current_rtt
              : (1.0 - options_.ewma_alpha) * vantage.ewma_rtt +
                    options_.ewma_alpha * signal.current_rtt;
    }
  };
  if (steering_ != nullptr) {
    // EdgeSteering keeps an order-sensitive decision log, so run the
    // identical forked-stream structure serially — same output, one lane.
    for (std::size_t i = 0; i < vantages_.size(); ++i) run_vantage(i);
  } else {
    core::ParallelFor(vantages_.size(), run_vantage);
  }

  // Merge in vantage order: sequential ids independent of scheduling.
  StepOutput out;
  out.step_end = step_end;
  std::size_t total_records = 0, total_failures = 0;
  for (const VantageBatch& batch : batches) {
    total_records += batch.records.size();
    total_failures += batch.failures.size();
  }
  out.records.reserve(total_records);
  out.failures.reserve(total_failures);
  for (VantageBatch& batch : batches) {
    for (PendingRecord& pending : batch.records) {
      pending.record.id = core::MeasurementId(next_record_id_++);
      out.records.push_back(std::move(pending));
    }
  }
  for (VantageBatch& batch : batches) {
    for (ProbeFailure& failure : batch.failures) {
      out.failures.push_back(failure);
    }
  }
  return out;
}

void Platform::CommitFailures(const std::vector<ProbeFailure>& failures) {
  for (const ProbeFailure& failure : failures) RecordFailure(failure);
}

void Platform::CommitBatch(StepOutput&& step) {
  for (PendingRecord& pending : step.records) {
    if (!obs::Lineage::enabled()) {
      if (pending.duplicate) store_.Add(pending.record);
      store_.Add(std::move(pending.record));
      continue;
    }
    obs::LineageRecordInfo info;
    info.id = pending.record.id.value();
    info.vantage = pending.record.vantage_pop;
    info.intent = static_cast<std::uint8_t>(pending.record.intent);
    info.attempts = static_cast<std::uint8_t>(
        std::min<std::uint32_t>(pending.record.attempts, 255));
    info.fault_mask = pending.fault_mask;
    info.copies = pending.duplicate ? 2 : 1;
    // Duplicate copies share id and content, so one verdict covers
    // both Add() calls.
    bool archived = false;
    if (pending.duplicate) archived = store_.Add(pending.record);
    info.archived = store_.Add(std::move(pending.record)) || archived;
    obs::Lineage::Global().RecordEmitted(info);
  }
  CommitFailures(step.failures);
}

void Platform::SkipStep(core::SimTime until) {
  const core::SimTime step_end =
      std::min(until, simulator_.Now() + options_.step);
  simulator_.AdvanceTo(step_end);
  route_change_cursor_ = simulator_.route_changes().size();
  // Touch every (vantage, server) route so the BGP route cache ends the
  // skipped step exactly as warm as a live step would leave it — the
  // netsim cache counters must match an uninterrupted run when the
  // subsequent live steps re-execute under verification.
  for (const VantageState& vantage : vantages_) {
    (void)simulator_.RouteBetween(vantage.config.pop, options_.server);
  }
}

Platform::StreamState Platform::CaptureStreamState() const {
  StreamState state;
  state.next_record_id = next_record_id_;
  state.route_change_cursor = route_change_cursor_;
  state.ewma_rtt.reserve(vantages_.size());
  for (const VantageState& vantage : vantages_) {
    state.ewma_rtt.push_back(vantage.ewma_rtt);
  }
  state.failures = failures_;
  return state;
}

void Platform::RestoreStreamState(const StreamState& state) {
  next_record_id_ = state.next_record_id;
  route_change_cursor_ = static_cast<std::size_t>(state.route_change_cursor);
  for (std::size_t i = 0;
       i < vantages_.size() && i < state.ewma_rtt.size(); ++i) {
    vantages_[i].ewma_rtt = state.ewma_rtt[i];
  }
  failures_ = state.failures;
}

void EmitStreamHeartbeat(std::uint64_t committed_steps,
                         std::uint64_t committed_records,
                         std::size_t live_queue_depth, std::size_t every) {
  SISYPHUS_METRIC_GAUGE("measure.stream.records_ingested",
                        static_cast<double>(committed_records));
  SISYPHUS_METRIC_GAUGE("measure.stream.journal_high_water",
                        static_cast<double>(committed_steps));
  SISYPHUS_METRIC_GAUGE("measure.stream.queue_depth", 0.0);
  if (every == 0 || committed_steps % every != 0) return;
  core::LogLine(core::LogLevel::kInfo, "stream heartbeat",
                {{"step", committed_steps},
                 {"records", committed_records},
                 {"queue_depth", static_cast<std::uint64_t>(live_queue_depth)}});
}

void DeclareStreamTelemetrySeries() {
  if (!obs::Timeline::enabled()) return;
  obs::Timeline& timeline = obs::Timeline::Global();
  timeline.DeclareCounter("measure.stream.records_ingested");
  timeline.DeclareCounter("measure.stream.journal_high_water");
  timeline.DeclareCounter("measure.stream.shed_overload");
  const obs::ChurnConfig churn;
  timeline.DeclareCounter("netsim.bgp.invalidated_destinations", &churn);
  timeline.DeclareCounter("netsim.bgp.retained_destinations");
  timeline.DeclareCounter("netsim.bgp.frontier_pops");
  timeline.DeclareCounter("netsim.bgp.route_cache_hits");
  timeline.DeclareCounter("netsim.bgp.route_cache_misses");
  timeline.DeclareCounter("netsim.bgp.tables_computed");
}

void EmitStepTelemetry(std::uint64_t committed_steps,
                       std::uint64_t committed_records,
                       std::size_t live_queue_depth, std::size_t every,
                       const StreamingCampaign* campaign,
                       bool ingest_sampled_elsewhere) {
  EmitStreamHeartbeat(committed_steps, committed_records, live_queue_depth,
                      every);
  if (!obs::Timeline::enabled()) return;
  obs::Timeline& timeline = obs::Timeline::Global();
  const obs::Registry& registry = obs::Registry::Global();
  timeline.SampleCounter(
      committed_steps,
      timeline.DeclareCounter("measure.stream.records_ingested"),
      committed_records);
  timeline.SampleCounter(
      committed_steps,
      timeline.DeclareCounter("measure.stream.journal_high_water"),
      committed_steps);
  timeline.SampleCounter(
      committed_steps,
      timeline.DeclareCounter("measure.stream.shed_overload"),
      registry.CounterValue("measure.stream.shed_overload"));
  // Route-churn detector: every step in which destinations were
  // invalidated is a route event (ScenarioZa's treatment flap included).
  const obs::ChurnConfig churn;
  timeline.SampleCounter(
      committed_steps,
      timeline.DeclareCounter("netsim.bgp.invalidated_destinations", &churn),
      registry.CounterValue("netsim.bgp.invalidated_destinations"));
  for (const char* name :
       {"netsim.bgp.retained_destinations", "netsim.bgp.frontier_pops",
        "netsim.bgp.route_cache_hits", "netsim.bgp.route_cache_misses",
        "netsim.bgp.tables_computed"}) {
    timeline.SampleCounter(committed_steps, timeline.DeclareCounter(name),
                           registry.CounterValue(name));
  }
  timeline.ClosePhase(committed_steps, obs::Timeline::Phase::kProduce);
  if (ingest_sampled_elsewhere) return;
  if (campaign != nullptr) {
    SampleTimelineIngest(committed_steps, *campaign);
  } else {
    timeline.ClosePhase(committed_steps, obs::Timeline::Phase::kIngest);
  }
}

void SampleTimelineIngest(std::uint64_t step,
                          const StreamingCampaign& campaign) {
  if (!obs::Timeline::enabled()) return;
  obs::Timeline& timeline = obs::Timeline::Global();
  const obs::LevelShiftConfig shift;
  campaign.panel_builder().VisitRunningMeans(
      [&](std::string_view unit, std::uint64_t count, double sum) {
        std::string name = "rtt.mean.";
        name.append(unit);
        const std::uint32_t id = timeline.DeclareRunningMean(name, &shift);
        timeline.SampleRunningMean(step, id, count, sum);
      });
  timeline.ClosePhase(step, obs::Timeline::Phase::kIngest);
}

void Platform::RunLoop(core::SimTime until, core::Rng& rng,
                       StreamingCampaign* streaming) {
  DeclareStreamTelemetrySeries();
  std::uint64_t steps = 0;
  std::uint64_t records = 0;
  while (simulator_.Now() < until) {
    StepOutput step = GenerateStep(until, rng);
    const std::uint64_t step_records = step.records.size();
    if (streaming != nullptr) {
      // Streaming commit: the whole step's merge-ordered batch goes to the
      // sink, whose per-shard fan-out does validation, store append,
      // lineage, and panel folds. Failures stay platform-side.
      streaming->IngestBatch(step.records);
      CommitFailures(step.failures);
    } else {
      CommitBatch(std::move(step));
    }
    ++steps;
    records += step_records;
    EmitStepTelemetry(steps, records, 0, options_.heartbeat_every_steps,
                      streaming, /*ingest_sampled_elsewhere=*/false);
  }
}

StreamingCampaign::StreamingCampaign(StoreValidationOptions validation,
                                     StreamingOptions options)
    : options_(options),
      store_(validation, options.shard_count),
      panel_(options.panel, options.shard_count) {}

void StreamingCampaign::IngestBatch(const std::vector<PendingRecord>& batch) {
  const std::size_t shards = store_.shard_count();
  // Serial pre-pass: compute every record's unit key once and group batch
  // indices by owning shard. The grouping is a pure function of the batch
  // contents, so each shard task sees a fixed record sequence no matter
  // how many lanes execute.
  std::vector<std::string> units(batch.size());
  std::vector<std::vector<std::uint32_t>> by_shard(shards);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    units[i] = batch[i].record.UnitKey();
    by_shard[store_.ShardOf(units[i])].push_back(
        static_cast<std::uint32_t>(i));
  }
  // Telemetry-silent: the ingest fan-out is an execution-strategy detail of
  // a path contracted to produce artifacts byte-identical to the batch
  // merge (which runs no region here); counting it would leak the strategy
  // into metrics.json. Task-side metric/lineage writes still replay.
  core::RegionTelemetrySilencer silencer;
  core::ParallelFor(shards, [&](std::size_t s) {
    IngestShard(s, batch, units, by_shard[s]);
  });
  ++batches_;
  ingested_ += batch.size();
}

void StreamingCampaign::IngestBatchSerial(
    const std::vector<PendingRecord>& batch) {
  const std::size_t shards = store_.shard_count();
  std::vector<std::string> units(batch.size());
  std::vector<std::vector<std::uint32_t>> by_shard(shards);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    units[i] = batch[i].record.UnitKey();
    by_shard[store_.ShardOf(units[i])].push_back(
        static_cast<std::uint32_t>(i));
  }
  // Same shard-index order the pool replays lineage buffers in, minus the
  // pool. Used by the pipelined consumer thread, which must not carve a
  // nested pool region of its own.
  for (std::size_t s = 0; s < shards; ++s) {
    IngestShard(s, batch, units, by_shard[s]);
  }
  ++batches_;
  ingested_ += batch.size();
}

void StreamingCampaign::IngestShard(std::size_t shard,
                                    const std::vector<PendingRecord>& batch,
                                    const std::vector<std::string>& units,
                                    const std::vector<std::uint32_t>& indices) {
  const bool lineage = obs::Lineage::enabled();
  for (std::uint32_t i : indices) {
    const PendingRecord& pending = batch[i];
    // Mirrors the batch merge in Platform::CommitBatch: duplicate copies
    // share id and content, one lineage verdict covers both appends,
    // and only archived copies reach the panel.
    bool archived_first = false;
    if (pending.duplicate) {
      archived_first = store_.Append(shard, pending.record);
    }
    const bool archived =
        store_.Append(shard, pending.record) || archived_first;
    if (lineage) {
      obs::LineageRecordInfo info;
      info.id = pending.record.id.value();
      info.vantage = pending.record.vantage_pop;
      info.intent = static_cast<std::uint8_t>(pending.record.intent);
      info.attempts = static_cast<std::uint8_t>(
          std::min<std::uint32_t>(pending.record.attempts, 255));
      info.fault_mask = pending.fault_mask;
      info.copies = pending.duplicate ? 2 : 1;
      info.archived = archived;
      obs::Lineage::Global().RecordEmitted(info);
    }
    if (archived) {
      if (pending.duplicate) {
        panel_.Observe(shard, units[i], pending.record.time,
                       pending.record.rtt_ms, pending.record.id.value());
      }
      panel_.Observe(shard, units[i], pending.record.time,
                     pending.record.rtt_ms, pending.record.id.value());
    }
  }
}

void StreamingCampaign::Save(core::binio::Writer& w) const {
  store_.Save(w);
  panel_.Save(w);
  w.PutU64(batches_);
  w.PutU64(ingested_);
}

bool StreamingCampaign::Load(core::binio::Reader& r) {
  if (!store_.Load(r)) return false;
  if (!panel_.Load(r)) return false;
  batches_ = r.GetU64();
  ingested_ = r.GetU64();
  return r.ok();
}

void Platform::LogCampaignSummary() const {
  std::vector<core::LogField> fields;
  fields.emplace_back("archived", store_.records().size());
  fields.emplace_back("quarantined", store_.quarantine().size());
  fields.emplace_back("failed_probes", failures_.size());
  fields.emplace_back("vantages", vantages_.size());
  for (const auto& [tag, count] : store_.QuarantineReasonCounts()) {
    fields.emplace_back("quarantine." + tag, count);
  }
  for (const auto& [reason, count] : FailureReasonCounts()) {
    fields.emplace_back("fail." + reason, count);
  }
  AppendHistogramQuantileFields(fields);
  core::LogLine(core::LogLevel::kInfo, "campaign complete", fields);
}

}  // namespace sisyphus::measure
