// Deterministic parallel execution (DESIGN.md §7).
//
// A dependency-free thread pool exposing ParallelFor / ParallelMap with a
// hard determinism contract:
//
//   * results land in a pre-sized vector indexed by task id;
//   * per-task randomness is derived via Rng::Fork(seed, task_id)
//     seed-splitting -- tasks never share mutable generator state;
//   * every reduction -- results, observer side-channels (metrics), and
//     exceptions -- happens on the calling thread in ascending task-index
//     order.
//
// Consequently the output of a parallel region is a pure function of its
// inputs, byte-identical regardless of thread count: SISYPHUS_THREADS=1
// must equal SISYPHUS_THREADS=N. Anything order-sensitive that a task wants
// to emit must flow either through its indexed result slot or through the
// TaskObserver side-channel, which is buffered per task and replayed in
// index order.
//
// Scheduling is a shared atomic task counter (no work stealing, no
// per-thread queues): tasks are claimed dynamically, so uneven task costs
// balance across lanes, while the index-ordered reduction keeps the result
// independent of which lane ran what.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sisyphus::core {

/// Hook interface for side-channel determinism (implemented by the obs
/// layer, which buffers metric writes per task and replays them in task
/// order). Core cannot depend on obs, so the observer is injected via
/// SetTaskObserver at static-init time. All methods must be safe to call
/// from multiple threads.
class TaskObserver {
 public:
  virtual ~TaskObserver() = default;

  /// Called on the calling thread before any task of a region runs.
  /// `task_count` is the number of tasks, `lanes` the number of execution
  /// lanes (worker threads + the participating caller).
  virtual void RegionBegin(std::size_t task_count, std::size_t lanes) = 0;

  /// Called on the executing thread immediately before task `task_index`.
  /// Returns an opaque per-task token (may be nullptr) handed back to
  /// TaskEnd and TaskMerge.
  virtual void* TaskBegin(std::size_t task_index) = 0;

  /// Called on the executing thread immediately after the task body (even
  /// if it threw).
  virtual void TaskEnd(void* token) = 0;

  /// Called on the calling thread, once per task in ascending task-index
  /// order, after all tasks finished. Must release the token.
  virtual void TaskMerge(void* token) = 0;

  /// Called on the calling thread after all merges.
  virtual void RegionEnd() = 0;
};

/// Installs the process-wide task observer (nullptr to clear). Not
/// synchronized: call during startup, before any parallel region runs.
void SetTaskObserver(TaskObserver* observer);
TaskObserver* GetTaskObserver();

/// RAII scope marking parallel regions started by this thread as
/// telemetry-silent. Some regions are internal to a data path whose output
/// artifacts are contracted to be byte-identical across execution
/// strategies (e.g. streaming ingest, which runs one region per batch where
/// the batch path runs none): counting such regions in the metrics registry
/// would leak the execution shape into metrics.json. Inside this scope the
/// observer still buffers and replays per-task side channels (metric writes
/// made *by* tasks, lineage events, trace spans, pool stats) -- only the
/// engine's own region/task counters are suppressed. Scopes nest.
class RegionTelemetrySilencer {
 public:
  RegionTelemetrySilencer();
  ~RegionTelemetrySilencer();
  RegionTelemetrySilencer(const RegionTelemetrySilencer&) = delete;
  RegionTelemetrySilencer& operator=(const RegionTelemetrySilencer&) = delete;

 private:
  bool previous_;
};

/// True while the calling thread is inside a RegionTelemetrySilencer scope.
/// Observers consult this from RegionBegin/RegionEnd (both run on the
/// region's calling thread, so the answer is stable across one region).
bool RegionTelemetrySilenced();

/// Fixed-size thread pool. `thread_count` counts execution lanes including
/// the calling thread, so ThreadPool(4) spawns 3 workers and ThreadPool(1)
/// spawns none (every region runs inline). thread_count = 0 means
/// DefaultThreadCount().
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes (worker threads + caller).
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs body(0..count-1) across the pool. Blocks until all tasks finish.
  /// The calling thread participates. Nested calls from inside a task run
  /// inline (deadlock guard). If one or more tasks throw, the exception of
  /// the lowest-indexed failing task is rethrown after all tasks finish and
  /// all observer tokens are merged.
  void ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

  /// Deterministic map: out[i] = fn(i), with out pre-sized to `count`.
  /// R must be default-constructible; wrap non-default-constructible
  /// results in std::optional at the call site.
  template <typename Fn>
  auto ParallelMap(std::size_t count, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    std::vector<R> out(count);
    ParallelFor(count, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Resolves the configured lane count: SISYPHUS_THREADS if set to a
  /// positive integer, else std::thread::hardware_concurrency() (min 1).
  static std::size_t DefaultThreadCount();

  /// Process-wide pool (lazily built with DefaultThreadCount()).
  static ThreadPool& Global();

  /// Rebuilds the global pool with `thread_count` lanes (0 = default).
  /// Not synchronized with concurrent users of Global(); call from the
  /// main thread between parallel regions (e.g. when parsing --threads).
  static void SetGlobalThreadCount(std::size_t thread_count);

 private:
  struct Region;
  void WorkerLoop();
  static void RunTasks(Region& region);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Region* region_ = nullptr;  // guarded by mu_
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Conveniences over ThreadPool::Global().
inline void ParallelFor(std::size_t count,
                        const std::function<void(std::size_t)>& body) {
  ThreadPool::Global().ParallelFor(count, body);
}

template <typename Fn>
auto ParallelMap(std::size_t count, Fn&& fn) {
  return ThreadPool::Global().ParallelMap(count, std::forward<Fn>(fn));
}

/// Lane count of the global pool.
std::size_t ParallelThreadCount();

}  // namespace sisyphus::core
