#include "core/sim_time.h"

#include <cstdio>

namespace sisyphus::core {

std::string SimTime::ToText() const {
  const std::int64_t day = DayIndex();
  std::int64_t within = minutes_ - day * 24 * 60;
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "d%lld %02lld:%02lld",
                static_cast<long long>(day),
                static_cast<long long>(within / 60),
                static_cast<long long>(within % 60));
  return buffer;
}

}  // namespace sisyphus::core
