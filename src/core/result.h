// Result<T>: value-or-Error return type for recoverable failures.
//
// A minimal std::expected-alike (we target GCC 12 / C++20, where
// std::expected is not yet available). The API intentionally mirrors the
// parts of std::expected we need so a future migration is mechanical.
#pragma once

#include <optional>
#include <utility>
#include <variant>

#include "core/error.h"

namespace sisyphus::core {

/// Holds either a T (success) or an Error (recoverable failure).
///
/// Usage:
///   Result<Dag> dag = ParseDag("A -> B");
///   if (!dag.ok()) return dag.error();
///   Use(dag.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from Error, so `return T{...}` and
  /// `return Error{...}` both work inside a Result-returning function.
  Result(T value) : storage_(std::move(value)) {}           // NOLINT
  Result(Error error) : storage_(std::move(error)) {}       // NOLINT

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  /// Precondition: ok().
  const T& value() const& {
    SISYPHUS_REQUIRE(ok(), "Result::value() on error: " + error().ToText());
    return std::get<T>(storage_);
  }
  T& value() & {
    SISYPHUS_REQUIRE(ok(), "Result::value() on error: " + error().ToText());
    return std::get<T>(storage_);
  }
  T&& value() && {
    SISYPHUS_REQUIRE(ok(), "Result::value() on error: " + error().ToText());
    return std::get<T>(std::move(storage_));
  }

  /// Precondition: !ok().
  const Error& error() const {
    SISYPHUS_REQUIRE(!ok(), "Result::error() on success");
    return std::get<Error>(storage_);
  }

  /// Returns the value or a fallback.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> analogue: success or Error.
class [[nodiscard]] Status {
 public:
  Status() = default;                                  // success
  Status(Error error) : error_(std::move(error)) {}    // NOLINT

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Precondition: !ok().
  const Error& error() const {
    SISYPHUS_REQUIRE(!ok(), "Status::error() on success");
    return *error_;
  }

  static Status Ok() { return Status{}; }

 private:
  std::optional<Error> error_;
};

}  // namespace sisyphus::core
