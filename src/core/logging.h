// Minimal leveled logger.
//
// The library itself logs nothing at Info by default; benches and examples
// raise the level for progress reporting. Not thread-safe by design — the
// simulator and estimators are single-threaded (DESIGN.md §5).
#pragma once

#include <sstream>
#include <string>

namespace sisyphus::core {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Writes one formatted line to stderr if `level` passes the global filter.
void LogLine(LogLevel level, const std::string& message);

namespace internal {
/// Stream-style one-shot log statement; emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { LogLine(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace sisyphus::core

#define SISYPHUS_LOG(level) \
  ::sisyphus::core::internal::LogMessage(::sisyphus::core::LogLevel::level)
