// Minimal leveled logger with structured key=value context fields.
//
// The library itself logs nothing at Info by default; benches and examples
// raise the level for progress reporting. The initial level honours the
// SISYPHUS_LOG_LEVEL environment variable (debug|info|warn|error|off), so
// benches and CI can raise verbosity without recompiling; SetLogLevel
// overrides it. Not thread-safe by design — the simulator and estimators
// are single-threaded (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace sisyphus::core {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive);
/// nullopt on anything else.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

/// Re-reads SISYPHUS_LOG_LEVEL and applies it; returns the parsed level or
/// nullopt when the variable is unset/invalid (level left unchanged).
/// Applied once automatically at startup; exposed for tests.
std::optional<LogLevel> InitLogLevelFromEnv();

/// One structured context field, rendered as key=value after the message.
/// Values containing spaces, '=' or '"' are double-quoted.
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string_view k, std::string_view v) : key(k), value(v) {}
  LogField(std::string_view k, const char* v) : key(k), value(v) {}
  LogField(std::string_view k, double v);
  LogField(std::string_view k, std::int64_t v)
      : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, std::uint64_t v)
      : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, int v) : key(k), value(std::to_string(v)) {}
  LogField(std::string_view k, bool v) : key(k), value(v ? "true" : "false") {}

  /// "key=value", quoting the value when it contains spaces/'='/'"'.
  std::string Render() const;
};

/// Writes one formatted line to stderr if `level` passes the global filter.
void LogLine(LogLevel level, const std::string& message);

/// Structured variant: "[WARN] message key=value key2=value2".
void LogLine(LogLevel level, const std::string& message,
             std::initializer_list<LogField> fields);

/// Same, for field sets assembled at runtime (e.g. per-reason counts).
void LogLine(LogLevel level, const std::string& message,
             const std::vector<LogField>& fields);

namespace internal {
/// Stream-style one-shot log statement; emits on destruction:
///   (SISYPHUS_LOG(kWarn) << "panel unit dropped")
///       .With("unit", name).With("missing", fraction);
/// Structured fields always render after the free-text message, however
/// the calls interleave.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /// Appends one structured key=value field (chainable).
  template <typename T>
  LogMessage& With(std::string_view key, const T& value) {
    fields_ << ' ' << LogField(key, value).Render();
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
  std::ostringstream fields_;
};
}  // namespace internal

}  // namespace sisyphus::core

#define SISYPHUS_LOG(level) \
  ::sisyphus::core::internal::LogMessage(::sisyphus::core::LogLevel::level)
