#include "core/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/error.h"

namespace sisyphus::core::json {

using core::Error;
using core::ErrorCode;
using core::Result;

std::string Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);  // UTF-8 passes through untouched
        }
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "null";
  // Shortest precision that round-trips; deterministic on one platform.
  char buffer[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

void Writer::NewlineIndent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void Writer::BeforeValue() {
  SISYPHUS_REQUIRE(!done_, "json::Writer: write after document finished");
  if (stack_.empty()) return;
  if (stack_.back() == Scope::kObject) {
    SISYPHUS_REQUIRE(key_pending_, "json::Writer: object value without Key");
    key_pending_ = false;
    return;
  }
  if (scope_has_items_.back()) out_ += ',';
  scope_has_items_.back() = true;
  NewlineIndent();
}

void Writer::Key(std::string_view key) {
  SISYPHUS_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject,
                   "json::Writer: Key outside an object");
  SISYPHUS_REQUIRE(!key_pending_, "json::Writer: Key after Key");
  if (scope_has_items_.back()) out_ += ',';
  scope_has_items_.back() = true;
  NewlineIndent();
  out_ += '"';
  out_ += Escape(key);
  out_ += indent_ > 0 ? "\": " : "\":";
  key_pending_ = true;
}

void Writer::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  scope_has_items_.push_back(false);
}

void Writer::EndObject() {
  SISYPHUS_REQUIRE(!stack_.empty() && stack_.back() == Scope::kObject,
                   "json::Writer: EndObject without BeginObject");
  SISYPHUS_REQUIRE(!key_pending_, "json::Writer: EndObject after dangling Key");
  const bool had_items = scope_has_items_.back();
  stack_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) NewlineIndent();
  out_ += '}';
  if (stack_.empty()) done_ = true;
}

void Writer::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  scope_has_items_.push_back(false);
}

void Writer::EndArray() {
  SISYPHUS_REQUIRE(!stack_.empty() && stack_.back() == Scope::kArray,
                   "json::Writer: EndArray without BeginArray");
  const bool had_items = scope_has_items_.back();
  stack_.pop_back();
  scope_has_items_.pop_back();
  if (had_items) NewlineIndent();
  out_ += ']';
  if (stack_.empty()) done_ = true;
}

void Writer::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  if (stack_.empty()) done_ = true;
}

void Writer::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  if (stack_.empty()) done_ = true;
}

void Writer::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  if (stack_.empty()) done_ = true;
}

void Writer::Double(double value) {
  BeforeValue();
  out_ += FormatDouble(value);
  if (stack_.empty()) done_ = true;
}

void Writer::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  if (stack_.empty()) done_ = true;
}

void Writer::Null() {
  BeforeValue();
  out_ += "null";
  if (stack_.empty()) done_ = true;
}

std::string Writer::str() && {
  SISYPHUS_REQUIRE(stack_.empty(), "json::Writer: unclosed scopes");
  return std::move(out_);
}

const Value* Value::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

/// Minimal recursive-descent parser; positions reported in error text.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    auto value = ParseValue();
    if (!value.ok()) return value;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return value;
  }

 private:
  Error Fail(const std::string& what) const {
    return Error(ErrorCode::kInvalidArgument,
                 "json: " + what + " at byte " + std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    if (++depth_ > 128) return Fail("nesting too deep");
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't':
      case 'f': return ParseBool();
      case 'n': return ParseNull();
      default: return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Value out;
    out.kind = Value::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return out;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      auto key = ParseString();
      if (!key.ok()) return key.error();
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      auto value = ParseValue();
      if (!value.ok()) return value;
      out.object.emplace_back(std::move(key).value().string,
                              std::move(value).value());
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Fail("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Value out;
    out.kind = Value::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return out;
    while (true) {
      auto value = ParseValue();
      if (!value.ok()) return value;
      out.array.push_back(std::move(value).value());
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Fail("expected ',' or ']'");
    }
  }

  /// Consumes 4 hex digits at pos_ into one UTF-16 code unit.
  bool ParseHexUnit(unsigned* code) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned out = 0;
    for (int i = 0; i < 4; ++i) {
      const char hex = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (hex >= '0' && hex <= '9') out |= static_cast<unsigned>(hex - '0');
      else if (hex >= 'a' && hex <= 'f') out |= static_cast<unsigned>(hex - 'a' + 10);
      else if (hex >= 'A' && hex <= 'F') out |= static_cast<unsigned>(hex - 'A' + 10);
      else return false;
    }
    pos_ += 4;
    *code = out;
    return true;
  }

  Result<Value> ParseString() {
    ++pos_;  // '"'
    Value out;
    out.kind = Value::Kind::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Fail("truncated escape");
        const char escape = text_[pos_ + 1];
        pos_ += 2;
        switch (escape) {
          case '"': out.string += '"'; break;
          case '\\': out.string += '\\'; break;
          case '/': out.string += '/'; break;
          case 'b': out.string += '\b'; break;
          case 'f': out.string += '\f'; break;
          case 'n': out.string += '\n'; break;
          case 'r': out.string += '\r'; break;
          case 't': out.string += '\t'; break;
          case 'u': {
            unsigned code = 0;
            if (!ParseHexUnit(&code)) return Fail("bad \\u escape");
            // Supplementary-plane code points arrive as a UTF-16 surrogate
            // pair: combine high + low into one code point; either half on
            // its own is not a valid string (RFC 8259 §7 / Unicode).
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Fail("unpaired high surrogate in \\u escape");
              }
              pos_ += 2;
              unsigned low = 0;
              if (!ParseHexUnit(&low)) return Fail("bad \\u escape");
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail("unpaired high surrogate in \\u escape");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return Fail("unpaired low surrogate in \\u escape");
            }
            // UTF-8 encode (1–4 bytes).
            if (code < 0x80) {
              out.string += static_cast<char>(code);
            } else if (code < 0x800) {
              out.string += static_cast<char>(0xC0 | (code >> 6));
              out.string += static_cast<char>(0x80 | (code & 0x3F));
            } else if (code < 0x10000) {
              out.string += static_cast<char>(0xE0 | (code >> 12));
              out.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out.string += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out.string += static_cast<char>(0xF0 | (code >> 18));
              out.string += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
              out.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out.string += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return Fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      out.string += c;
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Result<Value> ParseBool() {
    Value out;
    out.kind = Value::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out.boolean = true;
      pos_ += 4;
      return out;
    }
    if (text_.substr(pos_, 5) == "false") {
      out.boolean = false;
      pos_ += 5;
      return out;
    }
    return Fail("bad literal");
  }

  Result<Value> ParseNull() {
    if (text_.substr(pos_, 4) != "null") return Fail("bad literal");
    pos_ += 4;
    return Value{};
  }

  Result<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start) return Fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Fail("malformed number");
    }
    Value out;
    out.kind = Value::Kind::kNumber;
    out.number = value;
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace sisyphus::core::json
