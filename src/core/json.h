// Dependency-free JSON: a streaming writer for the observability layer
// (metrics snapshots, run manifests, Chrome trace streams) and a minimal
// recursive-descent parser used by tests and the obscheck validator.
//
// The writer is deterministic: identical call sequences produce identical
// bytes (doubles are formatted with a fixed shortest-round-trip recipe,
// non-finite values become null), which is what lets two runs with the
// same seed emit byte-identical metrics.json files.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"

namespace sisyphus::core::json {

/// JSON-escapes `text` (quotes, backslashes, control characters). Does not
/// add surrounding quotes.
std::string Escape(std::string_view text);

/// Canonical number formatting: shortest representation that round-trips a
/// double ("%.17g" fallback), "null" for NaN/Inf. Deterministic across
/// runs on one platform.
std::string FormatDouble(double value);

/// Streaming JSON writer with explicit Begin/End scopes. Misuse (a value
/// where a key is required, unbalanced End) aborts via SISYPHUS_REQUIRE —
/// writer bugs are programming errors, not recoverable conditions.
///
///   Writer w(/*indent=*/2);
///   w.BeginObject();
///   w.Key("counters"); w.BeginArray(); w.Int(1); w.EndArray();
///   w.EndObject();
///   std::string text = std::move(w).str();
class Writer {
 public:
  /// `indent` spaces per nesting level; 0 = compact single-line output.
  explicit Writer(int indent = 0) : indent_(indent) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Writes an object key; must be inside an object, before a value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(std::int64_t value);
  void UInt(std::uint64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Finished document. Requires all scopes closed.
  std::string str() &&;

 private:
  enum class Scope { kObject, kArray };
  void BeforeValue();
  void NewlineIndent();

  int indent_ = 0;
  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> scope_has_items_;
  bool key_pending_ = false;
  bool done_ = false;
};

/// Parsed JSON value (tree form). Numbers are kept as doubles — adequate
/// for validating manifests and metric snapshots.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Insertion-ordered object members.
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// is an error). kInvalidArgument with a byte offset on malformed input.
Result<Value> Parse(std::string_view text);

}  // namespace sisyphus::core::json
