#include "core/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace sisyphus::core {
namespace {

TaskObserver* g_observer = nullptr;

// Set while a thread is executing tasks of some region (worker lanes and
// the participating caller alike). Nested ParallelFor calls from inside a
// task run inline -- blocking a lane on a nested region could deadlock the
// pool, and inline execution preserves the determinism contract trivially.
thread_local bool t_in_parallel_task = false;

thread_local bool t_region_telemetry_silenced = false;

}  // namespace

void SetTaskObserver(TaskObserver* observer) { g_observer = observer; }
TaskObserver* GetTaskObserver() { return g_observer; }

RegionTelemetrySilencer::RegionTelemetrySilencer()
    : previous_(t_region_telemetry_silenced) {
  t_region_telemetry_silenced = true;
}

RegionTelemetrySilencer::~RegionTelemetrySilencer() {
  t_region_telemetry_silenced = previous_;
}

bool RegionTelemetrySilenced() { return t_region_telemetry_silenced; }

struct ThreadPool::Region {
  const std::function<void(std::size_t)>* body = nullptr;
  TaskObserver* observer = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::size_t entered = 0;  // workers that joined this region (guarded by mu_)
  std::size_t exited = 0;   // workers that left this region (guarded by mu_)
  std::vector<std::exception_ptr> errors;
  std::vector<void*> tokens;
};

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) thread_count = DefaultThreadCount();
  workers_.reserve(thread_count - 1);
  for (std::size_t i = 0; i + 1 < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("SISYPHUS_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void ThreadPool::RunTasks(Region& region) {
  const bool was_in_task = t_in_parallel_task;
  t_in_parallel_task = true;
  for (;;) {
    const std::size_t i = region.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= region.count) break;
    void* token =
        region.observer ? region.observer->TaskBegin(i) : nullptr;
    try {
      (*region.body)(i);
    } catch (...) {
      region.errors[i] = std::current_exception();
    }
    if (region.observer) {
      region.observer->TaskEnd(token);
      region.tokens[i] = token;
    }
    region.completed.fetch_add(1, std::memory_order_release);
  }
  t_in_parallel_task = was_in_task;
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Region* region = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (region_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      region = region_;
      ++region->entered;
    }
    RunTasks(*region);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++region->exited;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  TaskObserver* observer = g_observer;

  // Inline path: single-lane pools, single tasks, and nested calls from
  // inside a running task. Serial execution in index order satisfies the
  // determinism contract by construction; the first exception propagates
  // naturally and is necessarily the lowest-indexed one.
  if (workers_.empty() || count == 1 || t_in_parallel_task) {
    if (observer) observer->RegionBegin(count, 1);
    struct RegionEndGuard {
      TaskObserver* observer;
      ~RegionEndGuard() {
        if (observer) observer->RegionEnd();
      }
    } guard{observer};
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  if (observer) observer->RegionBegin(count, thread_count());
  Region region;
  region.body = &body;
  region.observer = observer;
  region.count = count;
  region.errors.resize(count);
  region.tokens.resize(count, nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_ = &region;
    ++generation_;
  }
  work_cv_.notify_all();
  RunTasks(region);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return region.exited == region.entered &&
             region.completed.load(std::memory_order_acquire) == count;
    });
    // Clear under the same critical section: workers only pick up a region
    // while region_ is set, so once entered == exited no lane can still
    // touch this stack frame.
    region_ = nullptr;
  }

  // Deterministic reduction of side channels: ascending task-index order on
  // the calling thread.
  if (observer) {
    for (std::size_t i = 0; i < count; ++i) observer->TaskMerge(region.tokens[i]);
    observer->RegionEnd();
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (region.errors[i]) std::rethrow_exception(region.errors[i]);
  }
}

namespace {
std::mutex g_global_pool_mu;
std::unique_ptr<ThreadPool> g_global_pool;
}  // namespace

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  if (!g_global_pool) g_global_pool = std::make_unique<ThreadPool>();
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreadCount(std::size_t thread_count) {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  g_global_pool.reset();  // join old workers before spawning the new pool
  g_global_pool = std::make_unique<ThreadPool>(thread_count);
}

std::size_t ParallelThreadCount() { return ThreadPool::Global().thread_count(); }

}  // namespace sisyphus::core
