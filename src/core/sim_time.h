// Simulation time model.
//
// Experiments operate on an hourly panel over a span of days (the paper's
// case study aggregates M-Lab tests into per-period medians). SimTime is a
// count of simulated *minutes* since the scenario epoch; helpers expose the
// hour-of-day (for diurnal load) and day index (for panel bucketing).
#pragma once

#include <cstdint>
#include <string>

namespace sisyphus::core {

/// A point in simulated time, minute resolution.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t minutes) : minutes_(minutes) {}

  static constexpr SimTime FromHours(double hours) {
    return SimTime(static_cast<std::int64_t>(hours * 60.0));
  }
  static constexpr SimTime FromDays(double days) {
    return SimTime(static_cast<std::int64_t>(days * 24.0 * 60.0));
  }

  constexpr std::int64_t minutes() const { return minutes_; }
  constexpr double hours() const { return static_cast<double>(minutes_) / 60.0; }
  constexpr double days() const { return hours() / 24.0; }

  /// Hour-of-day in [0, 24); drives diurnal load curves.
  constexpr double HourOfDay() const {
    std::int64_t m = minutes_ % (24 * 60);
    if (m < 0) m += 24 * 60;
    return static_cast<double>(m) / 60.0;
  }

  /// Day index since epoch (floor).
  constexpr std::int64_t DayIndex() const {
    std::int64_t d = minutes_ / (24 * 60);
    if (minutes_ < 0 && minutes_ % (24 * 60) != 0) --d;
    return d;
  }

  /// "d12 06:30" — compact human-readable form for logs.
  std::string ToText() const;

  friend constexpr bool operator==(SimTime a, SimTime b) {
    return a.minutes_ == b.minutes_;
  }
  friend constexpr bool operator!=(SimTime a, SimTime b) {
    return a.minutes_ != b.minutes_;
  }
  friend constexpr bool operator<(SimTime a, SimTime b) {
    return a.minutes_ < b.minutes_;
  }
  friend constexpr bool operator<=(SimTime a, SimTime b) {
    return a.minutes_ <= b.minutes_;
  }
  friend constexpr bool operator>(SimTime a, SimTime b) { return b < a; }
  friend constexpr bool operator>=(SimTime a, SimTime b) { return b <= a; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.minutes_ + b.minutes_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.minutes_ - b.minutes_);
  }

 private:
  std::int64_t minutes_ = 0;
};

}  // namespace sisyphus::core
