// Deterministic random number generation.
//
// Every stochastic component in sisyphus draws from an explicitly seeded
// Rng so that experiments are reproducible bit-for-bit (DESIGN.md §5).
// The generator is xoshiro256++ (Blackman & Vigna), seeded via SplitMix64 —
// fast, high quality, and with a tiny, fully specified state so results are
// stable across platforms (unlike std::mt19937 + std::*_distribution, whose
// distributions are implementation-defined).
#pragma once

#include <array>
#include <cstdint>

namespace sisyphus::core {

/// xoshiro256++ PRNG with SplitMix64 seeding and portable distribution
/// helpers. Copyable: copying forks the stream (both copies produce the
/// same subsequent values), which is occasionally useful in tests; prefer
/// Split() for independent substreams.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5150f3155u);

  /// UniformRandomBitGenerator interface.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  std::uint64_t operator()() { return Next(); }

  /// Next raw 64-bit output.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Precondition: lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Marsaglia polar method (portable, no std::
  /// distribution dependence).
  double Gaussian();

  /// Normal with given mean and standard deviation (sd >= 0).
  double Gaussian(double mean, double sd);

  /// Exponential with given rate (rate > 0).
  double Exponential(double rate);

  /// Pareto (Lomax-free classic form): xm * U^{-1/alpha}. alpha > 0, xm > 0.
  /// Heavy-tailed; used for jitter/flow-size modeling.
  double Pareto(double xm, double alpha);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Poisson draw (Knuth for small mean, normal approximation for mean>64).
  std::uint32_t Poisson(double mean);

  /// Forks a statistically independent generator. The child is seeded from
  /// this stream's output, so a parent seed determines the whole tree.
  Rng Split();

  /// Seed-split: derives the `stream`-th independent generator of `seed`
  /// WITHOUT consuming any parent state. This is the parallel-execution
  /// primitive (DESIGN.md §7): task i of a fan-out draws from
  /// Fork(region_seed, i), so results are a pure function of (seed, i) and
  /// byte-identical regardless of how tasks are scheduled across threads.
  static Rng Fork(std::uint64_t seed, std::uint64_t stream);

  /// Complete serializable generator state, including the Marsaglia
  /// cached deviate — restoring mid-pair must not skip or repeat a draw
  /// (DESIGN.md §11: resumed runs replay the exact stream).
  struct State {
    std::array<std::uint64_t, 4> s{};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };

  State SaveState() const;
  void RestoreState(const State& state);

 private:
  std::array<std::uint64_t, 4> state_{};
  // Marsaglia polar method caches the second deviate.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace sisyphus::core
