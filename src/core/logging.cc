#include "core/logging.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace sisyphus::core {
namespace {

LogLevel g_level = LogLevel::kWarn;

// Startup hook: honour SISYPHUS_LOG_LEVEL before main() runs.
[[maybe_unused]] const bool g_env_level_applied =
    (InitLogLevelFromEnv(), true);

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

std::optional<LogLevel> InitLogLevelFromEnv() {
  const char* value = std::getenv("SISYPHUS_LOG_LEVEL");
  if (value == nullptr) return std::nullopt;
  const auto level = ParseLogLevel(value);
  if (level.has_value()) {
    g_level = *level;
  } else {
    std::fprintf(stderr,
                 "[WARN] SISYPHUS_LOG_LEVEL: unknown level '%s' "
                 "(expected debug|info|warn|error|off)\n",
                 value);
  }
  return level;
}

LogField::LogField(std::string_view k, double v) : key(k) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%g", v);
  value = buffer;
}

std::string LogField::Render() const {
  const bool needs_quotes =
      value.find_first_of(" =\"") != std::string::npos || value.empty();
  if (!needs_quotes) return key + "=" + value;
  std::string quoted = key + "=\"";
  for (char c : value) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void LogLine(LogLevel level, const std::string& message) {
  if (level < g_level || g_level == LogLevel::kOff) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

namespace {

void LogLineWithFields(LogLevel level, const std::string& message,
                       const LogField* begin, const LogField* end) {
  if (level < g_level || g_level == LogLevel::kOff) return;
  std::string line = message;
  for (const LogField* field = begin; field != end; ++field) {
    line += ' ';
    line += field->Render();
  }
  LogLine(level, line);
}

}  // namespace

void LogLine(LogLevel level, const std::string& message,
             std::initializer_list<LogField> fields) {
  LogLineWithFields(level, message, fields.begin(), fields.end());
}

void LogLine(LogLevel level, const std::string& message,
             const std::vector<LogField>& fields) {
  LogLineWithFields(level, message, fields.data(),
                    fields.data() + fields.size());
}

namespace internal {

LogMessage::~LogMessage() {
  LogLine(level_, stream_.str() + fields_.str());
}

}  // namespace internal

}  // namespace sisyphus::core
