// FNV-1a hashing for provenance fingerprints (run manifests hash the
// scenario options and fault plan so a reader can tell two runs apart
// without diffing configs). Not cryptographic — collision resistance is
// not a requirement here, stability across runs and platforms is.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace sisyphus::core {

/// 64-bit FNV-1a over bytes. Stable across platforms and runs.
constexpr std::uint64_t Fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

/// Hash rendered as fixed-width lowercase hex ("a1b2...", 16 chars).
inline std::string Fnv1a64Hex(std::string_view bytes) {
  char buffer[20];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(bytes)));
  return buffer;
}

}  // namespace sisyphus::core
