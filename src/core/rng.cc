#include "core/rng.h"

#include <cmath>

#include "core/error.h"

namespace sisyphus::core {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  SISYPHUS_REQUIRE(lo <= hi, "Uniform: lo > hi");
  return lo + (hi - lo) * NextDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  SISYPHUS_REQUIRE(lo <= hi, "UniformInt: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double sd) {
  SISYPHUS_REQUIRE(sd >= 0.0, "Gaussian: negative sd");
  return mean + sd * Gaussian();
}

double Rng::Exponential(double rate) {
  SISYPHUS_REQUIRE(rate > 0.0, "Exponential: rate must be positive");
  // 1 - U in (0,1] so log never sees 0.
  return -std::log(1.0 - NextDouble()) / rate;
}

double Rng::Pareto(double xm, double alpha) {
  SISYPHUS_REQUIRE(xm > 0.0 && alpha > 0.0, "Pareto: xm, alpha must be > 0");
  return xm / std::pow(1.0 - NextDouble(), 1.0 / alpha);
}

bool Rng::Bernoulli(double p) {
  SISYPHUS_REQUIRE(p >= 0.0 && p <= 1.0, "Bernoulli: p outside [0,1]");
  return NextDouble() < p;
}

std::uint32_t Rng::Poisson(double mean) {
  SISYPHUS_REQUIRE(mean >= 0.0, "Poisson: negative mean");
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // traffic-arrival use cases in netsim.
    const double draw = Gaussian(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0u : static_cast<std::uint32_t>(draw + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = NextDouble();
  std::uint32_t count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

Rng Rng::Split() { return Rng(Next()); }

Rng::State Rng::SaveState() const {
  State state;
  state.s = state_;
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::RestoreState(const State& state) {
  state_ = state.s;
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

Rng Rng::Fork(std::uint64_t seed, std::uint64_t stream) {
  // Two SplitMix64 rounds over (seed, stream) decorrelate neighbouring
  // stream ids; the Rng constructor then expands the result to 256 bits.
  std::uint64_t x = seed;
  std::uint64_t mixed = SplitMix64(x);
  x = mixed ^ (stream * 0x9e3779b97f4a7c15ull + 0x7f4a7c15u);
  return Rng(SplitMix64(x));
}

}  // namespace sisyphus::core
