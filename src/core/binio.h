// Little-endian binary serialization for durable state (DESIGN.md §11).
//
// The durable subsystem persists journal frames and snapshots as flat
// byte streams. The format must be byte-stable across runs and thread
// counts (snapshots are compared against re-executed state during
// recovery verification), so this is a fixed little-endian wire format
// with no padding, no varints, and doubles bit-cast through u64 — the
// same value always encodes to the same bytes.
//
// Writer appends primitives to an in-memory buffer; Reader consumes the
// same encoding with a *sticky* failure flag: the first truncated or
// out-of-bounds read flips ok() to false and every subsequent read
// returns a zero value, so callers can decode a whole struct and check
// ok() once at the end instead of after every field.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace sisyphus::core::binio {

/// Appends fixed-width little-endian primitives to a byte buffer.
class Writer {
 public:
  void PutU8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void PutU32(std::uint32_t v) { PutLittleEndian(v, 4); }

  void PutU64(std::uint64_t v) { PutLittleEndian(v, 8); }

  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutDouble(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  /// Length-prefixed (u64) raw bytes.
  void PutString(std::string_view s) {
    PutU64(s.size());
    buffer_.append(s.data(), s.size());
  }

  const std::string& buffer() const { return buffer_; }
  std::string Take() && { return std::move(buffer_); }

 private:
  void PutLittleEndian(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buffer_;
};

/// Decodes a Writer-produced byte stream. Reads past the end (or a
/// length prefix larger than the remaining bytes) set a sticky failure
/// flag and yield zero values; check ok() after decoding.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool ok() const { return ok_; }

  /// Bytes not yet consumed (0 when failed).
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

  std::uint8_t GetU8() { return static_cast<std::uint8_t>(GetLittleEndian(1)); }

  std::uint32_t GetU32() {
    return static_cast<std::uint32_t>(GetLittleEndian(4));
  }

  std::uint64_t GetU64() { return GetLittleEndian(8); }

  std::int64_t GetI64() { return static_cast<std::int64_t>(GetU64()); }

  bool GetBool() { return GetU8() != 0; }

  double GetDouble() {
    const std::uint64_t bits = GetU64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string GetString() {
    const std::uint64_t length = GetU64();
    if (!ok_ || length > data_.size() - pos_) {
      ok_ = false;
      return std::string();
    }
    std::string out(data_.substr(pos_, static_cast<std::size_t>(length)));
    pos_ += static_cast<std::size_t>(length);
    return out;
  }

 private:
  std::uint64_t GetLittleEndian(int bytes) {
    if (!ok_ || static_cast<std::size_t>(bytes) > data_.size() - pos_) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += static_cast<std::size_t>(bytes);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Convenience helpers for homogeneous vectors.
inline void PutDoubleVector(Writer& w, const std::vector<double>& v) {
  w.PutU64(v.size());
  for (double x : v) w.PutDouble(x);
}

inline std::vector<double> GetDoubleVector(Reader& r) {
  const std::uint64_t n = r.GetU64();
  std::vector<double> out;
  if (!r.ok() || n > r.remaining() / 8) return out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.GetDouble());
  return out;
}

inline void PutU64Vector(Writer& w, const std::vector<std::uint64_t>& v) {
  w.PutU64(v.size());
  for (std::uint64_t x : v) w.PutU64(x);
}

inline std::vector<std::uint64_t> GetU64Vector(Reader& r) {
  const std::uint64_t n = r.GetU64();
  std::vector<std::uint64_t> out;
  if (!r.ok() || n > r.remaining() / 8) return out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.GetU64());
  return out;
}

}  // namespace sisyphus::core::binio
