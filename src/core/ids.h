// Strong ID types shared across the library.
//
// Raw integers invite mixing an AS number with a link index. Each domain
// identifier gets its own tag type; conversions are explicit.
#pragma once

#include <cstdint>
#include <functional>

namespace sisyphus::core {

/// CRTP-free strongly-typed integral ID. Tag disambiguates unrelated IDs.
template <typename Tag, typename Underlying = std::uint32_t>
class StrongId {
 public:
  using underlying_type = Underlying;

  StrongId() = default;
  constexpr explicit StrongId(Underlying value) : value_(value) {}

  constexpr Underlying value() const { return value_; }

  friend constexpr bool operator==(StrongId a, StrongId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(StrongId a, StrongId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(StrongId a, StrongId b) {
    return a.value_ < b.value_;
  }

 private:
  Underlying value_ = 0;
};

struct AsnTag {};
struct LinkTag {};
struct IxpTag {};
struct CityTag {};
struct NodeTag {};
struct VantagePointTag {};
struct MeasurementTag {};

/// Autonomous System Number, e.g. Asn{3741}.
using Asn = StrongId<AsnTag>;
/// Index of a link in a Topology.
using LinkId = StrongId<LinkTag>;
/// Index of an IXP in a Topology.
using IxpId = StrongId<IxpTag>;
/// Index of a City in the geography registry.
using CityId = StrongId<CityTag>;
/// Index of a node (variable) in a causal DAG.
using NodeId = StrongId<NodeTag>;
/// Index of a vantage point on the measurement platform.
using VantagePointId = StrongId<VantagePointTag>;
/// Sequence number of a measurement record.
using MeasurementId = StrongId<MeasurementTag, std::uint64_t>;

}  // namespace sisyphus::core

namespace std {
template <typename Tag, typename U>
struct hash<sisyphus::core::StrongId<Tag, U>> {
  size_t operator()(sisyphus::core::StrongId<Tag, U> id) const noexcept {
    return std::hash<U>{}(id.value());
  }
};
}  // namespace std
