// Error type used across the sisyphus library for recoverable failures.
//
// Design note (see DESIGN.md §5): following the C++ Core Guidelines we use
// exceptions only for programming errors (precondition violations, which are
// reported via SISYPHUS_REQUIRE -> std::logic_error). Everything a caller can
// reasonably be expected to handle — malformed DSL input, singular matrices,
// non-identifiable queries, missing panel units — is reported through
// Result<T> (see result.h) carrying one of these Error values.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>

namespace sisyphus::core {

/// Coarse classification of a recoverable failure.
enum class ErrorCode {
  kInvalidArgument,   ///< input violates documented constraints
  kParseError,        ///< malformed textual input (e.g. DAG DSL)
  kNotFound,          ///< a named entity does not exist
  kNumericalFailure,  ///< an algorithm failed to converge / matrix singular
  kNotIdentifiable,   ///< a causal query cannot be identified from the model
  kPrecondition,      ///< a method's stated precondition does not hold
  kCapacity,          ///< a size/limit was exceeded
};

/// Human-readable name of an ErrorCode (stable, for logs and tests).
constexpr const char* ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kNumericalFailure: return "numerical_failure";
    case ErrorCode::kNotIdentifiable: return "not_identifiable";
    case ErrorCode::kPrecondition: return "precondition";
    case ErrorCode::kCapacity: return "capacity";
  }
  return "unknown";
}

/// A recoverable failure: a code plus a context message.
class Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "parse_error: unexpected token ';'"
  std::string ToText() const {
    return std::string(ToString(code_)) + ": " + message_;
  }

  friend bool operator==(const Error& a, const Error& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

}  // namespace sisyphus::core

/// Precondition check for programming errors. Unlike Result-returning
/// validation this is for bugs in the *caller's code*, so it throws.
#define SISYPHUS_REQUIRE(cond, msg)                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw std::logic_error(std::string("precondition failed: ") + msg); \
    }                                                                     \
  } while (0)
