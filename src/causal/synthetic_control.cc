#include "causal/synthetic_control.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/error.h"
#include "stats/descriptive.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

core::Status SyntheticControlInput::Validate() const {
  if (donors.rows() != treated.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "SyntheticControlInput: donor periods (" +
                     std::to_string(donors.rows()) + ") != treated periods (" +
                     std::to_string(treated.size()) + ")");
  }
  if (donors.cols() == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "SyntheticControlInput: empty donor pool");
  }
  if (pre_periods < 2 || pre_periods >= treated.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "SyntheticControlInput: need 2 <= pre_periods < periods");
  }
  if (!donor_names.empty() && donor_names.size() != donors.cols()) {
    return Error(ErrorCode::kInvalidArgument,
                 "SyntheticControlInput: donor_names size mismatch");
  }
  return core::Status::Ok();
}

std::vector<std::string> SyntheticControlFit::ActiveDonors(
    double threshold) const {
  std::vector<std::string> out;
  char buffer[128];
  for (std::size_t j = 0; j < weights.size(); ++j) {
    if (std::abs(weights[j]) <= threshold) continue;
    const std::string name =
        j < donor_names.size() ? donor_names[j] : "donor" + std::to_string(j);
    std::snprintf(buffer, sizeof(buffer), "%s:%.3f", name.c_str(), weights[j]);
    out.emplace_back(buffer);
  }
  return out;
}

SyntheticControlFit DiagnoseWeights(const SyntheticControlInput& input,
                                    stats::Vector weights) {
  SISYPHUS_REQUIRE(weights.size() == input.donors.cols(),
                   "DiagnoseWeights: weight count != donor count");
  SyntheticControlFit fit;
  fit.weights = std::move(weights);
  fit.donor_names = input.donor_names;
  const std::size_t periods = input.treated.size();
  fit.synthetic = input.donors.Apply(fit.weights);

  std::span<const double> observed(input.treated);
  std::span<const double> synthetic(fit.synthetic);
  fit.rmse_pre = stats::Rmse(observed.subspan(0, input.pre_periods),
                             synthetic.subspan(0, input.pre_periods));
  fit.rmse_post = stats::Rmse(observed.subspan(input.pre_periods),
                              synthetic.subspan(input.pre_periods));
  // Guard the ratio against a (near-)perfect pre fit.
  const double floor = 1e-9;
  fit.rmse_ratio = fit.rmse_post / std::max(fit.rmse_pre, floor);

  fit.post_effects.resize(periods - input.pre_periods);
  double sum = 0.0;
  for (std::size_t t = input.pre_periods; t < periods; ++t) {
    const double effect = input.treated[t] - fit.synthetic[t];
    fit.post_effects[t - input.pre_periods] = effect;
    sum += effect;
  }
  fit.average_effect = sum / static_cast<double>(fit.post_effects.size());
  return fit;
}

Result<SyntheticControlFit> FitSyntheticControl(
    const SyntheticControlInput& input,
    const SyntheticControlOptions& options) {
  if (auto s = input.Validate(); !s.ok()) return s.error();

  const std::size_t t0 = input.pre_periods;
  const std::size_t donors = input.donors.cols();
  const stats::Matrix x = input.donors.Block(0, t0, 0, donors);
  std::span<const double> y(input.treated.data(), t0);

  // Projected gradient descent on f(w) = ||y - X w||^2 / t0 over the
  // simplex. Lipschitz constant of the gradient bounded by
  // 2 ||X||_F^2 / t0.
  const double fro = x.FrobeniusNorm();
  const double lipschitz =
      std::max(1e-12, 2.0 * fro * fro / static_cast<double>(t0));
  const double step = 1.0 / lipschitz;

  stats::Vector w(donors, 1.0 / static_cast<double>(donors));
  double previous_objective = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // gradient = 2 X^T (X w - y) / t0
    stats::Vector fitted = x.Apply(w);
    stats::Vector residual = stats::Subtract(fitted, y);
    stats::Vector gradient = x.ApplyTransposed(residual);
    for (double& g : gradient) g *= 2.0 / static_cast<double>(t0);

    stats::Vector candidate(donors);
    for (std::size_t j = 0; j < donors; ++j)
      candidate[j] = w[j] - step * gradient[j];
    w = stats::ProjectToSimplex(candidate);

    const double objective =
        stats::Dot(residual, residual) / static_cast<double>(t0);
    if (std::abs(previous_objective - objective) < options.tolerance) break;
    previous_objective = objective;
  }
  return DiagnoseWeights(input, std::move(w));
}

}  // namespace sisyphus::causal
