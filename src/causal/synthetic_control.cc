#include "causal/synthetic_control.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/error.h"
#include "obs/lineage.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

core::Status SyntheticControlInput::Validate() const {
  if (donors.rows() != treated.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "SyntheticControlInput: donor periods (" +
                     std::to_string(donors.rows()) + ") != treated periods (" +
                     std::to_string(treated.size()) + ")");
  }
  if (donors.cols() == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "SyntheticControlInput: empty donor pool");
  }
  if (pre_periods < 2 || pre_periods >= treated.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "SyntheticControlInput: need 2 <= pre_periods < periods");
  }
  if (!donor_names.empty() && donor_names.size() != donors.cols()) {
    return Error(ErrorCode::kInvalidArgument,
                 "SyntheticControlInput: donor_names size mismatch");
  }
  if (!treated_observed.empty() &&
      treated_observed.size() != treated.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "SyntheticControlInput: treated_observed size mismatch");
  }
  if (!donor_observed.empty() &&
      (donor_observed.rows() != donors.rows() ||
       donor_observed.cols() != donors.cols())) {
    return Error(ErrorCode::kInvalidArgument,
                 "SyntheticControlInput: donor_observed shape mismatch");
  }
  return core::Status::Ok();
}

double SyntheticControlInput::DonorObservedFraction() const {
  if (donor_observed.empty()) return 1.0;
  std::size_t observed = 0;
  for (std::size_t r = 0; r < donor_observed.rows(); ++r) {
    for (double entry : donor_observed.Row(r)) {
      if (entry != 0.0) ++observed;
    }
  }
  return static_cast<double>(observed) /
         static_cast<double>(donor_observed.rows() * donor_observed.cols());
}

std::vector<std::string> SyntheticControlFit::ActiveDonors(
    double threshold) const {
  std::vector<std::string> out;
  char buffer[128];
  for (std::size_t j = 0; j < weights.size(); ++j) {
    if (std::abs(weights[j]) <= threshold) continue;
    const std::string name =
        j < donor_names.size() ? donor_names[j] : "donor" + std::to_string(j);
    std::snprintf(buffer, sizeof(buffer), "%s:%.3f", name.c_str(), weights[j]);
    out.emplace_back(buffer);
  }
  return out;
}

SyntheticControlFit DiagnoseWeights(const SyntheticControlInput& input,
                                    stats::Vector weights) {
  SISYPHUS_REQUIRE(weights.size() == input.donors.cols(),
                   "DiagnoseWeights: weight count != donor count");
  SyntheticControlFit fit;
  fit.weights = std::move(weights);
  fit.donor_names = input.donor_names;
  const std::size_t periods = input.treated.size();
  fit.synthetic = input.donors.Apply(fit.weights);

  // With a treated-side mask, errors and effects are computed on observed
  // periods only — interpolated entries are artifacts, not measurements.
  // If a whole segment is unobserved, fall back to all its periods rather
  // than returning NaNs.
  const auto observed_at = [&](std::size_t t) {
    return input.treated_observed.empty() || input.treated_observed[t] != 0.0;
  };
  const auto masked_rmse = [&](std::size_t begin, std::size_t end) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t t = begin; t < end; ++t) {
      if (!observed_at(t)) continue;
      const double gap = input.treated[t] - fit.synthetic[t];
      sum += gap * gap;
      ++n;
    }
    if (n == 0) {
      for (std::size_t t = begin; t < end; ++t) {
        const double gap = input.treated[t] - fit.synthetic[t];
        sum += gap * gap;
        ++n;
      }
    }
    return std::sqrt(sum / static_cast<double>(n));
  };
  fit.rmse_pre = masked_rmse(0, input.pre_periods);
  fit.rmse_post = masked_rmse(input.pre_periods, periods);
  // Guard the ratio against a (near-)perfect pre fit.
  const double floor = 1e-9;
  fit.rmse_ratio = fit.rmse_post / std::max(fit.rmse_pre, floor);

  fit.post_effects.resize(periods - input.pre_periods);
  double sum = 0.0;
  std::size_t observed_post = 0;
  for (std::size_t t = input.pre_periods; t < periods; ++t) {
    const double effect = input.treated[t] - fit.synthetic[t];
    fit.post_effects[t - input.pre_periods] = effect;
    if (observed_at(t)) {
      sum += effect;
      ++observed_post;
    }
  }
  if (observed_post == 0) {
    for (double effect : fit.post_effects) sum += effect;
    observed_post = fit.post_effects.size();
  }
  fit.average_effect = sum / static_cast<double>(observed_post);
  return fit;
}

Result<SyntheticControlFit> FitSyntheticControl(
    const SyntheticControlInput& input,
    const SyntheticControlOptions& options) {
  if (auto s = input.Validate(); !s.ok()) return s.error();

  const std::size_t t0 = input.pre_periods;
  const std::size_t donors = input.donors.cols();
  const stats::Matrix x = input.donors.Block(0, t0, 0, donors);
  std::span<const double> y(input.treated.data(), t0);

  // Projected gradient descent on f(w) = ||y - X w||^2 / t0 over the
  // simplex. Lipschitz constant of the gradient bounded by
  // 2 ||X||_F^2 / t0.
  const double fro = x.FrobeniusNorm();
  const double lipschitz =
      std::max(1e-12, 2.0 * fro * fro / static_cast<double>(t0));
  const double step = 1.0 / lipschitz;

  stats::Vector w(donors, 1.0 / static_cast<double>(donors));
  double previous_objective = std::numeric_limits<double>::infinity();
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // gradient = 2 X^T (X w - y) / t0
    stats::Vector fitted = x.Apply(w);
    stats::Vector residual = stats::Subtract(fitted, y);
    stats::Vector gradient = x.ApplyTransposed(residual);
    for (double& g : gradient) g *= 2.0 / static_cast<double>(t0);

    stats::Vector candidate(donors);
    for (std::size_t j = 0; j < donors; ++j)
      candidate[j] = w[j] - step * gradient[j];
    w = stats::ProjectToSimplex(candidate);

    const double objective =
        stats::Dot(residual, residual) / static_cast<double>(t0);
    if (std::abs(previous_objective - objective) < options.tolerance) break;
    previous_objective = objective;
  }
  MarkFitLineage(input);
  return DiagnoseWeights(input, std::move(w));
}

void MarkFitLineage(const SyntheticControlInput& input) {
  if (!obs::Lineage::enabled()) return;
  obs::Lineage& lineage = obs::Lineage::Global();
  if (!input.treated_name.empty()) {
    // A placebo rotation fits a donor as if treated; it must not promote
    // that donor's records to the treated terminal state.
    if (input.placebo) {
      lineage.MarkDonor(input.treated_name);
    } else {
      lineage.MarkTreated(input.treated_name);
    }
  }
  for (const std::string& donor : input.donor_names) {
    lineage.MarkDonor(donor);
  }
}

}  // namespace sisyphus::causal
