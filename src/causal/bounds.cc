#include "causal/bounds.h"

#include <algorithm>

#include "core/error.h"
#include "stats/descriptive.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

Result<EffectBounds> ManskiBounds(const Dataset& data,
                                  std::string_view treatment,
                                  std::string_view outcome,
                                  const BoundsOptions& options) {
  if (options.y_min >= options.y_max) {
    return Error(ErrorCode::kInvalidArgument,
                 "ManskiBounds: need y_min < y_max");
  }
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  auto y = data.Column(outcome);
  if (!y.ok()) return y.error();

  std::vector<double> y1, y0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const double ti = t.value()[i];
    if (ti != 0.0 && ti != 1.0) {
      return Error(ErrorCode::kInvalidArgument,
                   "ManskiBounds: treatment must be 0/1");
    }
    const double yi = y.value()[i];
    if (yi < options.y_min || yi > options.y_max) {
      return Error(ErrorCode::kInvalidArgument,
                   "ManskiBounds: outcome outside [y_min, y_max]");
    }
    (ti == 1.0 ? y1 : y0).push_back(yi);
  }
  if (y1.empty() || y0.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "ManskiBounds: need both treatment arms");
  }

  const double n = static_cast<double>(data.rows());
  const double p1 = static_cast<double>(y1.size()) / n;
  const double p0 = 1.0 - p1;
  const double mean1 = stats::Mean(y1);
  const double mean0 = stats::Mean(y0);

  // E[Y(1)] in [mean1*p1 + y_min*p0, mean1*p1 + y_max*p0]; analogously
  // for E[Y(0)] with the arms swapped.
  EffectBounds bounds;
  bounds.lower = (mean1 * p1 + options.y_min * p0) -
                 (mean0 * p0 + options.y_max * p1);
  bounds.upper = (mean1 * p1 + options.y_max * p0) -
                 (mean0 * p0 + options.y_min * p1);

  if (options.monotone_treatment_selection) {
    // MTS: E[Y(1)|T=0] <= E[Y(1)|T=1] and E[Y(0)|T=1] >= E[Y(0)|T=0],
    // so the naive contrast bounds the ATE from above.
    bounds.upper = std::min(bounds.upper, mean1 - mean0);
    bounds.mts_applied = true;
  }
  if (options.monotone_treatment_response) {
    bounds.lower = std::max(bounds.lower, 0.0);
    bounds.mtr_applied = true;
  }
  if (bounds.lower > bounds.upper) {
    // The assumptions contradict the data (e.g. MTR with a clearly
    // negative naive contrast under MTS): surface it.
    return Error(ErrorCode::kPrecondition,
                 "ManskiBounds: assumptions produce an empty interval — "
                 "at least one of MTR/MTS is refuted by the data");
  }
  return bounds;
}

}  // namespace sisyphus::causal
