// d-separation: the graphical criterion underlying every identification
// result in the library.
//
// Two implementations are provided on purpose (DESIGN.md §4):
//  - IsDSeparated / ReachableViaActiveTrails: the linear-time "Bayes-ball"
//    reachability algorithm (Koller & Friedman alg. 3.1) — used everywhere;
//  - EnumeratePaths + IsPathOpen: explicit path enumeration with per-path
//    open/blocked classification — exponential, but invaluable for
//    *explaining* a verdict ("the backdoor path R <- C -> L is open") and
//    used by the property tests as an oracle for the fast algorithm.
#pragma once

#include <string>
#include <vector>

#include "causal/dag.h"

namespace sisyphus::causal {

/// True iff X and Y are d-separated given Z in `dag`.
/// Preconditions: x != y, x/y not in z.
bool IsDSeparated(const Dag& dag, NodeId x, NodeId y, const NodeSet& z);

/// All nodes reachable from `source` via a trail that is active given `z`
/// (excluding `source` itself).
NodeSet ReachableViaActiveTrails(const Dag& dag, NodeId source,
                                 const NodeSet& z);

/// A trail between two nodes: the node sequence plus, per step, whether the
/// edge was traversed along its direction (true = "->", i.e. from
/// nodes[i] to nodes[i+1]).
struct Path {
  std::vector<NodeId> nodes;
  std::vector<bool> forward;  ///< size = nodes.size() - 1

  /// True if the first edge points *into* the start node (x <- ...):
  /// Pearl's definition of a backdoor path from x.
  bool StartsWithArrowIntoStart() const {
    return !forward.empty() && !forward.front();
  }

  /// Human-readable form, e.g. "R <- C -> L".
  std::string ToText(const Dag& dag) const;
};

/// Enumerates all simple (node-disjoint) undirected paths between x and y.
/// Exponential in the worst case; intended for graphs of tens of nodes.
/// `max_paths` caps the output as a safety valve.
std::vector<Path> EnumeratePaths(const Dag& dag, NodeId x, NodeId y,
                                 std::size_t max_paths = 100000);

/// True iff the path is open (d-connecting) given conditioning set `z`:
/// every non-collider on it is outside z, and every collider is in z or
/// has a descendant in z.
bool IsPathOpen(const Dag& dag, const Path& path, const NodeSet& z);

/// The open backdoor paths from treatment to outcome given z — the ones a
/// valid adjustment set must block. Sorted deterministically.
std::vector<Path> OpenBackdoorPaths(const Dag& dag, NodeId treatment,
                                    NodeId outcome, const NodeSet& z);

}  // namespace sisyphus::causal
