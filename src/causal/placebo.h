// Placebo inference for synthetic control — the source of Table 1's
// p-values.
//
// The idea (Abadie et al.): rerun the estimator pretending each *donor*
// was treated at the same period. If the actually-treated unit's
// post/pre RMSE ratio is not unusually large against this placebo
// distribution, the apparent effect is indistinguishable from model noise.
// p = (#{placebo ratio >= treated ratio} + 1) / (#placebos + 1).
#pragma once

#include <functional>

#include "causal/robust_synthetic_control.h"
#include "causal/synthetic_control.h"
#include "core/result.h"

namespace sisyphus::causal {

struct PlaceboResult {
  /// Fit of the actually treated unit.
  SyntheticControlFit treated_fit;
  /// RMSE ratio of every placebo run (one per usable donor).
  stats::Vector placebo_ratios;
  /// Rank-based p-value of the treated unit's RMSE ratio.
  double p_value = 1.0;
  /// Donors skipped because their placebo fit failed.
  std::size_t skipped_donors = 0;
};

/// Which estimator the placebo engine runs.
enum class SyntheticControlMethod { kClassical, kRobust };

struct PlaceboOptions {
  SyntheticControlMethod method = SyntheticControlMethod::kRobust;
  SyntheticControlOptions classical;
  RobustSyntheticControlOptions robust;
  /// Placebos whose pre-RMSE exceeds this multiple of the treated unit's
  /// pre-RMSE are dropped (standard practice: badly-fit placebos inflate
  /// the null distribution). 0 disables the filter.
  double max_pre_rmse_multiple = 5.0;
};

/// Runs the chosen estimator on the treated unit, then one placebo run per
/// donor (that donor becomes "treated", the true treated unit is NOT added
/// to the pool), and computes the rank p-value.
/// Fails if the treated fit fails or fewer than 2 placebo runs succeed.
core::Result<PlaceboResult> RunPlaceboAnalysis(
    const SyntheticControlInput& input, const PlaceboOptions& options = {});

}  // namespace sisyphus::causal
