#include "causal/ladder.h"

#include <cmath>

#include "core/error.h"
#include "stats/descriptive.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

Result<double> Association(const Dataset& data, std::string_view treatment,
                           std::string_view outcome, double value,
                           double halfwidth) {
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  auto y = data.Column(outcome);
  if (!y.ok()) return y.error();
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    if (std::abs(t.value()[i] - value) <= halfwidth) {
      sum += y.value()[i];
      ++count;
    }
  }
  if (count == 0) {
    return Error(ErrorCode::kPrecondition,
                 "Association: no observation has " + std::string(treatment) +
                     " near " + std::to_string(value));
  }
  return sum / static_cast<double>(count);
}

Result<double> InterventionalExpectation(const Scm& scm,
                                         std::string_view treatment,
                                         std::string_view outcome,
                                         double value, std::size_t draws,
                                         core::Rng& rng) {
  auto t = scm.dag().Node(treatment);
  if (!t.ok()) return t.error();
  auto y = scm.dag().Node(outcome);
  if (!y.ok()) return y.error();
  return scm.ExpectedUnderIntervention(y.value(), {{t.value(), value}}, draws,
                                       rng);
}

Result<double> CounterfactualOutcome(
    const Scm& scm, const std::unordered_map<std::string, double>& factual,
    std::string_view treatment, std::string_view outcome, double value) {
  auto t = scm.dag().Node(treatment);
  if (!t.ok()) return t.error();
  auto y = scm.dag().Node(outcome);
  if (!y.ok()) return y.error();
  auto world = scm.Counterfactual(factual, {{t.value(), value}});
  if (!world.ok()) return world.error();
  return world.value().at(std::string(outcome));
}

Result<LadderComparison> CompareLadderRungs(
    const Scm& scm, const Dataset& data, std::string_view treatment,
    std::string_view outcome, double high, double low, double halfwidth,
    std::size_t draws, core::Rng& rng) {
  LadderComparison out;
  auto a_high = Association(data, treatment, outcome, high, halfwidth);
  if (!a_high.ok()) return a_high.error();
  auto a_low = Association(data, treatment, outcome, low, halfwidth);
  if (!a_low.ok()) return a_low.error();
  auto i_high =
      InterventionalExpectation(scm, treatment, outcome, high, draws, rng);
  if (!i_high.ok()) return i_high.error();
  auto i_low =
      InterventionalExpectation(scm, treatment, outcome, low, draws, rng);
  if (!i_low.ok()) return i_low.error();
  out.association_high = a_high.value();
  out.association_low = a_low.value();
  out.interventional_high = i_high.value();
  out.interventional_low = i_low.value();
  return out;
}

}  // namespace sisyphus::causal
