#include "causal/placebo.h"

#include <algorithm>

#include "core/error.h"
#include "core/parallel.h"
#include "obs/metrics.h"
#include "stats/inference.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

namespace {

Result<SyntheticControlFit> FitWithMethod(const SyntheticControlInput& input,
                                          const PlaceboOptions& options) {
  if (options.method == SyntheticControlMethod::kClassical) {
    return FitSyntheticControl(input, options.classical);
  }
  auto fit = FitRobustSyntheticControl(input, options.robust);
  if (!fit.ok()) return fit.error();
  return std::move(fit).value().base;
}

/// Builds the placebo input where donor `j` plays the treated unit; the
/// pool is all other donors (the truly-treated series is excluded so its
/// real effect cannot contaminate the null). Missingness masks follow the
/// series, so placebo runs over ragged donors stay mask-aware.
SyntheticControlInput PlaceboInput(const SyntheticControlInput& input,
                                   std::size_t j) {
  SyntheticControlInput out;
  out.pre_periods = input.pre_periods;
  out.placebo = true;  // donor j stands in as treated; lineage keeps it a donor
  if (!input.donor_names.empty()) out.treated_name = input.donor_names[j];
  out.treated = input.donors.Column(j);
  out.donors = stats::Matrix(input.donors.rows(), input.donors.cols() - 1);
  const bool masked = !input.donor_observed.empty();
  if (masked) {
    out.treated_observed = input.donor_observed.Column(j);
    out.donor_observed =
        stats::Matrix(input.donors.rows(), input.donors.cols() - 1);
  }
  std::size_t dst = 0;
  for (std::size_t c = 0; c < input.donors.cols(); ++c) {
    if (c == j) continue;
    const auto col = input.donors.Column(c);
    out.donors.SetColumn(dst, col);
    if (masked) {
      const auto mask = input.donor_observed.Column(c);
      out.donor_observed.SetColumn(dst, mask);
    }
    if (!input.donor_names.empty()) out.donor_names.push_back(input.donor_names[c]);
    ++dst;
  }
  return out;
}

}  // namespace

Result<PlaceboResult> RunPlaceboAnalysis(const SyntheticControlInput& input,
                                         const PlaceboOptions& options) {
  if (auto s = input.Validate(); !s.ok()) return s.error();
  if (input.donors.cols() < 3) {
    return Error(ErrorCode::kInvalidArgument,
                 "RunPlaceboAnalysis: need >= 3 donors for a placebo "
                 "distribution");
  }

  PlaceboResult out;
  auto treated = FitWithMethod(input, options);
  if (!treated.ok()) return treated.error();
  out.treated_fit = std::move(treated).value();

  // Donor placebo fits are independent and deterministic (no RNG), so they
  // fan out across the pool; the skip-filter reduction below runs in donor
  // index order on this thread, making the result identical to the serial
  // loop at any SISYPHUS_THREADS (DESIGN.md §7).
  struct PlaceboRun {
    bool ok = false;
    double rmse_ratio = 0.0;
    double rmse_pre = 0.0;
  };
  const auto runs =
      core::ParallelMap(input.donors.cols(), [&](std::size_t j) {
        const SyntheticControlInput placebo = PlaceboInput(input, j);
        SISYPHUS_METRIC_COUNT("causal.placebo.runs", 1);
        PlaceboRun run;
        auto fit = FitWithMethod(placebo, options);
        if (fit.ok()) {
          run.ok = true;
          run.rmse_ratio = fit.value().rmse_ratio;
          run.rmse_pre = fit.value().rmse_pre;
        }
        return run;
      });
  for (const PlaceboRun& run : runs) {
    if (!run.ok) {
      SISYPHUS_METRIC_COUNT("causal.placebo.skipped", 1);
      ++out.skipped_donors;
      continue;
    }
    if (options.max_pre_rmse_multiple > 0.0 &&
        run.rmse_pre > options.max_pre_rmse_multiple *
                           std::max(out.treated_fit.rmse_pre, 1e-9)) {
      SISYPHUS_METRIC_COUNT("causal.placebo.skipped", 1);
      ++out.skipped_donors;
      continue;
    }
    out.placebo_ratios.push_back(run.rmse_ratio);
  }
  if (out.placebo_ratios.size() < 2) {
    return Error(ErrorCode::kNumericalFailure,
                 "RunPlaceboAnalysis: fewer than 2 usable placebo runs");
  }
  out.p_value = stats::EmpiricalUpperPValue(out.treated_fit.rmse_ratio,
                                            out.placebo_ratios);
  return out;
}

}  // namespace sisyphus::causal
