#include "causal/event_study.h"

#include "core/error.h"
#include "stats/descriptive.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

namespace {

Result<SyntheticControlFit> FitWithMethod(const SyntheticControlInput& input,
                                          const PlaceboOptions& options) {
  if (options.method == SyntheticControlMethod::kClassical) {
    return FitSyntheticControl(input, options.classical);
  }
  auto fit = FitRobustSyntheticControl(input, options.robust);
  if (!fit.ok()) return fit.error();
  return std::move(fit).value().base;
}

/// Mirrors placebo.cc: donor `j` plays treated, masks follow the series so
/// ragged donors are tolerated.
SyntheticControlInput PlaceboInput(const SyntheticControlInput& input,
                                   std::size_t j) {
  SyntheticControlInput out;
  out.pre_periods = input.pre_periods;
  out.treated = input.donors.Column(j);
  out.donors = stats::Matrix(input.donors.rows(), input.donors.cols() - 1);
  const bool masked = !input.donor_observed.empty();
  if (masked) {
    out.treated_observed = input.donor_observed.Column(j);
    out.donor_observed =
        stats::Matrix(input.donors.rows(), input.donors.cols() - 1);
  }
  std::size_t dst = 0;
  for (std::size_t c = 0; c < input.donors.cols(); ++c) {
    if (c == j) continue;
    const auto col = input.donors.Column(c);
    out.donors.SetColumn(dst, col);
    if (masked) {
      const auto mask = input.donor_observed.Column(c);
      out.donor_observed.SetColumn(dst, mask);
    }
    ++dst;
  }
  return out;
}

}  // namespace

Result<EventStudyResult> RunEventStudy(const SyntheticControlInput& input,
                                       const EventStudyOptions& options) {
  if (auto s = input.Validate(); !s.ok()) return s.error();
  if (options.band_lower_quantile >= options.band_upper_quantile) {
    return Error(ErrorCode::kInvalidArgument,
                 "RunEventStudy: band quantiles out of order");
  }
  auto treated = FitWithMethod(input, options.placebo);
  if (!treated.ok()) return treated.error();

  const std::size_t periods = input.treated.size();
  // Placebo gap series, one row per successful placebo run.
  std::vector<std::vector<double>> placebo_gaps;
  for (std::size_t j = 0; j < input.donors.cols(); ++j) {
    const SyntheticControlInput placebo = PlaceboInput(input, j);
    auto fit = FitWithMethod(placebo, options.placebo);
    if (!fit.ok()) continue;
    std::vector<double> gaps(periods);
    for (std::size_t t = 0; t < periods; ++t) {
      gaps[t] = placebo.treated[t] - fit.value().synthetic[t];
    }
    placebo_gaps.push_back(std::move(gaps));
  }
  if (placebo_gaps.size() < 3) {
    return Error(ErrorCode::kNumericalFailure,
                 "RunEventStudy: fewer than 3 usable placebo runs");
  }

  EventStudyResult out;
  out.treated_fit = std::move(treated).value();
  out.points.resize(periods);
  std::size_t pre_out = 0, post_out = 0;
  for (std::size_t t = 0; t < periods; ++t) {
    std::vector<double> column(placebo_gaps.size());
    for (std::size_t r = 0; r < placebo_gaps.size(); ++r) {
      column[r] = placebo_gaps[r][t];
    }
    EventStudyPoint& point = out.points[t];
    point.relative_period =
        static_cast<int>(t) - static_cast<int>(input.pre_periods);
    point.gap = input.treated[t] - out.treated_fit.synthetic[t];
    point.band_low = stats::Quantile(column, options.band_lower_quantile);
    point.band_high = stats::Quantile(column, options.band_upper_quantile);
    point.outside_band =
        point.gap < point.band_low || point.gap > point.band_high;
    if (point.outside_band) {
      (t < input.pre_periods ? pre_out : post_out)++;
    }
  }
  out.pre_exceedance = static_cast<double>(pre_out) /
                       static_cast<double>(input.pre_periods);
  out.post_exceedance = static_cast<double>(post_out) /
                        static_cast<double>(periods - input.pre_periods);
  return out;
}

}  // namespace sisyphus::causal
