// Causal directed acyclic graphs (Pearl-style).
//
// Nodes are named variables ("Congestion", "Route", "Latency"); directed
// edges encode causal influence. Latent confounding between X and Y is
// modeled dagitty-style as a bidirected edge X <-> Y, stored internally as
// an explicit latent parent node "U(X,Y)" marked unobserved — this keeps
// every graph algorithm a plain-DAG algorithm.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "core/result.h"

namespace sisyphus::causal {

using core::NodeId;

/// A set of nodes, kept sorted for deterministic iteration/printing.
class NodeSet {
 public:
  NodeSet() = default;
  NodeSet(std::initializer_list<NodeId> ids);

  void Insert(NodeId id);
  void Erase(NodeId id);
  bool Contains(NodeId id) const;
  bool empty() const { return ids_.empty(); }
  std::size_t size() const { return ids_.size(); }

  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

  friend bool operator==(const NodeSet& a, const NodeSet& b) {
    return a.ids_ == b.ids_;
  }

 private:
  std::vector<NodeId> ids_;  // sorted, unique
};

/// A causal DAG over named variables.
class Dag {
 public:
  Dag() = default;

  /// Adds a variable; returns its id. Re-adding an existing name returns
  /// the existing id (idempotent). `observed` = false marks a latent.
  NodeId AddNode(std::string_view name, bool observed = true);

  /// Adds edge from -> to. Fails (kInvalidArgument) if the edge would
  /// create a cycle or is a self-loop; duplicate edges are idempotent.
  core::Status AddEdge(NodeId from, NodeId to);
  core::Status AddEdge(std::string_view from, std::string_view to);

  /// Adds a latent confounder between a and b (bidirected edge a <-> b):
  /// creates an unobserved node "U(a,b)" with edges to both.
  core::Status AddLatentConfounder(NodeId a, NodeId b);

  std::size_t NodeCount() const { return names_.size(); }
  std::size_t EdgeCount() const;

  /// Node lookup by name; kNotFound if absent.
  core::Result<NodeId> Node(std::string_view name) const;
  /// Name of a node. Precondition: valid id.
  const std::string& Name(NodeId id) const;
  bool IsObserved(NodeId id) const;

  bool HasEdge(NodeId from, NodeId to) const;

  const std::vector<NodeId>& Parents(NodeId id) const;
  const std::vector<NodeId>& Children(NodeId id) const;

  /// All ancestors (transitive parents), excluding the node itself.
  NodeSet Ancestors(NodeId id) const;
  /// Ancestors of every node in `set`, including the set members.
  NodeSet AncestorsOfSet(const NodeSet& set) const;
  /// All descendants (transitive children), excluding the node itself.
  NodeSet Descendants(NodeId id) const;

  /// Nodes in topological order (parents before children).
  std::vector<NodeId> TopologicalOrder() const;

  /// All observed nodes.
  NodeSet ObservedNodes() const;
  /// Every node id.
  std::vector<NodeId> AllNodes() const;

  /// True if `id` is a collider on the path ... a -> id <- b ... for some
  /// distinct parents a, b (structural collider: >= 2 parents).
  bool IsCollider(NodeId id) const { return Parents(id).size() >= 2; }

  /// "A -> B; A -> C; U(B,C) [latent]" — canonical text form.
  std::string ToText() const;

  /// Graphviz form: latents drawn dashed, optional treatment/outcome
  /// highlighting. Render with `dot -Tsvg`.
  std::string ToDot(std::optional<NodeId> treatment = std::nullopt,
                    std::optional<NodeId> outcome = std::nullopt) const;

 private:
  bool WouldCreateCycle(NodeId from, NodeId to) const;

  std::vector<std::string> names_;
  std::vector<bool> observed_;
  std::vector<std::vector<NodeId>> parents_;
  std::vector<std::vector<NodeId>> children_;
  std::unordered_map<std::string, NodeId> by_name_;
};

}  // namespace sisyphus::causal
