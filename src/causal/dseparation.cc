#include "causal/dseparation.h"

#include <algorithm>
#include <deque>

#include "core/error.h"

namespace sisyphus::causal {

namespace {

// Bayes-ball state: a node visited from a given direction.
struct Visit {
  NodeId node;
  bool from_child;  // ball arrived moving upward (from a child)
};

}  // namespace

NodeSet ReachableViaActiveTrails(const Dag& dag, NodeId source,
                                 const NodeSet& z) {
  // Phase 1: ancestors of Z (colliders are unblocked iff they, or a
  // descendant, are in Z — equivalently, iff the collider is an ancestor
  // of Z or in Z).
  const NodeSet z_closure = dag.AncestorsOfSet(z);

  // Phase 2: BFS over (node, direction) states.
  const std::size_t n = dag.NodeCount();
  std::vector<bool> seen_up(n, false), seen_down(n, false);
  NodeSet reachable;
  std::deque<Visit> frontier;
  frontier.push_back({source, /*from_child=*/true});  // as if entered upward
  while (!frontier.empty()) {
    const Visit visit = frontier.front();
    frontier.pop_front();
    auto& seen = visit.from_child ? seen_up : seen_down;
    if (seen[visit.node.value()]) continue;
    seen[visit.node.value()] = true;
    if (visit.node != source && !z.Contains(visit.node)) {
      reachable.Insert(visit.node);
    }
    if (visit.from_child) {
      // Arrived from a child (moving up the arrow). If not in Z we may
      // continue to parents (chain) and to children (fork at this node).
      if (!z.Contains(visit.node)) {
        for (NodeId parent : dag.Parents(visit.node))
          frontier.push_back({parent, /*from_child=*/true});
        for (NodeId child : dag.Children(visit.node))
          frontier.push_back({child, /*from_child=*/false});
      }
    } else {
      // Arrived from a parent (moving down the arrow).
      if (!z.Contains(visit.node)) {
        // Chain: continue downward.
        for (NodeId child : dag.Children(visit.node))
          frontier.push_back({child, /*from_child=*/false});
      }
      // Collider at this node: pass through to parents iff the collider
      // is in Z or has a descendant in Z.
      if (z_closure.Contains(visit.node) || z.Contains(visit.node)) {
        for (NodeId parent : dag.Parents(visit.node))
          frontier.push_back({parent, /*from_child=*/true});
      }
    }
  }
  return reachable;
}

bool IsDSeparated(const Dag& dag, NodeId x, NodeId y, const NodeSet& z) {
  SISYPHUS_REQUIRE(x != y, "IsDSeparated: x == y");
  SISYPHUS_REQUIRE(!z.Contains(x) && !z.Contains(y),
                   "IsDSeparated: endpoint inside conditioning set");
  return !ReachableViaActiveTrails(dag, x, z).Contains(y);
}

std::string Path::ToText(const Dag& dag) const {
  std::string out = dag.Name(nodes.front());
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    out += forward[i] ? " -> " : " <- ";
    out += dag.Name(nodes[i + 1]);
  }
  return out;
}

namespace {

void EnumerateFrom(const Dag& dag, NodeId current, NodeId target,
                   std::vector<NodeId>& nodes, std::vector<bool>& forward,
                   std::vector<bool>& on_path, std::size_t max_paths,
                   std::vector<Path>& out) {
  if (out.size() >= max_paths) return;
  if (current == target) {
    out.push_back({nodes, forward});
    return;
  }
  for (NodeId child : dag.Children(current)) {
    if (on_path[child.value()]) continue;
    nodes.push_back(child);
    forward.push_back(true);
    on_path[child.value()] = true;
    EnumerateFrom(dag, child, target, nodes, forward, on_path, max_paths, out);
    on_path[child.value()] = false;
    nodes.pop_back();
    forward.pop_back();
  }
  for (NodeId parent : dag.Parents(current)) {
    if (on_path[parent.value()]) continue;
    nodes.push_back(parent);
    forward.push_back(false);
    on_path[parent.value()] = true;
    EnumerateFrom(dag, parent, target, nodes, forward, on_path, max_paths,
                  out);
    on_path[parent.value()] = false;
    nodes.pop_back();
    forward.pop_back();
  }
}

}  // namespace

std::vector<Path> EnumeratePaths(const Dag& dag, NodeId x, NodeId y,
                                 std::size_t max_paths) {
  SISYPHUS_REQUIRE(x != y, "EnumeratePaths: x == y");
  std::vector<Path> out;
  std::vector<NodeId> nodes{x};
  std::vector<bool> forward;
  std::vector<bool> on_path(dag.NodeCount(), false);
  on_path[x.value()] = true;
  EnumerateFrom(dag, x, y, nodes, forward, on_path, max_paths, out);
  return out;
}

bool IsPathOpen(const Dag& dag, const Path& path, const NodeSet& z) {
  // Interior node i (1..n-2) is a collider iff both adjacent edges point
  // into it: edge i-1 forward (-> node) and edge i backward (node <-).
  for (std::size_t i = 1; i + 1 < path.nodes.size(); ++i) {
    const bool into_from_left = path.forward[i - 1];
    const bool into_from_right = !path.forward[i];
    const NodeId node = path.nodes[i];
    const bool is_collider = into_from_left && into_from_right;
    if (is_collider) {
      // Open iff node or a descendant is in z.
      if (z.Contains(node)) continue;
      bool descendant_in_z = false;
      for (NodeId d : dag.Descendants(node)) {
        if (z.Contains(d)) {
          descendant_in_z = true;
          break;
        }
      }
      if (!descendant_in_z) return false;
    } else {
      if (z.Contains(node)) return false;
    }
  }
  return true;
}

std::vector<Path> OpenBackdoorPaths(const Dag& dag, NodeId treatment,
                                    NodeId outcome, const NodeSet& z) {
  std::vector<Path> open;
  for (const Path& path : EnumeratePaths(dag, treatment, outcome)) {
    if (path.StartsWithArrowIntoStart() && IsPathOpen(dag, path, z)) {
      open.push_back(path);
    }
  }
  std::sort(open.begin(), open.end(), [&](const Path& a, const Path& b) {
    return a.ToText(dag) < b.ToText(dag);
  });
  return open;
}

}  // namespace sisyphus::causal
