// Synthetic control (Abadie et al.): counterfactual estimation for one
// treated unit from a weighted combination of untreated donors.
//
// This is the paper's workhorse for counterfactual reasoning "where
// randomized experiments are impossible and full structural models are
// infeasible" (§3). The classical estimator constrains weights to the
// probability simplex and fits them on the pre-treatment window by
// projected-gradient descent.
#pragma once

#include <string>
#include <vector>

#include "core/result.h"
#include "stats/matrix.h"

namespace sisyphus::causal {

/// Input panel for a synthetic-control estimate.
///
/// `treated` is the outcome series of the unit that received treatment;
/// `donors` is periods x donor-count (column j = donor j's series);
/// `pre_periods` is the number of leading periods before treatment.
struct SyntheticControlInput {
  stats::Vector treated;
  stats::Matrix donors;
  std::vector<std::string> donor_names;  ///< optional; sized 0 or donor count
  std::size_t pre_periods = 0;
  /// Lineage provenance (optional): the treated unit's panel key, and
  /// whether this input is a placebo rotation (its "treated" series is
  /// really a donor standing in). Ignored by the estimators' math.
  std::string treated_name;
  bool placebo = false;

  /// Optional missingness masks (1 = observed, 0 = missing/interpolated).
  /// Empty means fully observed. When present, `treated_observed` is sized
  /// like `treated` and `donor_observed` is shaped like `donors`.
  /// Mask-aware estimators (robust synthetic control) fit on observed
  /// entries only; the classical simplex estimator ignores the masks.
  stats::Vector treated_observed;
  stats::Matrix donor_observed;

  bool HasMask() const {
    return !treated_observed.empty() || !donor_observed.empty();
  }
  /// Fraction of donor entries observed (1.0 without a mask).
  double DonorObservedFraction() const;

  /// Shape/parameter validation shared by both estimators.
  core::Status Validate() const;
};

/// A fitted synthetic control with the paper's diagnostics.
struct SyntheticControlFit {
  stats::Vector weights;     ///< one per donor
  stats::Vector synthetic;   ///< full-length synthetic trajectory
  /// Mean post-period (observed - synthetic): the estimated effect
  /// ("RTT delta" in Table 1).
  double average_effect = 0.0;
  /// Per-post-period effects.
  stats::Vector post_effects;
  double rmse_pre = 0.0;   ///< pre-treatment fit error
  double rmse_post = 0.0;  ///< post-treatment divergence
  /// rmse_post / rmse_pre — Table 1's "RMSE Ratio" diagnostic. A large
  /// value means post-treatment behaviour diverged from the donor pool.
  double rmse_ratio = 0.0;

  /// Donors with weight above `threshold`, as "name:weight" strings.
  std::vector<std::string> ActiveDonors(double threshold = 0.01) const;
  std::vector<std::string> donor_names;  ///< copied from the input
};

struct SyntheticControlOptions {
  std::size_t max_iterations = 2000;
  double tolerance = 1e-10;
};

/// Classical (simplex-constrained) synthetic control.
/// Fails (kInvalidArgument) on shape errors or pre_periods < 2.
core::Result<SyntheticControlFit> FitSyntheticControl(
    const SyntheticControlInput& input,
    const SyntheticControlOptions& options = {});

/// Computes the shared diagnostics (synthetic path, effects, RMSEs) for a
/// given weight vector — used by both estimators and by the placebo runs.
SyntheticControlFit DiagnoseWeights(const SyntheticControlInput& input,
                                    stats::Vector weights);

/// Marks the input's units as used by a successful fit in the lineage
/// ledger (treated_name → treated, or donor for placebo rotations; every
/// named donor → donor). No-op while lineage is disabled or names are
/// absent. Called by both estimators on success; safe inside parallel
/// tasks (events are captured and replayed deterministically).
void MarkFitLineage(const SyntheticControlInput& input);

}  // namespace sisyphus::causal
