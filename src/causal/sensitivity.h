// Sensitivity analysis for unobserved confounding.
//
// Adjusting for observed confounders is never the whole story on the
// Internet — "we cannot observe every relevant variable across layers and
// networks" (§4). These tools quantify how strong a *hidden* confounder
// would have to be to explain an estimate away, so studies can report
// robustness instead of asserting unconfoundedness.
//
//  - EValue (VanderWeele & Ding 2017): for a risk-ratio-scale effect, the
//    minimum strength of association (on both the treatment and outcome
//    side) an unmeasured confounder needs to fully account for it.
//  - LinearSensitivity (omitted-variable-bias form, Cinelli & Hazlett
//    flavored): how the point estimate moves as a function of the hidden
//    confounder's imbalance and outcome effect, plus the breakeven
//    frontier where the adjusted effect crosses zero.
#pragma once

#include <vector>

#include "core/result.h"

namespace sisyphus::causal {

struct EValueResult {
  double risk_ratio = 1.0;   ///< the (possibly inverted) RR used
  double e_value = 1.0;      ///< for the point estimate
  double e_value_ci = 1.0;   ///< for the CI bound closer to 1 (1 if CI crosses 1)
};

/// E-value for a risk ratio and its confidence interval. Ratios < 1 are
/// inverted first (the E-value is symmetric). Preconditions: rr > 0,
/// 0 < ci_lower <= rr <= ci_upper.
core::Result<EValueResult> EValueForRiskRatio(double rr, double ci_lower,
                                              double ci_upper);

/// Converts a difference-in-proportions effect (binary outcome) to an
/// approximate risk ratio for E-value computation: (p0 + effect) / p0.
/// Precondition: p0 in (0, 1), p0 + effect in (0, 1].
core::Result<double> RiskRatioFromProportions(double baseline_rate,
                                              double effect);

/// One point on a linear-model sensitivity grid: if a hidden confounder
/// shifts the treated-control covariate balance by `delta_confounder`
/// (in confounder SD units) and moves the outcome by `outcome_effect`
/// per SD, the bias it induces is their product.
struct SensitivityPoint {
  double delta_confounder = 0.0;
  double outcome_effect = 0.0;
  double induced_bias = 0.0;
  double adjusted_effect = 0.0;  ///< original - induced_bias
  bool sign_flips = false;
};

/// Evaluates the omitted-variable-bias grid for a point estimate.
/// `deltas` and `effects` must be non-empty.
std::vector<SensitivityPoint> LinearSensitivityGrid(
    double estimate, const std::vector<double>& deltas,
    const std::vector<double>& effects);

/// The breakeven product: a hidden confounder explains the entire
/// estimate iff delta * outcome_effect >= |estimate|. Returned as that
/// threshold, interpretable like a partial-R2 style robustness value.
double BreakevenConfounding(double estimate);

}  // namespace sisyphus::causal
