#include "causal/dag.h"

#include <algorithm>
#include <deque>

#include "core/error.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;
using core::Status;

NodeSet::NodeSet(std::initializer_list<NodeId> ids) {
  for (NodeId id : ids) Insert(id);
}

void NodeSet::Insert(NodeId id) {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) ids_.insert(it, id);
}

void NodeSet::Erase(NodeId id) {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) ids_.erase(it);
}

bool NodeSet::Contains(NodeId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

NodeId Dag::AddNode(std::string_view name, bool observed) {
  const std::string key(name);
  if (const auto it = by_name_.find(key); it != by_name_.end()) {
    return it->second;
  }
  const NodeId id(static_cast<NodeId::underlying_type>(names_.size()));
  names_.push_back(key);
  observed_.push_back(observed);
  parents_.emplace_back();
  children_.emplace_back();
  by_name_.emplace(key, id);
  return id;
}

Status Dag::AddEdge(NodeId from, NodeId to) {
  SISYPHUS_REQUIRE(from.value() < names_.size() && to.value() < names_.size(),
                   "AddEdge: unknown node id");
  if (from == to) {
    return Error(ErrorCode::kInvalidArgument,
                 "AddEdge: self-loop on '" + names_[from.value()] + "'");
  }
  if (HasEdge(from, to)) return Status::Ok();
  if (WouldCreateCycle(from, to)) {
    return Error(ErrorCode::kInvalidArgument,
                 "AddEdge: " + names_[from.value()] + " -> " +
                     names_[to.value()] + " would create a cycle");
  }
  children_[from.value()].push_back(to);
  parents_[to.value()].push_back(from);
  return Status::Ok();
}

Status Dag::AddEdge(std::string_view from, std::string_view to) {
  return AddEdge(AddNode(from), AddNode(to));
}

Status Dag::AddLatentConfounder(NodeId a, NodeId b) {
  SISYPHUS_REQUIRE(a.value() < names_.size() && b.value() < names_.size(),
                   "AddLatentConfounder: unknown node id");
  if (a == b) {
    return Error(ErrorCode::kInvalidArgument,
                 "AddLatentConfounder: a == b");
  }
  const std::string label =
      "U(" + names_[a.value()] + "," + names_[b.value()] + ")";
  const NodeId u = AddNode(label, /*observed=*/false);
  if (auto s = AddEdge(u, a); !s.ok()) return s;
  return AddEdge(u, b);
}

std::size_t Dag::EdgeCount() const {
  std::size_t count = 0;
  for (const auto& kids : children_) count += kids.size();
  return count;
}

Result<NodeId> Dag::Node(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Error(ErrorCode::kNotFound,
                 "Dag::Node: no variable named '" + std::string(name) + "'");
  }
  return it->second;
}

const std::string& Dag::Name(NodeId id) const {
  SISYPHUS_REQUIRE(id.value() < names_.size(), "Name: unknown node id");
  return names_[id.value()];
}

bool Dag::IsObserved(NodeId id) const {
  SISYPHUS_REQUIRE(id.value() < observed_.size(), "IsObserved: unknown id");
  return observed_[id.value()];
}

bool Dag::HasEdge(NodeId from, NodeId to) const {
  const auto& kids = children_[from.value()];
  return std::find(kids.begin(), kids.end(), to) != kids.end();
}

const std::vector<NodeId>& Dag::Parents(NodeId id) const {
  SISYPHUS_REQUIRE(id.value() < parents_.size(), "Parents: unknown id");
  return parents_[id.value()];
}

const std::vector<NodeId>& Dag::Children(NodeId id) const {
  SISYPHUS_REQUIRE(id.value() < children_.size(), "Children: unknown id");
  return children_[id.value()];
}

NodeSet Dag::Ancestors(NodeId id) const {
  NodeSet out;
  std::deque<NodeId> frontier(Parents(id).begin(), Parents(id).end());
  while (!frontier.empty()) {
    const NodeId current = frontier.front();
    frontier.pop_front();
    if (out.Contains(current)) continue;
    out.Insert(current);
    for (NodeId parent : Parents(current)) frontier.push_back(parent);
  }
  return out;
}

NodeSet Dag::AncestorsOfSet(const NodeSet& set) const {
  NodeSet out;
  for (NodeId id : set) {
    out.Insert(id);
    for (NodeId anc : Ancestors(id)) out.Insert(anc);
  }
  return out;
}

NodeSet Dag::Descendants(NodeId id) const {
  NodeSet out;
  std::deque<NodeId> frontier(Children(id).begin(), Children(id).end());
  while (!frontier.empty()) {
    const NodeId current = frontier.front();
    frontier.pop_front();
    if (out.Contains(current)) continue;
    out.Insert(current);
    for (NodeId child : Children(current)) frontier.push_back(child);
  }
  return out;
}

std::vector<NodeId> Dag::TopologicalOrder() const {
  std::vector<std::size_t> remaining(names_.size());
  std::deque<NodeId> ready;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    remaining[i] = parents_[i].size();
    if (remaining[i] == 0) ready.push_back(NodeId(static_cast<NodeId::underlying_type>(i)));
  }
  std::vector<NodeId> order;
  order.reserve(names_.size());
  while (!ready.empty()) {
    const NodeId current = ready.front();
    ready.pop_front();
    order.push_back(current);
    for (NodeId child : children_[current.value()]) {
      if (--remaining[child.value()] == 0) ready.push_back(child);
    }
  }
  // Acyclicity is a class invariant (AddEdge rejects cycles).
  SISYPHUS_REQUIRE(order.size() == names_.size(),
                   "TopologicalOrder: invariant violated");
  return order;
}

NodeSet Dag::ObservedNodes() const {
  NodeSet out;
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (observed_[i]) out.Insert(NodeId(static_cast<NodeId::underlying_type>(i)));
  return out;
}

std::vector<NodeId> Dag::AllNodes() const {
  std::vector<NodeId> out;
  out.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i)
    out.push_back(NodeId(static_cast<NodeId::underlying_type>(i)));
  return out;
}

bool Dag::WouldCreateCycle(NodeId from, NodeId to) const {
  // A cycle arises iff `from` is reachable from `to`.
  if (from == to) return true;
  std::deque<NodeId> frontier{to};
  NodeSet seen;
  while (!frontier.empty()) {
    const NodeId current = frontier.front();
    frontier.pop_front();
    if (seen.Contains(current)) continue;
    seen.Insert(current);
    for (NodeId child : children_[current.value()]) {
      if (child == from) return true;
      frontier.push_back(child);
    }
  }
  return false;
}

std::string Dag::ToDot(std::optional<NodeId> treatment,
                       std::optional<NodeId> outcome) const {
  std::string out = "digraph causal {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const NodeId id(static_cast<NodeId::underlying_type>(i));
    out += "  \"" + names_[i] + "\"";
    std::vector<std::string> attrs;
    if (!observed_[i]) attrs.push_back("style=dashed");
    if (treatment.has_value() && *treatment == id) {
      attrs.push_back("shape=box");
      attrs.push_back("label=\"" + names_[i] + " (treatment)\"");
    } else if (outcome.has_value() && *outcome == id) {
      attrs.push_back("shape=box");
      attrs.push_back("label=\"" + names_[i] + " (outcome)\"");
    }
    if (!attrs.empty()) {
      out += " [";
      for (std::size_t a = 0; a < attrs.size(); ++a) {
        if (a > 0) out += ", ";
        out += attrs[a];
      }
      out += "]";
    }
    out += ";\n";
  }
  for (std::size_t i = 0; i < names_.size(); ++i) {
    for (NodeId child : children_[i]) {
      out += "  \"" + names_[i] + "\" -> \"" + names_[child.value()] + "\"";
      if (!observed_[i]) out += " [style=dashed]";
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string Dag::ToText() const {
  std::string out;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    for (NodeId child : children_[i]) {
      out += names_[i] + " -> " + names_[child.value()] + "; ";
    }
  }
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (!observed_[i]) out += names_[i] + " [latent]; ";
  }
  if (!out.empty()) out.resize(out.size() - 1);  // trailing space
  return out;
}

}  // namespace sisyphus::causal
