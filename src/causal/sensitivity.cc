#include "causal/sensitivity.h"

#include <cmath>

#include "core/error.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

namespace {
double EValueOfRatio(double rr) {
  // VanderWeele & Ding: E = RR + sqrt(RR * (RR - 1)) for RR >= 1.
  if (rr < 1.0) rr = 1.0 / rr;
  if (rr == 1.0) return 1.0;
  return rr + std::sqrt(rr * (rr - 1.0));
}
}  // namespace

Result<EValueResult> EValueForRiskRatio(double rr, double ci_lower,
                                        double ci_upper) {
  if (rr <= 0.0 || ci_lower <= 0.0 || ci_upper < ci_lower ||
      rr < ci_lower || rr > ci_upper) {
    return Error(ErrorCode::kInvalidArgument,
                 "EValueForRiskRatio: need 0 < ci_lower <= rr <= ci_upper");
  }
  EValueResult out;
  out.risk_ratio = rr >= 1.0 ? rr : 1.0 / rr;
  out.e_value = EValueOfRatio(rr);
  // CI side closer to the null after orienting the effect above 1.
  if (ci_lower <= 1.0 && ci_upper >= 1.0) {
    out.e_value_ci = 1.0;  // CI crosses the null: no robustness to report
  } else if (rr >= 1.0) {
    out.e_value_ci = EValueOfRatio(ci_lower);
  } else {
    out.e_value_ci = EValueOfRatio(ci_upper);
  }
  return out;
}

Result<double> RiskRatioFromProportions(double baseline_rate, double effect) {
  const double treated_rate = baseline_rate + effect;
  if (baseline_rate <= 0.0 || baseline_rate >= 1.0 || treated_rate <= 0.0 ||
      treated_rate > 1.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "RiskRatioFromProportions: rates outside (0,1]");
  }
  return treated_rate / baseline_rate;
}

std::vector<SensitivityPoint> LinearSensitivityGrid(
    double estimate, const std::vector<double>& deltas,
    const std::vector<double>& effects) {
  SISYPHUS_REQUIRE(!deltas.empty() && !effects.empty(),
                   "LinearSensitivityGrid: empty grid axes");
  std::vector<SensitivityPoint> out;
  out.reserve(deltas.size() * effects.size());
  for (double delta : deltas) {
    for (double effect : effects) {
      SensitivityPoint point;
      point.delta_confounder = delta;
      point.outcome_effect = effect;
      point.induced_bias = delta * effect;
      point.adjusted_effect = estimate - point.induced_bias;
      point.sign_flips =
          estimate != 0.0 &&
          ((estimate > 0.0) != (point.adjusted_effect > 0.0) ||
           point.adjusted_effect == 0.0);
      out.push_back(point);
    }
  }
  return out;
}

double BreakevenConfounding(double estimate) { return std::abs(estimate); }

}  // namespace sisyphus::causal
