#include "causal/implications.h"

#include <algorithm>
#include <cmath>

#include "causal/dseparation.h"
#include "core/error.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/matrix.h"
#include "stats/regression.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

std::string ImpliedIndependence::ToText(const Dag& dag) const {
  std::string out = dag.Name(x) + " _||_ " + dag.Name(y);
  if (!given.empty()) {
    out += " | ";
    bool first = true;
    for (NodeId id : given) {
      if (!first) out += ", ";
      out += dag.Name(id);
      first = false;
    }
  }
  return out;
}

std::vector<ImpliedIndependence> ImpliedIndependencies(const Dag& dag) {
  const NodeSet observed_set = dag.ObservedNodes();
  std::vector<NodeId> observed(observed_set.begin(), observed_set.end());
  std::sort(observed.begin(), observed.end(), [&](NodeId a, NodeId b) {
    return dag.Name(a) < dag.Name(b);
  });
  std::vector<ImpliedIndependence> out;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    for (std::size_t j = i + 1; j < observed.size(); ++j) {
      const NodeId x = observed[i];
      const NodeId y = observed[j];
      if (dag.HasEdge(x, y) || dag.HasEdge(y, x)) continue;
      // Candidate conditioning set: observed parents of both.
      NodeSet given;
      for (NodeId parent : dag.Parents(x)) {
        if (dag.IsObserved(parent) && parent != y) given.Insert(parent);
      }
      for (NodeId parent : dag.Parents(y)) {
        if (dag.IsObserved(parent) && parent != x) given.Insert(parent);
      }
      // Latent parents can keep the pair dependent; only emit statements
      // the graph actually entails.
      if (!IsDSeparated(dag, x, y, given)) continue;
      out.push_back({x, y, std::move(given)});
    }
  }
  return out;
}

Result<double> PartialCorrelation(const Dataset& data, std::string_view x,
                                  std::string_view y,
                                  const std::vector<std::string>& given) {
  auto xs = data.Column(x);
  if (!xs.ok()) return xs.error();
  auto ys = data.Column(y);
  if (!ys.ok()) return ys.error();
  if (given.empty()) {
    return stats::PearsonCorrelation(xs.value(), ys.value());
  }
  std::vector<stats::Vector> controls;
  for (const auto& name : given) {
    auto col = data.Column(name);
    if (!col.ok()) return col.error();
    controls.emplace_back(col.value().begin(), col.value().end());
  }
  const stats::Matrix design = stats::Matrix::FromColumns(controls);
  auto fit_x = stats::Ols(design, xs.value());
  if (!fit_x.ok()) return fit_x.error();
  auto fit_y = stats::Ols(design, ys.value());
  if (!fit_y.ok()) return fit_y.error();
  const auto& rx = fit_x.value().residuals;
  const auto& ry = fit_y.value().residuals;
  if (stats::StdDev(rx) <= 0.0 || stats::StdDev(ry) <= 0.0) {
    return Error(ErrorCode::kNumericalFailure,
                 "PartialCorrelation: degenerate residuals");
  }
  return stats::PearsonCorrelation(rx, ry);
}

Result<IndependenceTest> TestConditionalIndependence(
    const Dataset& data, std::string_view x, std::string_view y,
    const std::vector<std::string>& given) {
  auto rho = PartialCorrelation(data, x, y, given);
  if (!rho.ok()) return rho.error();
  const double n = static_cast<double>(data.rows());
  const double dof = n - static_cast<double>(given.size()) - 3.0;
  if (dof <= 0.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "TestConditionalIndependence: too few observations for "
                 "the conditioning set");
  }
  IndependenceTest out;
  out.n = data.rows();
  out.partial_correlation =
      std::clamp(rho.value(), -0.999999, 0.999999);
  out.z_statistic = 0.5 *
                    std::log((1.0 + out.partial_correlation) /
                             (1.0 - out.partial_correlation)) *
                    std::sqrt(dof);
  out.p_value = stats::TwoSidedZPValue(out.z_statistic);
  return out;
}

Result<std::vector<ImplicationResult>> TestImpliedIndependencies(
    const Dag& dag, const Dataset& data, double alpha, std::size_t* skipped) {
  if (alpha <= 0.0 || alpha >= 1.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "TestImpliedIndependencies: alpha outside (0,1)");
  }
  std::size_t skipped_count = 0;
  std::vector<ImplicationResult> out;
  for (const auto& implication : ImpliedIndependencies(dag)) {
    std::vector<std::string> given;
    bool measurable = data.HasColumn(dag.Name(implication.x)) &&
                      data.HasColumn(dag.Name(implication.y));
    for (NodeId id : implication.given) {
      if (!data.HasColumn(dag.Name(id))) {
        measurable = false;
        break;
      }
      given.push_back(dag.Name(id));
    }
    if (!measurable) {
      ++skipped_count;
      continue;
    }
    auto test = TestConditionalIndependence(
        data, dag.Name(implication.x), dag.Name(implication.y), given);
    if (!test.ok()) return test.error();
    ImplicationResult result;
    result.implication = implication;
    result.test = test.value();
    result.rejected = test.value().p_value < alpha;
    out.push_back(std::move(result));
  }
  if (skipped != nullptr) *skipped = skipped_count;
  return out;
}

}  // namespace sisyphus::causal
