// Average-treatment-effect estimators on tabular data.
//
// These implement the adjustment strategies the identification engine
// prescribes: once Identify() returns a backdoor set, any of the
// estimators here turns it into a number. All take a Dataset, a binary
// (0/1) treatment column, an outcome column, and covariate column names.
//
//  - NaiveDifference      E[Y|T=1] - E[Y|T=0]; biased under confounding —
//                         included deliberately as the paper's foil.
//  - RegressionAdjustment OLS of Y on T and covariates.
//  - Stratification       the paper's "compare latencies across routes only
//                         when C is similar": quantile-bin the covariates,
//                         compare within bins, weight by bin mass.
//  - InversePropensity    Horvitz–Thompson with logistic propensity scores
//                         (stabilized, clipped).
//  - NearestNeighborMatch 1-NN matching with replacement on standardized
//                         covariates (ATT).
//  - DifferenceInDifferences two-period panel DiD.
#pragma once

#include <string>
#include <vector>

#include "causal/dataset.h"
#include "core/result.h"

namespace sisyphus::causal {

/// A point estimate with a (method-specific) standard error.
struct EffectEstimate {
  double effect = 0.0;
  double standard_error = 0.0;
  std::string method;
  std::size_t n = 0;

  /// effect +/- z * se.
  double ci_lower(double z = 1.96) const { return effect - z * standard_error; }
  double ci_upper(double z = 1.96) const { return effect + z * standard_error; }
};

/// Unadjusted difference in means (the correlational answer).
core::Result<EffectEstimate> NaiveDifference(const Dataset& data,
                                             std::string_view treatment,
                                             std::string_view outcome);

/// OLS of outcome on [treatment, covariates]; effect = treatment
/// coefficient; SE = HC1 robust.
core::Result<EffectEstimate> RegressionAdjustment(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates);

struct StratificationOptions {
  std::size_t bins_per_covariate = 5;
  /// Strata with fewer than this many units in either arm are dropped
  /// (their mass is excluded; the estimate is then over the overlap
  /// population).
  std::size_t min_per_arm = 2;
};

/// Coarsened stratification on the covariates.
core::Result<EffectEstimate> Stratification(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates,
    const StratificationOptions& options = {});

struct IpwOptions {
  /// Propensity scores are clipped into [clip, 1-clip] to bound weights.
  double clip = 0.01;
  bool stabilized = true;
};

/// Inverse-propensity weighting with a logistic propensity model.
core::Result<EffectEstimate> InversePropensityWeighting(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const IpwOptions& options = {});

/// 1-nearest-neighbor matching with replacement on standardized
/// covariates. Estimates the ATT (effect on the treated).
core::Result<EffectEstimate> NearestNeighborMatching(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates);

/// Two-period difference-in-differences: columns are unit-level
/// (treated 0/1, pre outcome, post outcome).
core::Result<EffectEstimate> DifferenceInDifferences(
    const Dataset& data, std::string_view treated_indicator,
    std::string_view outcome_pre, std::string_view outcome_post);

/// Augmented IPW (doubly robust): combines outcome regressions per arm
/// with propensity weighting; consistent if EITHER model is right.
/// Linear outcome model + logistic propensity, both on `covariates`.
core::Result<EffectEstimate> AugmentedIpw(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const IpwOptions& options = {});

/// Frontdoor (mediation) estimator for the linear case: when Identify()
/// returns kFrontdoor with mediator m, the effect of t on y is
/// (coefficient of t in m ~ t) * (coefficient of m in y ~ m + t).
/// Standard error by the delta method. Works for continuous or binary t.
core::Result<EffectEstimate> FrontdoorEstimate(const Dataset& data,
                                               std::string_view treatment,
                                               std::string_view mediator,
                                               std::string_view outcome);

/// Dataset-level 2SLS wrapper: when Identify() returns kInstrument, this
/// estimates the effect using the named instrument and control columns.
/// Reports the first-stage F in the method string when the instrument is
/// weak ("iv[WEAK F=...]").
core::Result<EffectEstimate> InstrumentalVariableEstimate(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& instruments,
    const std::vector<std::string>& controls = {});

}  // namespace sisyphus::causal
