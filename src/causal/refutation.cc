#include "causal/refutation.h"

#include <cmath>

#include "core/error.h"
#include "stats/descriptive.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

EstimatorFn MakeRegressionAdjustmentEstimator() {
  return [](const Dataset& data, std::string_view treatment,
            std::string_view outcome,
            const std::vector<std::string>& covariates) {
    return RegressionAdjustment(data, treatment, outcome, covariates);
  };
}

EstimatorFn MakeIpwEstimator(const IpwOptions& options) {
  return [options](const Dataset& data, std::string_view treatment,
                   std::string_view outcome,
                   const std::vector<std::string>& covariates) {
    return InversePropensityWeighting(data, treatment, outcome, covariates,
                                      options);
  };
}

EstimatorFn MakeStratificationEstimator(const StratificationOptions& options) {
  return [options](const Dataset& data, std::string_view treatment,
                   std::string_view outcome,
                   const std::vector<std::string>& covariates) {
    return Stratification(data, treatment, outcome, covariates, options);
  };
}

namespace {

/// Shared scaffolding: run `perturb` `replicates` times, collect effects.
Result<RefutationResult> RunReplicates(
    const std::string& refuter, const Dataset& data,
    std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    const RefutationOptions& options,
    const std::function<Result<EffectEstimate>(std::size_t)>& perturbed) {
  auto original = estimator(data, treatment, outcome, covariates);
  if (!original.ok()) return original.error();

  std::vector<double> effects;
  effects.reserve(options.replicates);
  for (std::size_t rep = 0; rep < options.replicates; ++rep) {
    auto estimate = perturbed(rep);
    if (!estimate.ok()) continue;  // e.g. a degenerate resample
    effects.push_back(estimate.value().effect);
  }
  if (effects.size() < 3) {
    return Error(ErrorCode::kNumericalFailure,
                 refuter + ": fewer than 3 successful replicates");
  }
  RefutationResult out;
  out.refuter = refuter;
  out.original_effect = original.value().effect;
  out.refuted_effect = stats::Mean(effects);
  out.spread = stats::StdDev(effects);
  return out;
}

}  // namespace

Result<RefutationResult> PlaceboTreatmentRefuter(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options) {
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  double p_treated = 0.0;
  for (double v : t.value()) p_treated += v;
  p_treated /= static_cast<double>(data.rows());

  auto result = RunReplicates(
      "placebo_treatment", data, treatment, outcome, covariates, estimator,
      options, [&](std::size_t) -> Result<EffectEstimate> {
        Dataset copy = data;
        std::vector<double> placebo(data.rows());
        for (auto& v : placebo) v = rng.Bernoulli(p_treated) ? 1.0 : 0.0;
        if (auto s = copy.AddColumn("placebo_treatment_", std::move(placebo));
            !s.ok()) {
          return s.error();
        }
        return estimator(copy, "placebo_treatment_", outcome, covariates);
      });
  if (!result.ok()) return result.error();
  RefutationResult out = std::move(result).value();
  const double bound =
      options.tolerance_abs + options.tolerance_spread * out.spread;
  out.passed = std::abs(out.refuted_effect) <= std::max(bound, 1e-12);
  out.detail = "randomized treatment should carry no effect; |refuted| = " +
               std::to_string(std::abs(out.refuted_effect)) +
               " vs bound " + std::to_string(bound);
  return out;
}

Result<RefutationResult> RandomCommonCauseRefuter(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options) {
  auto result = RunReplicates(
      "random_common_cause", data, treatment, outcome, covariates, estimator,
      options, [&](std::size_t) -> Result<EffectEstimate> {
        Dataset copy = data;
        std::vector<double> noise(data.rows());
        for (auto& v : noise) v = rng.Gaussian();
        if (auto s = copy.AddColumn("random_cause_", std::move(noise));
            !s.ok()) {
          return s.error();
        }
        std::vector<std::string> augmented = covariates;
        augmented.push_back("random_cause_");
        return estimator(copy, treatment, outcome, augmented);
      });
  if (!result.ok()) return result.error();
  RefutationResult out = std::move(result).value();
  const double shift = std::abs(out.refuted_effect - out.original_effect);
  const double bound = options.tolerance_abs +
                       options.tolerance_spread * std::max(out.spread, 1e-12);
  out.passed = shift <= bound;
  out.detail = "an irrelevant covariate should not move the estimate; "
               "shift = " + std::to_string(shift) + " vs bound " +
               std::to_string(bound);
  return out;
}

Result<RefutationResult> SubsetRefuter(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options) {
  if (options.subset_fraction <= 0.0 || options.subset_fraction > 1.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "SubsetRefuter: subset_fraction outside (0,1]");
  }
  auto result = RunReplicates(
      "data_subset", data, treatment, outcome, covariates, estimator, options,
      [&](std::size_t) -> Result<EffectEstimate> {
        std::vector<bool> keep(data.rows());
        for (std::size_t i = 0; i < data.rows(); ++i) {
          keep[i] = rng.Bernoulli(options.subset_fraction);
        }
        return estimator(data.Filter(keep), treatment, outcome, covariates);
      });
  if (!result.ok()) return result.error();
  RefutationResult out = std::move(result).value();
  const double shift = std::abs(out.refuted_effect - out.original_effect);
  const double bound = options.tolerance_abs +
                       options.tolerance_spread * std::max(out.spread, 1e-12);
  out.passed = shift <= bound;
  out.detail = "the estimate should be stable across random subsets; "
               "|subset mean - original| = " + std::to_string(shift) +
               " vs bound " + std::to_string(bound);
  return out;
}

Result<std::vector<RefutationResult>> RunRefutationBattery(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options) {
  std::vector<RefutationResult> out;
  auto placebo = PlaceboTreatmentRefuter(data, treatment, outcome, covariates,
                                         estimator, rng, options);
  if (!placebo.ok()) return placebo.error();
  out.push_back(std::move(placebo).value());
  auto common = RandomCommonCauseRefuter(data, treatment, outcome, covariates,
                                         estimator, rng, options);
  if (!common.ok()) return common.error();
  out.push_back(std::move(common).value());
  auto subset = SubsetRefuter(data, treatment, outcome, covariates, estimator,
                              rng, options);
  if (!subset.ok()) return subset.error();
  out.push_back(std::move(subset).value());
  return out;
}

}  // namespace sisyphus::causal
