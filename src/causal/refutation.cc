#include "causal/refutation.h"

#include <cmath>
#include <limits>
#include <optional>

#include "core/error.h"
#include "core/parallel.h"
#include "obs/lineage.h"
#include "stats/descriptive.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

EstimatorFn MakeRegressionAdjustmentEstimator() {
  return [](const Dataset& data, std::string_view treatment,
            std::string_view outcome,
            const std::vector<std::string>& covariates) {
    return RegressionAdjustment(data, treatment, outcome, covariates);
  };
}

EstimatorFn MakeIpwEstimator(const IpwOptions& options) {
  return [options](const Dataset& data, std::string_view treatment,
                   std::string_view outcome,
                   const std::vector<std::string>& covariates) {
    return InversePropensityWeighting(data, treatment, outcome, covariates,
                                      options);
  };
}

EstimatorFn MakeStratificationEstimator(const StratificationOptions& options) {
  return [options](const Dataset& data, std::string_view treatment,
                   std::string_view outcome,
                   const std::vector<std::string>& covariates) {
    return Stratification(data, treatment, outcome, covariates, options);
  };
}

namespace {

/// Shared scaffolding: run `perturbed` `replicates` times, collect effects.
/// Each replicate draws from its own generator forked off `rng` in replicate
/// order (seed-splitting, DESIGN.md §7), so replicates can run across the
/// pool while the realized perturbations — and thus the refuted effect —
/// stay a pure function of the incoming stream, independent of thread count.
Result<RefutationResult> RunReplicates(
    const std::string& refuter, const Dataset& data,
    std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    const RefutationOptions& options, core::Rng& rng,
    const std::function<Result<EffectEstimate>(std::size_t, core::Rng&)>&
        perturbed) {
  auto original = estimator(data, treatment, outcome, covariates);
  if (!original.ok()) return original.error();

  std::vector<std::uint64_t> replicate_seeds(options.replicates);
  for (auto& seed : replicate_seeds) seed = rng.Next();
  const auto replicate_effects = core::ParallelMap(
      options.replicates,
      [&](std::size_t rep) -> std::optional<double> {
        core::Rng replicate_rng(replicate_seeds[rep]);
        auto estimate = perturbed(rep, replicate_rng);
        if (!estimate.ok()) return std::nullopt;  // e.g. a degenerate resample
        return estimate.value().effect;
      });
  std::vector<double> effects;
  effects.reserve(options.replicates);
  for (const auto& effect : replicate_effects) {
    if (effect.has_value()) effects.push_back(*effect);
  }
  if (effects.size() < 3) {
    return Error(ErrorCode::kNumericalFailure,
                 refuter + ": fewer than 3 successful replicates");
  }
  RefutationResult out;
  out.refuter = refuter;
  out.original_effect = original.value().effect;
  out.refuted_effect = stats::Mean(effects);
  out.spread = stats::StdDev(effects);
  return out;
}

}  // namespace

Result<RefutationResult> PlaceboTreatmentRefuter(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options) {
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  double p_treated = 0.0;
  for (double v : t.value()) p_treated += v;
  p_treated /= static_cast<double>(data.rows());

  auto result = RunReplicates(
      "placebo_treatment", data, treatment, outcome, covariates, estimator,
      options, rng,
      [&](std::size_t, core::Rng& rep_rng) -> Result<EffectEstimate> {
        Dataset copy = data;
        std::vector<double> placebo(data.rows());
        for (auto& v : placebo) v = rep_rng.Bernoulli(p_treated) ? 1.0 : 0.0;
        if (auto s = copy.AddColumn("placebo_treatment_", std::move(placebo));
            !s.ok()) {
          return s.error();
        }
        return estimator(copy, "placebo_treatment_", outcome, covariates);
      });
  if (!result.ok()) return result.error();
  RefutationResult out = std::move(result).value();
  const double bound =
      options.tolerance_abs + options.tolerance_spread * out.spread;
  out.passed = std::abs(out.refuted_effect) <= std::max(bound, 1e-12);
  out.detail = "randomized treatment should carry no effect; |refuted| = " +
               std::to_string(std::abs(out.refuted_effect)) +
               " vs bound " + std::to_string(bound);
  return out;
}

Result<RefutationResult> RandomCommonCauseRefuter(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options) {
  auto result = RunReplicates(
      "random_common_cause", data, treatment, outcome, covariates, estimator,
      options, rng,
      [&](std::size_t, core::Rng& rep_rng) -> Result<EffectEstimate> {
        Dataset copy = data;
        std::vector<double> noise(data.rows());
        for (auto& v : noise) v = rep_rng.Gaussian();
        if (auto s = copy.AddColumn("random_cause_", std::move(noise));
            !s.ok()) {
          return s.error();
        }
        std::vector<std::string> augmented = covariates;
        augmented.push_back("random_cause_");
        return estimator(copy, treatment, outcome, augmented);
      });
  if (!result.ok()) return result.error();
  RefutationResult out = std::move(result).value();
  const double shift = std::abs(out.refuted_effect - out.original_effect);
  const double bound = options.tolerance_abs +
                       options.tolerance_spread * std::max(out.spread, 1e-12);
  out.passed = shift <= bound;
  out.detail = "an irrelevant covariate should not move the estimate; "
               "shift = " + std::to_string(shift) + " vs bound " +
               std::to_string(bound);
  return out;
}

Result<RefutationResult> SubsetRefuter(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options) {
  if (options.subset_fraction <= 0.0 || options.subset_fraction > 1.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "SubsetRefuter: subset_fraction outside (0,1]");
  }
  auto result = RunReplicates(
      "data_subset", data, treatment, outcome, covariates, estimator, options,
      rng, [&](std::size_t, core::Rng& rep_rng) -> Result<EffectEstimate> {
        std::vector<bool> keep(data.rows());
        for (std::size_t i = 0; i < data.rows(); ++i) {
          keep[i] = rep_rng.Bernoulli(options.subset_fraction);
        }
        return estimator(data.Filter(keep), treatment, outcome, covariates);
      });
  if (!result.ok()) return result.error();
  RefutationResult out = std::move(result).value();
  const double shift = std::abs(out.refuted_effect - out.original_effect);
  const double bound = options.tolerance_abs +
                       options.tolerance_spread * std::max(out.spread, 1e-12);
  out.passed = shift <= bound;
  out.detail = "the estimate should be stable across random subsets; "
               "|subset mean - original| = " + std::to_string(shift) +
               " vs bound " + std::to_string(bound);
  return out;
}

Result<std::vector<RefutationResult>> RunRefutationBattery(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options) {
  // The three refuters are independent given their forked generators, so
  // they run concurrently; forking happens here, in fixed order, before any
  // task starts, and errors are reported in refuter order — the serial and
  // parallel results coincide.
  core::Rng placebo_rng = rng.Split();
  core::Rng common_rng = rng.Split();
  core::Rng subset_rng = rng.Split();
  using RefuterResult = std::optional<Result<RefutationResult>>;
  const auto results = core::ParallelMap(3, [&](std::size_t i) -> RefuterResult {
    switch (i) {
      case 0:
        return PlaceboTreatmentRefuter(data, treatment, outcome, covariates,
                                       estimator, placebo_rng, options);
      case 1:
        return RandomCommonCauseRefuter(data, treatment, outcome, covariates,
                                        estimator, common_rng, options);
      default:
        return SubsetRefuter(data, treatment, outcome, covariates, estimator,
                             subset_rng, options);
    }
  });
  std::vector<RefutationResult> out;
  for (const RefuterResult& result : results) {
    if (!result->ok()) return result->error();
    out.push_back(result->value());
    // Refutations are estimates about estimates: register each verdict so
    // the lineage artifact shows what was (not) refuted. No unit backing
    // (the battery works on tabular Datasets, not panel units) and no
    // p-value (NaN serializes as null).
    SISYPHUS_LINEAGE(AddEstimate(
        "refute." + out.back().refuter, /*treated_unit=*/"",
        /*donor_units=*/{}, out.back().refuted_effect,
        std::numeric_limits<double>::quiet_NaN()));
  }
  return out;
}

}  // namespace sisyphus::causal
