// CSV import for Datasets — the entry point for analyzing real
// measurement exports (M-Lab BigQuery dumps, RIPE Atlas results) with the
// causal toolkit.
//
// Format: first line is the header; all fields numeric (quoted fields
// allowed, embedded quotes doubled). Empty fields are rejected — impute
// upstream, explicitly, so missingness decisions stay visible.
#pragma once

#include <string>
#include <string_view>

#include "causal/dataset.h"
#include "core/result.h"

namespace sisyphus::causal {

/// Parses CSV text into a Dataset. Fails with kParseError (line/column
/// context in the message) on ragged rows, non-numeric or empty fields,
/// duplicate or missing headers.
core::Result<Dataset> ParseCsvDataset(std::string_view text);

/// Reads and parses a CSV file. kInvalidArgument if unreadable.
core::Result<Dataset> ReadCsvDataset(const std::string& path);

}  // namespace sisyphus::causal
