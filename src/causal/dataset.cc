#include "causal/dataset.h"

#include <cstdio>

#include "core/error.h"
#include "core/logging.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;
using core::Status;

Status Dataset::AddColumn(std::string_view name, std::vector<double> values) {
  if (!columns_.empty() && values.size() != rows_) {
    return Error(ErrorCode::kInvalidArgument,
                 "AddColumn: '" + std::string(name) + "' has " +
                     std::to_string(values.size()) + " rows, table has " +
                     std::to_string(rows_));
  }
  const std::string key(name);
  if (const auto it = index_.find(key); it != index_.end()) {
    columns_[it->second] = std::move(values);
    return Status::Ok();
  }
  if (columns_.empty()) rows_ = values.size();
  index_.emplace(key, names_.size());
  names_.push_back(key);
  columns_.push_back(std::move(values));
  return Status::Ok();
}

bool Dataset::HasColumn(std::string_view name) const {
  return index_.count(std::string(name)) > 0;
}

Result<std::span<const double>> Dataset::Column(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return Error(ErrorCode::kNotFound,
                 "Dataset::Column: no column '" + std::string(name) + "'");
  }
  return std::span<const double>(columns_[it->second]);
}

std::span<const double> Dataset::ColumnOrDie(std::string_view name) const {
  auto col = Column(name);
  SISYPHUS_REQUIRE(col.ok(), "ColumnOrDie: missing column " + std::string(name));
  return col.value();
}

Dataset Dataset::Filter(const std::vector<bool>& keep) const {
  SISYPHUS_REQUIRE(keep.size() == rows_, "Filter: mask size mismatch");
  Dataset out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::vector<double> values;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (keep[r]) values.push_back(columns_[c][r]);
    }
    const auto status = out.AddColumn(names_[c], std::move(values));
    SISYPHUS_REQUIRE(status.ok(), "Filter: column copy failed");
  }
  (SISYPHUS_LOG(kDebug) << "dataset filtered")
      .With("rows_in", rows_)
      .With("rows_out", out.rows());
  return out;
}

Dataset Dataset::FilterEquals(std::string_view name, double value) const {
  const auto col = ColumnOrDie(name);
  std::vector<bool> keep(rows_);
  for (std::size_t r = 0; r < rows_; ++r) keep[r] = col[r] == value;
  return Filter(keep);
}

std::string Dataset::Head(std::size_t n) const {
  std::string out;
  for (const auto& name : names_) out += name + "\t";
  out += "\n";
  char buffer[64];
  for (std::size_t r = 0; r < std::min(n, rows_); ++r) {
    for (const auto& col : columns_) {
      std::snprintf(buffer, sizeof(buffer), "%.4g\t", col[r]);
      out += buffer;
    }
    out += "\n";
  }
  return out;
}

}  // namespace sisyphus::causal
