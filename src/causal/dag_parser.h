// Text DSL for causal DAGs (dagitty-inspired).
//
// Grammar (statements separated by ';' or newline, '#' starts a comment):
//
//   statement := chain | bidirected | latent_decl
//   chain     := NAME ("->" NAME)+          e.g.  C -> R -> L
//   bidirected:= NAME "<->" NAME            latent confounder (creates an
//                                           unobserved common parent)
//   latent_decl := NAME "[latent]"          marks a variable unobserved
//   NAME      := [A-Za-z_][A-Za-z0-9_.]*
//
// Example (the paper's running example with latent policy confounding):
//   ParseDag("Congestion -> Route; Congestion -> Latency; Route -> Latency;"
//            "Policy [latent]; Policy -> Route")
#pragma once

#include <string_view>

#include "causal/dag.h"
#include "core/result.h"

namespace sisyphus::causal {

/// Parses the DSL into a Dag. Fails with kParseError (message includes
/// offset and what was expected) or kInvalidArgument (cycle).
core::Result<Dag> ParseDag(std::string_view text);

}  // namespace sisyphus::causal
