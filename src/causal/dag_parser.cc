#include "causal/dag_parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

namespace {

enum class TokenKind { kName, kArrow, kBidirected, kLatentTag, kSemicolon, kEnd };

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c == '#') {  // comment to end of line
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
        continue;
      }
      if (c == '\n' || c == ';') {
        out.push_back({TokenKind::kSemicolon, ";", pos_});
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (input_.substr(pos_).starts_with("<->")) {
        out.push_back({TokenKind::kBidirected, "<->", pos_});
        pos_ += 3;
        continue;
      }
      if (input_.substr(pos_).starts_with("->")) {
        out.push_back({TokenKind::kArrow, "->", pos_});
        pos_ += 2;
        continue;
      }
      if (input_.substr(pos_).starts_with("[latent]")) {
        out.push_back({TokenKind::kLatentTag, "[latent]", pos_});
        pos_ += 8;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        const std::size_t start = pos_;
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_' || input_[pos_] == '.')) {
          ++pos_;
        }
        out.push_back({TokenKind::kName,
                       std::string(input_.substr(start, pos_ - start)), start});
        continue;
      }
      return Error(ErrorCode::kParseError,
                   "unexpected character '" + std::string(1, c) +
                       "' at offset " + std::to_string(pos_));
    }
    out.push_back({TokenKind::kEnd, "", input_.size()});
    return out;
  }

 private:
  std::string_view input_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Dag> ParseDag(std::string_view text) {
  auto tokens = Lexer(text).Tokenize();
  if (!tokens.ok()) return tokens.error();
  const auto& ts = tokens.value();

  Dag dag;
  std::size_t i = 0;
  auto error_at = [&](const std::string& what) {
    return Error(ErrorCode::kParseError,
                 what + " at offset " + std::to_string(ts[i].offset));
  };

  while (ts[i].kind != TokenKind::kEnd) {
    if (ts[i].kind == TokenKind::kSemicolon) {  // empty statement
      ++i;
      continue;
    }
    if (ts[i].kind != TokenKind::kName) {
      return error_at("expected variable name");
    }
    const std::string first = ts[i].text;
    ++i;

    if (ts[i].kind == TokenKind::kLatentTag) {
      // NAME [latent]
      dag.AddNode(first, /*observed=*/false);
      ++i;
    } else if (ts[i].kind == TokenKind::kBidirected) {
      // NAME <-> NAME
      ++i;
      if (ts[i].kind != TokenKind::kName) {
        return error_at("expected variable name after '<->'");
      }
      const NodeId a = dag.AddNode(first);
      const NodeId b = dag.AddNode(ts[i].text);
      if (auto s = dag.AddLatentConfounder(a, b); !s.ok()) return s.error();
      ++i;
    } else if (ts[i].kind == TokenKind::kArrow) {
      // Chain: NAME (-> NAME)+
      std::string previous = first;
      while (ts[i].kind == TokenKind::kArrow) {
        ++i;
        if (ts[i].kind != TokenKind::kName) {
          return error_at("expected variable name after '->'");
        }
        if (auto s = dag.AddEdge(previous, ts[i].text); !s.ok()) {
          return s.error();
        }
        previous = ts[i].text;
        ++i;
      }
    } else if (ts[i].kind == TokenKind::kSemicolon ||
               ts[i].kind == TokenKind::kEnd) {
      // Bare declaration: NAME
      dag.AddNode(first);
    } else {
      return error_at("expected '->', '<->', '[latent]' or ';'");
    }

    if (ts[i].kind == TokenKind::kSemicolon) {
      ++i;
    } else if (ts[i].kind != TokenKind::kEnd) {
      return error_at("expected ';' between statements");
    }
  }
  return dag;
}

}  // namespace sisyphus::causal
