// The ladder of causation (Pearl), as a small query API.
//
// The paper's §3 organizes causal questions into three rungs; this facade
// makes the distinction executable on the routing/latency running example:
//
//   rung 1  Association      E[L | R = r]        — from observational data
//   rung 2  Intervention     E[L | do(R = r)]    — from an SCM (or a real
//                                                  experiment)
//   rung 3  Counterfactual   L_{R=r'}(u) given the observed unit u
//
// Comparing rung-1 and rung-2 answers on the same model quantifies the
// confounding bias that a naive reading of the data would absorb.
#pragma once

#include <optional>
#include <string>

#include "causal/dataset.h"
#include "causal/scm.h"
#include "core/result.h"
#include "core/rng.h"

namespace sisyphus::causal {

/// Rung 1: E[outcome | treatment in [value - halfwidth, value + halfwidth]]
/// estimated from observational rows. For binary treatments use
/// halfwidth = 0. Fails (kPrecondition) when no row matches.
core::Result<double> Association(const Dataset& data,
                                 std::string_view treatment,
                                 std::string_view outcome, double value,
                                 double halfwidth = 0.0);

/// Rung 2: E[outcome | do(treatment = value)] by Monte Carlo on the SCM.
core::Result<double> InterventionalExpectation(const Scm& scm,
                                               std::string_view treatment,
                                               std::string_view outcome,
                                               double value, std::size_t draws,
                                               core::Rng& rng);

/// Rung 3: the outcome the specific unit `factual` would have had, had
/// treatment been `value` (abduction-action-prediction).
core::Result<double> CounterfactualOutcome(
    const Scm& scm, const std::unordered_map<std::string, double>& factual,
    std::string_view treatment, std::string_view outcome, double value);

/// Side-by-side answers for one treatment contrast, for reporting.
struct LadderComparison {
  double association_high = 0.0;
  double association_low = 0.0;
  double interventional_high = 0.0;
  double interventional_low = 0.0;
  /// association_high - association_low: what the observational contrast
  /// suggests.
  double associational_contrast() const {
    return association_high - association_low;
  }
  /// interventional_high - interventional_low: the causal effect.
  double interventional_contrast() const {
    return interventional_high - interventional_low;
  }
  /// The confounding bias a naive analysis would report as "effect".
  double confounding_bias() const {
    return associational_contrast() - interventional_contrast();
  }
};

/// Computes both rungs for treatment values {low, high}: observational
/// conditioning on `data`, interventional expectation on `scm`.
core::Result<LadderComparison> CompareLadderRungs(
    const Scm& scm, const Dataset& data, std::string_view treatment,
    std::string_view outcome, double high, double low, double halfwidth,
    std::size_t draws, core::Rng& rng);

}  // namespace sisyphus::causal
