// Partial identification: Manski-style bounds on treatment effects.
//
// The paper closes §4 by asking for "a structured way to articulate what
// can, and cannot, be inferred from the data." When no adjustment set,
// instrument, or donor pool exists, a point estimate is unwarranted — but
// the data still BOUND the effect. For a binary treatment and an outcome
// bounded in [y_min, y_max]:
//
//   no assumptions        ATE in an interval of width exactly
//                         (y_max - y_min) — never empty, never a point;
//   + monotone treatment  effect >= 0 by assumption: lower bound clipped
//     response (MTR)      at 0;
//   + monotone treatment  units that select treatment have weakly higher
//     selection (MTS)     potential outcomes: the naive contrast becomes
//                         an UPPER bound (selection inflates it).
//
// The point: even "no causal conclusion possible" is a quantitative,
// reportable statement.
#pragma once

#include <string_view>

#include "causal/dataset.h"
#include "core/result.h"

namespace sisyphus::causal {

struct EffectBounds {
  double lower = 0.0;
  double upper = 0.0;
  bool mtr_applied = false;
  bool mts_applied = false;

  double width() const { return upper - lower; }
  bool Contains(double value) const {
    return value >= lower && value <= upper;
  }
};

struct BoundsOptions {
  /// Logical range of the outcome. Both must be finite with
  /// y_min < y_max, and the data must respect them.
  double y_min = 0.0;
  double y_max = 1.0;
  /// Monotone treatment response: assume the unit-level effect >= 0.
  bool monotone_treatment_response = false;
  /// Monotone treatment selection: assume treated units' potential
  /// outcomes weakly dominate controls'.
  bool monotone_treatment_selection = false;
};

/// Worst-case (Manski) bounds on the ATE of a binary treatment.
/// Fails (kInvalidArgument) on non-binary treatment, single-arm data,
/// outcomes outside [y_min, y_max], or y_min >= y_max.
core::Result<EffectBounds> ManskiBounds(const Dataset& data,
                                        std::string_view treatment,
                                        std::string_view outcome,
                                        const BoundsOptions& options);

}  // namespace sisyphus::causal
