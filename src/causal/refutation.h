// Refutation tests for causal estimates (DoWhy-style).
//
// The paper's §4 protocol ends with "validate assumptions, and report
// uncertainty in causal estimates"; this module provides the standard
// battery of automated refuters. Each takes the original data + an
// estimator functor, perturbs the problem in a way that SHOULD (or should
// NOT) change the answer, and reports whether the estimate behaved as a
// causal estimate must:
//
//  - PlaceboTreatmentRefuter: replace the treatment with a random coin —
//    the estimated "effect" must collapse to ~0.
//  - RandomCommonCauseRefuter: add an independent noise covariate to the
//    adjustment set — the estimate must NOT move.
//  - SubsetRefuter: re-estimate on random subsets — the estimate must be
//    stable (within sampling noise).
//
// A refuter failing does not prove the estimate wrong; it proves the
// analysis fragile — which is exactly what the paper wants surfaced.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "causal/dataset.h"
#include "causal/estimators.h"
#include "core/result.h"
#include "core/rng.h"

namespace sisyphus::causal {

/// An estimator under refutation: maps (data, treatment, outcome,
/// covariates) to an EffectEstimate. Adapters for the built-in estimators
/// are provided (MakeRegressionAdjustmentEstimator etc.).
using EstimatorFn = std::function<core::Result<EffectEstimate>(
    const Dataset&, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates)>;

EstimatorFn MakeRegressionAdjustmentEstimator();
EstimatorFn MakeIpwEstimator(const IpwOptions& options = {});
EstimatorFn MakeStratificationEstimator(
    const StratificationOptions& options = {});

struct RefutationResult {
  std::string refuter;
  double original_effect = 0.0;
  /// Mean effect across refutation replicates.
  double refuted_effect = 0.0;
  /// Std deviation of the replicate effects.
  double spread = 0.0;
  /// Verdict: true = the estimate behaved as a causal estimate should.
  bool passed = false;
  std::string detail;
};

struct RefutationOptions {
  std::size_t replicates = 20;
  /// PlaceboTreatment passes when |refuted| <= tolerance_abs +
  /// tolerance_spread * spread.
  double tolerance_abs = 0.0;
  double tolerance_spread = 3.0;
  /// SubsetRefuter: fraction of rows kept per replicate.
  double subset_fraction = 0.7;
};

/// Replaces the treatment with an independent Bernoulli(p_treated) coin.
/// Passes when the refuted effect is indistinguishable from zero.
core::Result<RefutationResult> PlaceboTreatmentRefuter(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options = {});

/// Adds a standard-normal covariate and re-estimates. Passes when the
/// estimate moves by less than tolerance_spread * replicate spread
/// (estimates must be insensitive to irrelevant controls).
core::Result<RefutationResult> RandomCommonCauseRefuter(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options = {});

/// Re-estimates on random row subsets. Passes when the original estimate
/// lies within tolerance_spread * subset spread of the subset mean.
core::Result<RefutationResult> SubsetRefuter(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options = {});

/// Runs the full battery; results in a fixed, documented order.
core::Result<std::vector<RefutationResult>> RunRefutationBattery(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const EstimatorFn& estimator,
    core::Rng& rng, const RefutationOptions& options = {});

}  // namespace sisyphus::causal
