// Event-study view of a synthetic-control analysis.
//
// Table 1 compresses each unit to one number (the mean post-treatment
// gap); an event study keeps the whole trajectory: the observed-minus-
// synthetic gap at every period relative to treatment, with a pointwise
// placebo band (the quantile envelope of the same gap computed on donor
// placebo runs). A real effect shows up as the treated gap leaving the
// band only AFTER the event; a pre-period excursion flags a bad fit —
// the visual diagnostic synthetic-control papers (and the paper's own
// methodology) lean on.
#pragma once

#include "causal/placebo.h"
#include "core/result.h"

namespace sisyphus::causal {

struct EventStudyPoint {
  /// Period index relative to treatment (negative = pre).
  int relative_period = 0;
  double gap = 0.0;         ///< treated observed - synthetic
  double band_low = 0.0;    ///< placebo-gap quantile envelope
  double band_high = 0.0;
  bool outside_band = false;
};

struct EventStudyResult {
  std::vector<EventStudyPoint> points;
  /// Fraction of POST periods where the treated gap leaves the band.
  double post_exceedance = 0.0;
  /// Fraction of PRE periods outside the band (should be ~= the nominal
  /// band miss rate; larger means the synthetic fit is poor).
  double pre_exceedance = 0.0;
  SyntheticControlFit treated_fit;
};

struct EventStudyOptions {
  PlaceboOptions placebo;
  /// Pointwise band quantiles over placebo gaps.
  double band_lower_quantile = 0.05;
  double band_upper_quantile = 0.95;
};

/// Runs the treated fit plus one placebo fit per donor and assembles the
/// per-period gap series with placebo bands. Fails when fewer than 3
/// placebo runs succeed.
core::Result<EventStudyResult> RunEventStudy(
    const SyntheticControlInput& input, const EventStudyOptions& options = {});

}  // namespace sisyphus::causal
