// Structural causal model (SCM) over a Dag.
//
// Each node gets a structural equation. Linear-Gaussian equations
// (value = intercept + sum coeff_i * parent_i + noise) support the full
// ladder of causation: sampling (rung 1), do-interventions (rung 2), and
// exact unit-level counterfactuals via abduction–action–prediction
// (rung 3). Custom (arbitrary C++) mechanisms are supported for simulation
// realism; counterfactuals through custom nodes require the mechanism to be
// invertible in its noise, which we approximate by additive noise recovery.
#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "causal/dag.h"
#include "causal/dataset.h"
#include "core/result.h"
#include "core/rng.h"

namespace sisyphus::causal {

/// Linear-Gaussian structural equation.
struct LinearEquation {
  double intercept = 0.0;
  /// Coefficient per parent, aligned with Dag::Parents(node) order.
  std::vector<double> coefficients;
  double noise_sd = 1.0;
};

/// Custom mechanism: deterministic part f(parent values) with additive
/// noise of the given sd. Additivity is what keeps abduction well-defined.
struct CustomEquation {
  std::function<double(std::span<const double>)> mechanism;
  double noise_sd = 0.0;
};

/// An intervention do(node := value).
struct Intervention {
  NodeId node;
  double value = 0.0;
};

class Scm {
 public:
  /// The SCM references `dag` by value (copies it); equations default to
  /// "pure noise" (intercept 0, all coefficients 0, sd 1).
  explicit Scm(Dag dag);

  const Dag& dag() const { return dag_; }

  /// Sets a linear-Gaussian equation. coefficient count must equal the
  /// node's parent count (kInvalidArgument otherwise).
  core::Status SetLinear(NodeId node, LinearEquation equation);
  core::Status SetLinear(std::string_view node, double intercept,
                         const std::vector<std::pair<std::string, double>>&
                             parent_coefficients,
                         double noise_sd);

  /// Sets a custom additive-noise mechanism.
  core::Status SetCustom(NodeId node, CustomEquation equation);

  /// Samples n joint observations (observed nodes only as columns, unless
  /// include_latents). Interventions, if given, clamp those nodes
  /// (rung 2: the graph surgery semantics — clamped nodes ignore parents).
  Dataset Sample(std::size_t n, core::Rng& rng,
                 const std::vector<Intervention>& interventions = {},
                 bool include_latents = false) const;

  /// E[outcome | do(interventions)] by Monte Carlo with `n` draws.
  double ExpectedUnderIntervention(NodeId outcome,
                                   const std::vector<Intervention>& dos,
                                   std::size_t n, core::Rng& rng) const;

  /// Average treatment effect
  /// E[outcome | do(treatment=high)] - E[outcome | do(treatment=low)].
  double AverageTreatmentEffect(NodeId treatment, NodeId outcome, double high,
                                double low, std::size_t n,
                                core::Rng& rng) const;

  /// Unit-level counterfactual (rung 3). `factual` must give a value for
  /// EVERY node (latents included) — abduction recovers each node's noise,
  /// the intervention replaces the equations, prediction re-simulates with
  /// the recovered noise. Returns the counterfactual value of every node.
  /// Fails (kInvalidArgument) if factual is incomplete.
  core::Result<std::unordered_map<std::string, double>> Counterfactual(
      const std::unordered_map<std::string, double>& factual,
      const std::vector<Intervention>& interventions) const;

  /// Convenience: samples one complete world (all nodes) as a name->value
  /// map — a valid `factual` input for Counterfactual().
  std::unordered_map<std::string, double> SampleWorld(core::Rng& rng) const;

  /// The true direct coefficient of `parent` in `child`'s linear equation
  /// (test/diagnostic helper). 0 for custom nodes or non-parents.
  double LinearCoefficient(NodeId parent, NodeId child) const;

 private:
  struct NodeEquation {
    // Exactly one is active; linear when custom.mechanism is empty.
    LinearEquation linear;
    std::optional<CustomEquation> custom;
  };

  double StructuralValue(NodeId node,
                         const std::vector<double>& values) const;

  Dag dag_;
  std::vector<NodeEquation> equations_;
  std::vector<NodeId> topo_order_;
};

}  // namespace sisyphus::causal
