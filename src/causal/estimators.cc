#include "causal/estimators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "core/error.h"
#include "core/logging.h"
#include "stats/descriptive.h"
#include "stats/logistic.h"
#include "stats/matrix.h"
#include "stats/iv.h"
#include "stats/regression.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

namespace {

/// Validates treatment is binary 0/1 with both arms present.
core::Status CheckBinaryTreatment(std::span<const double> t) {
  bool has0 = false, has1 = false;
  for (double v : t) {
    if (v == 0.0) {
      has0 = true;
    } else if (v == 1.0) {
      has1 = true;
    } else {
      return Error(ErrorCode::kInvalidArgument,
                   "treatment column must be 0/1");
    }
  }
  if (!has0 || !has1) {
    return Error(ErrorCode::kInvalidArgument,
                 "treatment column must contain both arms");
  }
  return core::Status::Ok();
}

Result<stats::Matrix> CovariateMatrix(
    const Dataset& data, const std::vector<std::string>& covariates) {
  std::vector<stats::Vector> cols;
  cols.reserve(covariates.size());
  for (const auto& name : covariates) {
    auto col = data.Column(name);
    if (!col.ok()) return col.error();
    cols.emplace_back(col.value().begin(), col.value().end());
  }
  if (cols.empty()) return stats::Matrix(data.rows(), 0);
  return stats::Matrix::FromColumns(cols);
}

}  // namespace

Result<EffectEstimate> NaiveDifference(const Dataset& data,
                                       std::string_view treatment,
                                       std::string_view outcome) {
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  auto y = data.Column(outcome);
  if (!y.ok()) return y.error();
  if (auto s = CheckBinaryTreatment(t.value()); !s.ok()) return s.error();

  std::vector<double> y1, y0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    (t.value()[i] == 1.0 ? y1 : y0).push_back(y.value()[i]);
  }
  EffectEstimate out;
  out.method = "naive_difference";
  out.n = data.rows();
  out.effect = stats::Mean(y1) - stats::Mean(y0);
  const double v1 = y1.size() >= 2 ? stats::Variance(y1) : 0.0;
  const double v0 = y0.size() >= 2 ? stats::Variance(y0) : 0.0;
  out.standard_error = std::sqrt(v1 / static_cast<double>(y1.size()) +
                                 v0 / static_cast<double>(y0.size()));
  return out;
}

Result<EffectEstimate> RegressionAdjustment(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates) {
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  auto y = data.Column(outcome);
  if (!y.ok()) return y.error();

  auto x = CovariateMatrix(data, covariates);
  if (!x.ok()) return x.error();
  stats::Matrix design(data.rows(), 1 + covariates.size());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    design(r, 0) = t.value()[r];
    for (std::size_t c = 0; c < covariates.size(); ++c)
      design(r, 1 + c) = x.value()(r, c);
  }
  auto fit = stats::Ols(design, y.value());
  if (!fit.ok()) return fit.error();

  EffectEstimate out;
  out.method = "regression_adjustment";
  out.n = data.rows();
  out.effect = fit.value().coefficients[1];        // after intercept
  out.standard_error = fit.value().robust_errors[1];
  return out;
}

Result<EffectEstimate> Stratification(const Dataset& data,
                                      std::string_view treatment,
                                      std::string_view outcome,
                                      const std::vector<std::string>& covariates,
                                      const StratificationOptions& options) {
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  auto y = data.Column(outcome);
  if (!y.ok()) return y.error();
  if (auto s = CheckBinaryTreatment(t.value()); !s.ok()) return s.error();
  if (covariates.empty()) return NaiveDifference(data, treatment, outcome);
  if (options.bins_per_covariate < 2) {
    return Error(ErrorCode::kInvalidArgument,
                 "Stratification: need >= 2 bins per covariate");
  }

  // Assign each row a stratum key: the tuple of quantile-bin indices.
  const std::size_t n = data.rows();
  std::vector<std::vector<std::size_t>> bin_index(covariates.size());
  for (std::size_t c = 0; c < covariates.size(); ++c) {
    auto col = data.Column(covariates[c]);
    if (!col.ok()) return col.error();
    // Quantile cut points.
    std::vector<double> cuts;
    for (std::size_t b = 1; b < options.bins_per_covariate; ++b) {
      cuts.push_back(stats::Quantile(
          col.value(),
          static_cast<double>(b) /
              static_cast<double>(options.bins_per_covariate)));
    }
    bin_index[c].resize(n);
    for (std::size_t r = 0; r < n; ++r) {
      std::size_t bin = 0;
      while (bin < cuts.size() && col.value()[r] > cuts[bin]) ++bin;
      bin_index[c][r] = bin;
    }
  }
  std::map<std::vector<std::size_t>, std::vector<std::size_t>> strata;
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::size_t> key(covariates.size());
    for (std::size_t c = 0; c < covariates.size(); ++c) key[c] = bin_index[c][r];
    strata[key].push_back(r);
  }

  double weighted_effect = 0.0;
  double weighted_var = 0.0;
  std::size_t used = 0;
  for (const auto& [key, rows] : strata) {
    std::vector<double> y1, y0;
    for (std::size_t r : rows) {
      (t.value()[r] == 1.0 ? y1 : y0).push_back(y.value()[r]);
    }
    if (y1.size() < options.min_per_arm || y0.size() < options.min_per_arm) {
      continue;
    }
    const double weight = static_cast<double>(rows.size());
    const double effect = stats::Mean(y1) - stats::Mean(y0);
    weighted_effect += weight * effect;
    const double var = stats::Variance(y1) / static_cast<double>(y1.size()) +
                       stats::Variance(y0) / static_cast<double>(y0.size());
    weighted_var += weight * weight * var;
    used += rows.size();
  }
  if (used == 0) {
    return Error(ErrorCode::kPrecondition,
                 "Stratification: no stratum has both arms populated "
                 "(no covariate overlap)");
  }
  EffectEstimate out;
  out.method = "stratification";
  out.n = used;
  out.effect = weighted_effect / static_cast<double>(used);
  out.standard_error =
      std::sqrt(weighted_var) / static_cast<double>(used);
  return out;
}

Result<EffectEstimate> InversePropensityWeighting(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates, const IpwOptions& options) {
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  auto y = data.Column(outcome);
  if (!y.ok()) return y.error();
  if (auto s = CheckBinaryTreatment(t.value()); !s.ok()) return s.error();
  auto x = CovariateMatrix(data, covariates);
  if (!x.ok()) return x.error();

  auto propensity_fit = stats::LogisticRegression(x.value(), t.value());
  if (!propensity_fit.ok()) return propensity_fit.error();

  const std::size_t n = data.rows();
  double p_treated = 0.0;
  for (double v : t.value()) p_treated += v;
  p_treated /= static_cast<double>(n);

  // Hajek (self-normalizing) estimator with clipped scores.
  double sum_w1 = 0.0, sum_w1y = 0.0, sum_w0 = 0.0, sum_w0y = 0.0;
  std::vector<double> influence(n, 0.0);
  std::vector<double> scores(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(covariates.size());
    for (std::size_t c = 0; c < covariates.size(); ++c) row[c] = x.value()(i, c);
    double e = propensity_fit.value().PredictProbability(row);
    e = std::min(1.0 - options.clip, std::max(options.clip, e));
    scores[i] = e;
    const double stabilizer1 = options.stabilized ? p_treated : 1.0;
    const double stabilizer0 = options.stabilized ? (1.0 - p_treated) : 1.0;
    if (t.value()[i] == 1.0) {
      const double w = stabilizer1 / e;
      sum_w1 += w;
      sum_w1y += w * y.value()[i];
    } else {
      const double w = stabilizer0 / (1.0 - e);
      sum_w0 += w;
      sum_w0y += w * y.value()[i];
    }
  }
  EffectEstimate out;
  out.method = "ipw";
  out.n = n;
  const double mu1 = sum_w1y / sum_w1;
  const double mu0 = sum_w0y / sum_w0;
  out.effect = mu1 - mu0;
  // Influence-function SE for the Hajek estimator.
  for (std::size_t i = 0; i < n; ++i) {
    const double e = scores[i];
    const double ti = t.value()[i];
    influence[i] = ti / e * (y.value()[i] - mu1) -
                   (1.0 - ti) / (1.0 - e) * (y.value()[i] - mu0);
  }
  out.standard_error =
      std::sqrt(stats::Variance(influence) / static_cast<double>(n));
  return out;
}

Result<EffectEstimate> NearestNeighborMatching(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& covariates) {
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  auto y = data.Column(outcome);
  if (!y.ok()) return y.error();
  if (auto s = CheckBinaryTreatment(t.value()); !s.ok()) return s.error();
  if (covariates.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "NearestNeighborMatching: need at least one covariate");
  }
  auto x = CovariateMatrix(data, covariates);
  if (!x.ok()) return x.error();

  // Standardize covariates so distances are comparable across scales.
  const std::size_t n = data.rows();
  stats::Matrix z(n, covariates.size());
  for (std::size_t c = 0; c < covariates.size(); ++c) {
    const auto col = x.value().Column(c);
    const double mu = stats::Mean(col);
    const double sd = stats::StdDev(col);
    for (std::size_t r = 0; r < n; ++r)
      z(r, c) = sd > 0.0 ? (col[r] - mu) / sd : 0.0;
  }
  std::vector<std::size_t> treated, control;
  for (std::size_t i = 0; i < n; ++i) {
    (t.value()[i] == 1.0 ? treated : control).push_back(i);
  }
  // ATT: for each treated unit, find the closest control.
  std::vector<double> diffs;
  diffs.reserve(treated.size());
  for (std::size_t i : treated) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t match = control.front();
    for (std::size_t j : control) {
      double dist = 0.0;
      for (std::size_t c = 0; c < covariates.size(); ++c) {
        const double d = z(i, c) - z(j, c);
        dist += d * d;
      }
      if (dist < best) {
        best = dist;
        match = j;
      }
    }
    diffs.push_back(y.value()[i] - y.value()[match]);
  }
  EffectEstimate out;
  out.method = "nearest_neighbor_matching_att";
  out.n = treated.size();
  out.effect = stats::Mean(diffs);
  out.standard_error =
      diffs.size() >= 2
          ? std::sqrt(stats::Variance(diffs) / static_cast<double>(diffs.size()))
          : 0.0;
  return out;
}

Result<EffectEstimate> DifferenceInDifferences(
    const Dataset& data, std::string_view treated_indicator,
    std::string_view outcome_pre, std::string_view outcome_post) {
  auto d = data.Column(treated_indicator);
  if (!d.ok()) return d.error();
  auto pre = data.Column(outcome_pre);
  if (!pre.ok()) return pre.error();
  auto post = data.Column(outcome_post);
  if (!post.ok()) return post.error();
  if (auto s = CheckBinaryTreatment(d.value()); !s.ok()) return s.error();

  std::vector<double> delta_treated, delta_control;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const double delta = post.value()[i] - pre.value()[i];
    (d.value()[i] == 1.0 ? delta_treated : delta_control).push_back(delta);
  }
  EffectEstimate out;
  out.method = "difference_in_differences";
  out.n = data.rows();
  out.effect = stats::Mean(delta_treated) - stats::Mean(delta_control);
  const double v1 = delta_treated.size() >= 2 ? stats::Variance(delta_treated) : 0.0;
  const double v0 = delta_control.size() >= 2 ? stats::Variance(delta_control) : 0.0;
  out.standard_error =
      std::sqrt(v1 / static_cast<double>(delta_treated.size()) +
                v0 / static_cast<double>(delta_control.size()));
  return out;
}

Result<EffectEstimate> AugmentedIpw(const Dataset& data,
                                    std::string_view treatment,
                                    std::string_view outcome,
                                    const std::vector<std::string>& covariates,
                                    const IpwOptions& options) {
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  auto y = data.Column(outcome);
  if (!y.ok()) return y.error();
  if (auto s = CheckBinaryTreatment(t.value()); !s.ok()) return s.error();
  auto x = CovariateMatrix(data, covariates);
  if (!x.ok()) return x.error();
  const std::size_t n = data.rows();

  // Outcome models per arm: y ~ covariates on treated / control rows.
  const Dataset treated_rows = data.FilterEquals(std::string(treatment), 1.0);
  const Dataset control_rows = data.FilterEquals(std::string(treatment), 0.0);
  auto arm_model = [&](const Dataset& rows)
      -> Result<stats::OlsFit> {
    auto arm_x = CovariateMatrix(rows, covariates);
    if (!arm_x.ok()) return arm_x.error();
    auto arm_y = rows.Column(outcome);
    if (!arm_y.ok()) return arm_y.error();
    return stats::Ols(arm_x.value(), arm_y.value());
  };
  auto model1 = arm_model(treated_rows);
  if (!model1.ok()) return model1.error();
  auto model0 = arm_model(control_rows);
  if (!model0.ok()) return model0.error();

  auto propensity = stats::LogisticRegression(x.value(), t.value());
  if (!propensity.ok()) return propensity.error();

  // AIPW influence values per unit.
  std::vector<double> influence(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(covariates.size());
    for (std::size_t c = 0; c < covariates.size(); ++c) {
      row[c] = x.value()(i, c);
    }
    double e = propensity.value().PredictProbability(row);
    e = std::min(1.0 - options.clip, std::max(options.clip, e));
    const double mu1 = model1.value().Predict(row);
    const double mu0 = model0.value().Predict(row);
    const double ti = t.value()[i];
    const double yi = y.value()[i];
    influence[i] = mu1 - mu0 + ti * (yi - mu1) / e -
                   (1.0 - ti) * (yi - mu0) / (1.0 - e);
  }
  EffectEstimate out;
  out.method = "augmented_ipw";
  out.n = n;
  out.effect = stats::Mean(influence);
  out.standard_error =
      std::sqrt(stats::Variance(influence) / static_cast<double>(n));
  return out;
}

Result<EffectEstimate> FrontdoorEstimate(const Dataset& data,
                                         std::string_view treatment,
                                         std::string_view mediator,
                                         std::string_view outcome) {
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  auto m = data.Column(mediator);
  if (!m.ok()) return m.error();
  auto y = data.Column(outcome);
  if (!y.ok()) return y.error();

  // Stage 1: m ~ t (no backdoor t -> m under the frontdoor criterion).
  stats::Matrix design1(data.rows(), 1);
  for (std::size_t i = 0; i < data.rows(); ++i) design1(i, 0) = t.value()[i];
  auto stage1 = stats::Ols(design1, m.value());
  if (!stage1.ok()) return stage1.error();
  const double alpha = stage1.value().coefficients[1];
  const double alpha_se = stage1.value().robust_errors[1];

  // Stage 2: y ~ m + t — conditioning on t blocks the backdoor from m to
  // y through the latent confounder (criterion condition 3).
  stats::Matrix design2(data.rows(), 2);
  for (std::size_t i = 0; i < data.rows(); ++i) {
    design2(i, 0) = m.value()[i];
    design2(i, 1) = t.value()[i];
  }
  auto stage2 = stats::Ols(design2, y.value());
  if (!stage2.ok()) return stage2.error();
  const double beta = stage2.value().coefficients[1];
  const double beta_se = stage2.value().robust_errors[1];

  EffectEstimate out;
  out.method = "frontdoor";
  out.n = data.rows();
  out.effect = alpha * beta;
  // Delta method for a product of (approximately independent) estimates.
  out.standard_error = std::sqrt(alpha * alpha * beta_se * beta_se +
                                 beta * beta * alpha_se * alpha_se);
  return out;
}

Result<EffectEstimate> InstrumentalVariableEstimate(
    const Dataset& data, std::string_view treatment, std::string_view outcome,
    const std::vector<std::string>& instruments,
    const std::vector<std::string>& controls) {
  auto t = data.Column(treatment);
  if (!t.ok()) return t.error();
  auto y = data.Column(outcome);
  if (!y.ok()) return y.error();
  auto z = CovariateMatrix(data, instruments);
  if (!z.ok()) return z.error();
  auto w = CovariateMatrix(data, controls);
  if (!w.ok()) return w.error();
  auto fit = stats::TwoStageLeastSquares(y.value(), t.value(), z.value(),
                                         w.value());
  if (!fit.ok()) return fit.error();
  EffectEstimate out;
  out.method = "iv";
  if (fit.value().WeakInstrument()) {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "iv[WEAK F=%.1f]",
                  fit.value().first_stage_f);
    out.method = buffer;
    (SISYPHUS_LOG(kWarn) << "weak instrument: IV estimate unreliable")
        .With("first_stage_f", fit.value().first_stage_f)
        .With("n", data.rows());
  }
  out.n = data.rows();
  out.effect = fit.value().TreatmentEffect();
  out.standard_error = fit.value().TreatmentStdError();
  return out;
}

}  // namespace sisyphus::causal
