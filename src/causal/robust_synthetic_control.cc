#include "causal/robust_synthetic_control.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "stats/decomposition.h"
#include "stats/regression.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

Result<RobustSyntheticControlFit> FitRobustSyntheticControl(
    const SyntheticControlInput& input,
    const RobustSyntheticControlOptions& options) {
  if (auto s = input.Validate(); !s.ok()) return s.error();

  // Step 1: denoise the full donor matrix by hard singular-value
  // thresholding.
  auto svd = stats::SvdDecompose(input.donors);
  if (!svd.ok()) return svd.error();
  double threshold = options.singular_value_threshold;
  if (threshold < 0.0) {
    threshold = stats::DefaultSingularValueThreshold(
        svd.value(), input.donors.rows(), input.donors.cols());
  }
  std::size_t rank = svd.value().RankAbove(threshold);
  rank = std::max(rank, std::min(options.min_rank,
                                 svd.value().singular_values.size()));
  const stats::Matrix denoised = svd.value().TruncatedReconstruct(rank);

  // Step 2: ridge regression of the treated pre-period series on the
  // denoised donor pre-period columns (no intercept, matching the RSC
  // formulation where the donor span absorbs levels).
  const std::size_t t0 = input.pre_periods;
  const stats::Matrix pre = denoised.Block(0, t0, 0, denoised.cols());
  std::span<const double> y(input.treated.data(), t0);
  stats::OlsOptions no_intercept;
  no_intercept.add_intercept = false;
  auto weights = stats::Ridge(pre, y, options.ridge_lambda, no_intercept);
  if (!weights.ok()) return weights.error();

  // Step 3: the counterfactual is the denoised donors combined with the
  // learned weights across ALL periods.
  SyntheticControlInput denoised_input = input;
  denoised_input.donors = denoised;
  RobustSyntheticControlFit out;
  out.base = DiagnoseWeights(denoised_input, std::move(weights).value());
  out.retained_rank = rank;
  out.threshold_used = threshold;
  return out;
}

}  // namespace sisyphus::causal
