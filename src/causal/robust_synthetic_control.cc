#include "causal/robust_synthetic_control.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/error.h"
#include "obs/metrics.h"
#include "stats/decomposition.h"
#include "stats/regression.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

Result<RobustSyntheticControlFit> FitRobustSyntheticControl(
    const SyntheticControlInput& input,
    const RobustSyntheticControlOptions& options) {
  SISYPHUS_METRIC_COUNT("causal.rsc.fits_attempted", 1);
  if (auto s = input.Validate(); !s.ok()) return s.error();

  const bool masked = options.use_mask && !input.donor_observed.empty();

  // Step 0 (masked path): zero-fill unobserved donor entries and compute
  // the observed fraction p̂. The rescaled reconstruction (1/p̂) Y_k is an
  // unbiased estimate of the low-rank signal under uniform missingness
  // (Amjad, Shah & Shen §3).
  stats::Matrix donors = input.donors;
  double p_hat = 1.0;
  if (masked) {
    std::size_t observed = 0;
    for (std::size_t r = 0; r < donors.rows(); ++r) {
      for (std::size_t c = 0; c < donors.cols(); ++c) {
        if (input.donor_observed(r, c) != 0.0) {
          ++observed;
        } else {
          donors(r, c) = 0.0;
        }
      }
    }
    p_hat = static_cast<double>(observed) /
            static_cast<double>(donors.rows() * donors.cols());
    if (observed == 0) {
      return Error(ErrorCode::kNumericalFailure,
                   "FitRobustSyntheticControl: donor matrix entirely "
                   "unobserved");
    }
    if (p_hat < options.min_observed_fraction) {
      return Error(ErrorCode::kNumericalFailure,
                   "FitRobustSyntheticControl: donor matrix too sparse "
                   "(observed fraction " + std::to_string(p_hat) + " < " +
                       std::to_string(options.min_observed_fraction) + ")");
    }
  }

  // Step 1: denoise the (masked) donor matrix by hard singular-value
  // thresholding, rescaling by 1/p̂ on the masked path.
  auto svd = stats::SvdDecompose(donors);
  if (!svd.ok()) return svd.error();
  double threshold = options.singular_value_threshold;
  if (threshold < 0.0) {
    threshold = stats::DefaultSingularValueThreshold(
        svd.value(), donors.rows(), donors.cols());
  }
  std::size_t rank = svd.value().RankAbove(threshold);
  rank = std::max(rank, std::min(options.min_rank,
                                 svd.value().singular_values.size()));
  stats::Matrix denoised = svd.value().TruncatedReconstruct(rank);
  if (masked) denoised = (1.0 / p_hat) * denoised;

  // Step 2: ridge regression of the treated pre-period series on the
  // denoised donor pre-period columns (no intercept, matching the RSC
  // formulation where the donor span absorbs levels). On the masked path
  // only OBSERVED treated pre-periods enter the regression.
  const std::size_t t0 = input.pre_periods;
  stats::Matrix pre;
  stats::Vector y_pre;
  if (!input.treated_observed.empty()) {
    std::vector<std::size_t> rows;
    for (std::size_t t = 0; t < t0; ++t) {
      if (input.treated_observed[t] != 0.0) rows.push_back(t);
    }
    if (rows.size() < std::max<std::size_t>(options.min_observed_pre_periods,
                                            1)) {
      return Error(ErrorCode::kNumericalFailure,
                   "FitRobustSyntheticControl: only " +
                       std::to_string(rows.size()) +
                       " observed treated pre-periods (need >= " +
                       std::to_string(options.min_observed_pre_periods) +
                       ")");
    }
    pre = stats::Matrix(rows.size(), denoised.cols());
    y_pre.resize(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      pre.SetRow(i, denoised.Row(rows[i]));
      y_pre[i] = input.treated[rows[i]];
    }
  } else {
    pre = denoised.Block(0, t0, 0, denoised.cols());
    y_pre.assign(input.treated.data(), input.treated.data() + t0);
  }
  stats::OlsOptions no_intercept;
  no_intercept.add_intercept = false;
  auto weights = stats::Ridge(pre, y_pre, options.ridge_lambda, no_intercept);
  if (!weights.ok()) return weights.error();

  // Step 3: the counterfactual is the denoised donors combined with the
  // learned weights across ALL periods.
  SyntheticControlInput denoised_input = input;
  denoised_input.donors = denoised;
  RobustSyntheticControlFit out;
  out.base = DiagnoseWeights(denoised_input, std::move(weights).value());
  out.retained_rank = rank;
  out.threshold_used = threshold;
  out.observed_fraction = p_hat;
  SISYPHUS_METRIC_COUNT("causal.rsc.fits_succeeded", 1);
#if !defined(SISYPHUS_OBS_DISABLED)
  // Fit-quality summaries: retained rank is small by construction (hard
  // thresholding), pre-period RMSE is the fit residual headline.
  static obs::Histogram* rank_hist = obs::Registry::Global().GetHistogram(
      "causal.rsc.retained_rank", {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0});
  rank_hist->Observe(static_cast<double>(rank));
  static obs::Histogram* rmse_hist = obs::Registry::Global().GetHistogram(
      "causal.rsc.pre_rmse_ms",
      {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0});
  rmse_hist->Observe(out.base.rmse_pre);
#endif
  MarkFitLineage(input);
  return out;
}

}  // namespace sisyphus::causal
