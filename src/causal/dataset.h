// Dataset: a minimal named-column table (DataFrame-lite) shared by the
// causal estimators. Columns are double-valued; binary treatments use 0/1.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/result.h"

namespace sisyphus::causal {

class Dataset {
 public:
  Dataset() = default;

  /// Adds (or replaces) a column. First column fixes the row count; later
  /// columns must match it (kInvalidArgument otherwise).
  core::Status AddColumn(std::string_view name, std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return names_.size(); }
  bool HasColumn(std::string_view name) const;
  const std::vector<std::string>& ColumnNames() const { return names_; }

  /// Column view; kNotFound when absent.
  core::Result<std::span<const double>> Column(std::string_view name) const;

  /// Column view that throws on absence — for call sites that already
  /// validated (keeps estimator code readable).
  std::span<const double> ColumnOrDie(std::string_view name) const;

  /// Rows where `predicate(row_index)` holds, as a new Dataset.
  Dataset Filter(const std::vector<bool>& keep) const;

  /// Rows where column `name` equals `value` (exact comparison; meant for
  /// 0/1 indicators and small integer codes).
  Dataset FilterEquals(std::string_view name, double value) const;

  /// First `n` rows formatted as a table (debugging).
  std::string Head(std::size_t n = 5) const;

 private:
  std::size_t rows_ = 0;
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace sisyphus::causal
