// Identification: can a causal effect be estimated from observational
// data, and how?
//
// Implements the graphical criteria from Pearl's framework that the paper
// leans on (§3): the backdoor criterion (confounding adjustment), the
// frontdoor criterion, and the instrumental-variable criterion, plus a
// one-call Identify() that picks a strategy and explains itself — the
// "DAG-based planning" workflow the paper proposes for measurement studies
// (§4).
#pragma once

#include <string>
#include <vector>

#include "causal/dag.h"
#include "causal/dseparation.h"
#include "core/result.h"

namespace sisyphus::causal {

/// Backdoor criterion: z contains no descendant of `treatment`, and z
/// blocks every path between treatment and outcome that starts with an
/// arrow into treatment.
bool SatisfiesBackdoorCriterion(const Dag& dag, NodeId treatment,
                                NodeId outcome, const NodeSet& z);

/// All minimal (inclusion-wise) observed adjustment sets, deterministic
/// order (by size, then lexicographically by names). `max_size` bounds the
/// search. Empty result means no observed backdoor adjustment set exists.
std::vector<NodeSet> MinimalAdjustmentSets(const Dag& dag, NodeId treatment,
                                           NodeId outcome,
                                           std::size_t max_size = 4);

/// Frontdoor criterion for mediator set m: (1) m intercepts every directed
/// path treatment -> outcome; (2) there is no open backdoor path from
/// treatment to any node of m; (3) every backdoor path from m to outcome is
/// blocked by treatment.
bool SatisfiesFrontdoorCriterion(const Dag& dag, NodeId treatment,
                                 NodeId outcome, const NodeSet& m);

/// Single-node observed mediators satisfying the frontdoor criterion.
std::vector<NodeId> FindFrontdoorMediators(const Dag& dag, NodeId treatment,
                                           NodeId outcome);

/// Graphical instrumental-variable criterion for candidate z given
/// conditioning set w: (relevance) z is d-connected to treatment given w;
/// (exclusion) z is d-separated from outcome given w in the graph with
/// treatment's outgoing edges removed. w must not contain descendants of
/// treatment or of z.
bool IsValidInstrument(const Dag& dag, NodeId candidate, NodeId treatment,
                       NodeId outcome, const NodeSet& conditioning);

/// Observed variables that are valid instruments given an empty
/// conditioning set.
std::vector<NodeId> FindInstruments(const Dag& dag, NodeId treatment,
                                    NodeId outcome);

/// A conditional instrument: the pair (instrument, conditioning set W)
/// such that IsValidInstrument(dag, z, t, y, W) holds (van der Zander,
/// Textor & Liskiewicz, IJCAI'15 — the paper's reference for conditional
/// instruments).
struct ConditionalInstrument {
  NodeId instrument;
  NodeSet conditioning;
};

/// Searches observed candidates with conditioning sets up to
/// `max_conditioning_size`; for each instrument only the smallest valid
/// conditioning set (breaking ties lexicographically) is reported.
/// Candidates already valid unconditionally are reported with an empty
/// set. Deterministic order (by instrument name).
std::vector<ConditionalInstrument> FindConditionalInstruments(
    const Dag& dag, NodeId treatment, NodeId outcome,
    std::size_t max_conditioning_size = 2);

/// How an effect can be identified.
enum class IdentificationStrategy {
  kNoConfounding,   ///< empty set satisfies the backdoor criterion
  kBackdoor,        ///< adjust for an observed set
  kFrontdoor,       ///< mediation-based identification
  kInstrument,      ///< IV / natural-experiment estimation
  kNotIdentifiable, ///< none of the supported criteria applies
};

const char* ToString(IdentificationStrategy strategy);

/// The outcome of Identify(): strategy plus the sets it needs and a
/// human-readable explanation (lists the open backdoor paths when the
/// effect is not identifiable — the diagnostic the paper asks measurement
/// studies to report).
struct IdentificationResult {
  IdentificationStrategy strategy = IdentificationStrategy::kNotIdentifiable;
  NodeSet adjustment_set;               ///< for kBackdoor
  std::vector<NodeId> frontdoor_mediators;  ///< for kFrontdoor
  std::vector<NodeId> instruments;      ///< for kInstrument
  std::string explanation;

  bool identifiable() const {
    return strategy != IdentificationStrategy::kNotIdentifiable;
  }
};

/// Decides how (whether) the effect of treatment on outcome is identifiable
/// from the observed variables. Preference order: no-confounding, smallest
/// backdoor set, frontdoor, instrument.
/// Fails (kInvalidArgument) if treatment == outcome or either is latent.
core::Result<IdentificationResult> Identify(const Dag& dag, NodeId treatment,
                                            NodeId outcome);

/// Name-based convenience overload.
core::Result<IdentificationResult> Identify(const Dag& dag,
                                            std::string_view treatment,
                                            std::string_view outcome);

}  // namespace sisyphus::causal
