// Testable implications of a causal DAG.
//
// A DAG is not just a picture: it implies conditional independencies that
// observational data can refute (the heart of dagitty's model-testing
// workflow, which the paper holds up as the tooling networking should
// adopt). This module:
//
//   1. enumerates a basis of implied independencies — for every pair of
//      non-adjacent observed variables (X, Y), the statement
//      X _||_ Y | parents(X) ∪ parents(Y) restricted to observed nodes,
//      kept only when it actually holds in the graph (latent parents can
//      break it);
//   2. tests each against a Dataset with Fisher-z partial correlation;
//   3. reports which implications fail — each failure localizes a missing
//      edge or unmodeled confounder.
#pragma once

#include <string>
#include <vector>

#include "causal/dag.h"
#include "causal/dataset.h"
#include "core/result.h"

namespace sisyphus::causal {

/// One implied conditional independence X _||_ Y | Z.
struct ImpliedIndependence {
  NodeId x;
  NodeId y;
  NodeSet given;

  std::string ToText(const Dag& dag) const;
};

/// Enumerates the implied-independence basis over OBSERVED variables.
/// Deterministic order (by variable names).
std::vector<ImpliedIndependence> ImpliedIndependencies(const Dag& dag);

/// Partial correlation of x and y given the columns in `given`, computed
/// by residualizing both on `given` via OLS. Fails on missing columns or
/// rank problems.
core::Result<double> PartialCorrelation(
    const Dataset& data, std::string_view x, std::string_view y,
    const std::vector<std::string>& given);

/// Fisher-z test of zero partial correlation. dof = n - |given| - 3.
struct IndependenceTest {
  double partial_correlation = 0.0;
  double z_statistic = 0.0;
  double p_value = 1.0;
  std::size_t n = 0;
};

core::Result<IndependenceTest> TestConditionalIndependence(
    const Dataset& data, std::string_view x, std::string_view y,
    const std::vector<std::string>& given);

/// One implication's verdict against data.
struct ImplicationResult {
  ImpliedIndependence implication;
  IndependenceTest test;
  bool rejected = false;  ///< p < alpha: the data contradict the DAG here
};

/// Tests every implication whose variables all appear as data columns;
/// implications referencing unmeasured variables are skipped (count
/// reported via `skipped`).
core::Result<std::vector<ImplicationResult>> TestImpliedIndependencies(
    const Dag& dag, const Dataset& data, double alpha = 0.01,
    std::size_t* skipped = nullptr);

}  // namespace sisyphus::causal
