#include "causal/identification.h"

#include <algorithm>

#include "core/error.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

namespace {

/// Copy of `dag` with all edges out of `node` removed (Pearl's G underbar).
Dag WithoutOutgoingEdges(const Dag& dag, NodeId node) {
  Dag out;
  for (NodeId id : dag.AllNodes()) {
    out.AddNode(dag.Name(id), dag.IsObserved(id));
  }
  for (NodeId id : dag.AllNodes()) {
    for (NodeId child : dag.Children(id)) {
      if (id == node) continue;
      // Same node numbering: AddNode is idempotent and insertion order is
      // preserved, so ids coincide.
      const auto status = out.AddEdge(id, child);
      SISYPHUS_REQUIRE(status.ok(), "WithoutOutgoingEdges: copy failed");
    }
  }
  return out;
}

/// All directed paths treatment -> outcome.
void DirectedPathsFrom(const Dag& dag, NodeId current, NodeId target,
                       std::vector<NodeId>& stack,
                       std::vector<bool>& on_path,
                       std::vector<std::vector<NodeId>>& out) {
  if (current == target) {
    out.push_back(stack);
    return;
  }
  for (NodeId child : dag.Children(current)) {
    if (on_path[child.value()]) continue;
    stack.push_back(child);
    on_path[child.value()] = true;
    DirectedPathsFrom(dag, child, target, stack, on_path, out);
    on_path[child.value()] = false;
    stack.pop_back();
  }
}

std::vector<std::vector<NodeId>> DirectedPaths(const Dag& dag, NodeId from,
                                               NodeId to) {
  std::vector<std::vector<NodeId>> out;
  std::vector<NodeId> stack{from};
  std::vector<bool> on_path(dag.NodeCount(), false);
  on_path[from.value()] = true;
  DirectedPathsFrom(dag, from, to, stack, on_path, out);
  return out;
}

std::string SetToText(const Dag& dag, const NodeSet& set) {
  std::string out = "{";
  bool first = true;
  for (NodeId id : set) {
    if (!first) out += ", ";
    out += dag.Name(id);
    first = false;
  }
  return out + "}";
}

}  // namespace

bool SatisfiesBackdoorCriterion(const Dag& dag, NodeId treatment,
                                NodeId outcome, const NodeSet& z) {
  if (z.Contains(treatment) || z.Contains(outcome)) return false;
  // (1) No descendant of treatment in z.
  const NodeSet descendants = dag.Descendants(treatment);
  for (NodeId id : z) {
    if (descendants.Contains(id)) return false;
  }
  // (2) z blocks every backdoor path: in the graph with treatment's
  // outgoing edges removed, treatment and outcome are d-separated by z.
  const Dag cut = WithoutOutgoingEdges(dag, treatment);
  return IsDSeparated(cut, treatment, outcome, z);
}

std::vector<NodeSet> MinimalAdjustmentSets(const Dag& dag, NodeId treatment,
                                           NodeId outcome,
                                           std::size_t max_size) {
  // Candidates: observed nodes that are not treatment/outcome and not
  // descendants of treatment.
  const NodeSet descendants = dag.Descendants(treatment);
  std::vector<NodeId> candidates;
  for (NodeId id : dag.ObservedNodes()) {
    if (id == treatment || id == outcome) continue;
    if (descendants.Contains(id)) continue;
    candidates.push_back(id);
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](NodeId a, NodeId b) { return dag.Name(a) < dag.Name(b); });

  std::vector<NodeSet> valid;
  // Enumerate subsets by increasing size; keep only those with no valid
  // strict subset (minimality).
  std::vector<std::size_t> indices;
  const std::size_t n = candidates.size();
  const std::size_t cap = std::min(max_size, n);
  for (std::size_t size = 0; size <= cap; ++size) {
    // size-combinations of candidates in lexicographic order.
    indices.assign(size, 0);
    for (std::size_t i = 0; i < size; ++i) indices[i] = i;
    bool more = true;
    if (size > n) break;
    while (more) {
      NodeSet z;
      for (std::size_t i : indices) z.Insert(candidates[i]);
      // Minimality: skip if a known valid set is a subset.
      bool has_valid_subset = false;
      for (const NodeSet& small : valid) {
        bool subset = true;
        for (NodeId id : small) {
          if (!z.Contains(id)) {
            subset = false;
            break;
          }
        }
        if (subset) {
          has_valid_subset = true;
          break;
        }
      }
      if (!has_valid_subset &&
          SatisfiesBackdoorCriterion(dag, treatment, outcome, z)) {
        valid.push_back(z);
      }
      // Next combination.
      more = false;
      for (std::size_t i = size; i-- > 0;) {
        if (indices[i] + (size - i) < n) {
          ++indices[i];
          for (std::size_t j = i + 1; j < size; ++j)
            indices[j] = indices[j - 1] + 1;
          more = true;
          break;
        }
      }
      if (size == 0) break;  // only the empty set
    }
  }
  return valid;
}

bool SatisfiesFrontdoorCriterion(const Dag& dag, NodeId treatment,
                                 NodeId outcome, const NodeSet& m) {
  if (m.empty() || m.Contains(treatment) || m.Contains(outcome)) return false;
  // (1) m intercepts every directed path treatment -> outcome.
  for (const auto& path : DirectedPaths(dag, treatment, outcome)) {
    bool intercepted = false;
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      if (m.Contains(path[i])) {
        intercepted = true;
        break;
      }
    }
    if (!intercepted) return false;
  }
  // (2) No open backdoor path from treatment to any node of m.
  for (NodeId mediator : m) {
    if (!OpenBackdoorPaths(dag, treatment, mediator, NodeSet{}).empty()) {
      return false;
    }
  }
  // (3) Every backdoor path from each mediator to outcome is blocked by
  // treatment.
  NodeSet t_only{treatment};
  for (NodeId mediator : m) {
    if (!OpenBackdoorPaths(dag, mediator, outcome, t_only).empty()) {
      return false;
    }
  }
  return true;
}

std::vector<NodeId> FindFrontdoorMediators(const Dag& dag, NodeId treatment,
                                           NodeId outcome) {
  std::vector<NodeId> out;
  for (NodeId id : dag.ObservedNodes()) {
    if (id == treatment || id == outcome) continue;
    if (SatisfiesFrontdoorCriterion(dag, treatment, outcome, NodeSet{id})) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end(),
            [&](NodeId a, NodeId b) { return dag.Name(a) < dag.Name(b); });
  return out;
}

bool IsValidInstrument(const Dag& dag, NodeId candidate, NodeId treatment,
                       NodeId outcome, const NodeSet& conditioning) {
  if (candidate == treatment || candidate == outcome) return false;
  if (conditioning.Contains(candidate) || conditioning.Contains(treatment) ||
      conditioning.Contains(outcome)) {
    return false;
  }
  // Conditioning set must not contain descendants of treatment or of the
  // candidate (conditioning on them could open collider paths / block the
  // effect channel).
  const NodeSet treatment_desc = dag.Descendants(treatment);
  const NodeSet candidate_desc = dag.Descendants(candidate);
  for (NodeId id : conditioning) {
    if (treatment_desc.Contains(id) || candidate_desc.Contains(id)) {
      return false;
    }
  }
  // Relevance: candidate d-connected to treatment given conditioning.
  if (IsDSeparated(dag, candidate, treatment, conditioning)) return false;
  // Exclusion: candidate d-separated from outcome (given conditioning) in
  // the graph where the treatment's outgoing edges are removed — every
  // channel from instrument to outcome must pass through the treatment.
  const Dag cut = WithoutOutgoingEdges(dag, treatment);
  return IsDSeparated(cut, candidate, outcome, conditioning);
}

std::vector<NodeId> FindInstruments(const Dag& dag, NodeId treatment,
                                    NodeId outcome) {
  std::vector<NodeId> out;
  for (NodeId id : dag.ObservedNodes()) {
    if (IsValidInstrument(dag, id, treatment, outcome, NodeSet{})) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end(),
            [&](NodeId a, NodeId b) { return dag.Name(a) < dag.Name(b); });
  return out;
}

std::vector<ConditionalInstrument> FindConditionalInstruments(
    const Dag& dag, NodeId treatment, NodeId outcome,
    std::size_t max_conditioning_size) {
  // Candidate conditioning variables: observed, not treatment/outcome.
  std::vector<NodeId> pool;
  for (NodeId id : dag.ObservedNodes()) {
    if (id != treatment && id != outcome) pool.push_back(id);
  }
  std::sort(pool.begin(), pool.end(),
            [&](NodeId a, NodeId b) { return dag.Name(a) < dag.Name(b); });

  std::vector<ConditionalInstrument> out;
  for (NodeId candidate : pool) {
    bool found = false;
    // Increasing conditioning-set size; stop at the first valid one.
    const std::size_t cap = std::min(max_conditioning_size, pool.size());
    for (std::size_t size = 0; size <= cap && !found; ++size) {
      // size-combinations of pool \ {candidate}.
      std::vector<NodeId> others;
      for (NodeId id : pool) {
        if (id != candidate) others.push_back(id);
      }
      if (size > others.size()) break;
      std::vector<std::size_t> indices(size);
      for (std::size_t i = 0; i < size; ++i) indices[i] = i;
      while (true) {
        NodeSet w;
        for (std::size_t i : indices) w.Insert(others[i]);
        if (IsValidInstrument(dag, candidate, treatment, outcome, w)) {
          out.push_back({candidate, w});
          found = true;
          break;
        }
        // Next combination.
        bool more = false;
        for (std::size_t i = size; i-- > 0;) {
          if (indices[i] + (size - i) < others.size()) {
            ++indices[i];
            for (std::size_t j = i + 1; j < size; ++j) {
              indices[j] = indices[j - 1] + 1;
            }
            more = true;
            break;
          }
        }
        if (!more || size == 0) break;
      }
    }
  }
  return out;
}

const char* ToString(IdentificationStrategy strategy) {
  switch (strategy) {
    case IdentificationStrategy::kNoConfounding: return "no_confounding";
    case IdentificationStrategy::kBackdoor: return "backdoor";
    case IdentificationStrategy::kFrontdoor: return "frontdoor";
    case IdentificationStrategy::kInstrument: return "instrument";
    case IdentificationStrategy::kNotIdentifiable: return "not_identifiable";
  }
  return "unknown";
}

Result<IdentificationResult> Identify(const Dag& dag, NodeId treatment,
                                      NodeId outcome) {
  if (treatment == outcome) {
    return Error(ErrorCode::kInvalidArgument,
                 "Identify: treatment equals outcome");
  }
  if (!dag.IsObserved(treatment) || !dag.IsObserved(outcome)) {
    return Error(ErrorCode::kInvalidArgument,
                 "Identify: treatment and outcome must be observed");
  }
  IdentificationResult out;

  if (SatisfiesBackdoorCriterion(dag, treatment, outcome, NodeSet{})) {
    out.strategy = IdentificationStrategy::kNoConfounding;
    out.explanation =
        "No open backdoor path from " + dag.Name(treatment) + " to " +
        dag.Name(outcome) +
        "; the association is causal without adjustment (as in a "
        "randomized experiment).";
    return out;
  }

  const auto sets = MinimalAdjustmentSets(dag, treatment, outcome);
  if (!sets.empty()) {
    // Prefer the smallest, then lexicographic (already ordered by size).
    out.strategy = IdentificationStrategy::kBackdoor;
    out.adjustment_set = sets.front();
    out.explanation = "Adjusting for " + SetToText(dag, out.adjustment_set) +
                      " blocks every backdoor path from " +
                      dag.Name(treatment) + " to " + dag.Name(outcome) + ".";
    return out;
  }

  const auto mediators = FindFrontdoorMediators(dag, treatment, outcome);
  if (!mediators.empty()) {
    out.strategy = IdentificationStrategy::kFrontdoor;
    out.frontdoor_mediators = mediators;
    out.explanation = "Mediator " + dag.Name(mediators.front()) +
                      " satisfies the frontdoor criterion: the effect is "
                      "identified by composing " +
                      dag.Name(treatment) + " -> mediator and mediator -> " +
                      dag.Name(outcome) + " effects.";
    return out;
  }

  const auto instruments = FindInstruments(dag, treatment, outcome);
  if (!instruments.empty()) {
    out.strategy = IdentificationStrategy::kInstrument;
    out.instruments = instruments;
    out.explanation =
        dag.Name(instruments.front()) +
        " is a valid instrument: it moves " + dag.Name(treatment) +
        " and reaches " + dag.Name(outcome) +
        " only through it (exclusion restriction holds in the graph).";
    return out;
  }

  out.strategy = IdentificationStrategy::kNotIdentifiable;
  out.explanation = "Not identifiable with the supported criteria. Open "
                    "backdoor paths given the empty set:";
  for (const Path& path :
       OpenBackdoorPaths(dag, treatment, outcome, NodeSet{})) {
    out.explanation += "\n  " + path.ToText(dag);
  }
  return out;
}

Result<IdentificationResult> Identify(const Dag& dag,
                                      std::string_view treatment,
                                      std::string_view outcome) {
  auto t = dag.Node(treatment);
  if (!t.ok()) return t.error();
  auto y = dag.Node(outcome);
  if (!y.ok()) return y.error();
  return Identify(dag, t.value(), y.value());
}

}  // namespace sisyphus::causal
