#include "causal/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/error.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;

namespace {

/// Splits one CSV line honoring quotes; returns false on malformed
/// quoting.
bool SplitCsvLine(std::string_view line, std::vector<std::string>& out) {
  out.clear();
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out.push_back(std::move(field));
      field.clear();
    } else if (c != '\r') {
      field += c;
    }
  }
  out.push_back(std::move(field));
  return !in_quotes;
}

}  // namespace

Result<Dataset> ParseCsvDataset(std::string_view text) {
  std::vector<std::string> header;
  std::vector<std::vector<double>> columns;
  std::size_t line_number = 0;
  std::size_t start = 0;
  std::vector<std::string> fields;
  while (start <= text.size()) {
    const std::size_t end = text.find('\n', start);
    const std::string_view line =
        text.substr(start, end == std::string_view::npos ? std::string_view::npos
                                                         : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_number;
    if (line.empty() && start > text.size()) break;  // trailing newline
    if (line.empty()) continue;

    if (!SplitCsvLine(line, fields)) {
      return Error(ErrorCode::kParseError,
                   "CSV line " + std::to_string(line_number) +
                       ": unterminated quote");
    }
    if (header.empty()) {
      header = fields;
      for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i].empty()) {
          return Error(ErrorCode::kParseError,
                       "CSV header: empty column name at position " +
                           std::to_string(i + 1));
        }
        for (std::size_t j = 0; j < i; ++j) {
          if (header[j] == header[i]) {
            return Error(ErrorCode::kParseError,
                         "CSV header: duplicate column '" + header[i] + "'");
          }
        }
      }
      columns.resize(header.size());
      continue;
    }
    if (fields.size() != header.size()) {
      return Error(ErrorCode::kParseError,
                   "CSV line " + std::to_string(line_number) + ": " +
                       std::to_string(fields.size()) + " fields, header has " +
                       std::to_string(header.size()));
    }
    for (std::size_t c = 0; c < fields.size(); ++c) {
      const std::string& field = fields[c];
      if (field.empty()) {
        return Error(ErrorCode::kParseError,
                     "CSV line " + std::to_string(line_number) +
                         ": empty value in column '" + header[c] + "'");
      }
      char* parse_end = nullptr;
      const double value = std::strtod(field.c_str(), &parse_end);
      if (parse_end == field.c_str() || *parse_end != '\0') {
        return Error(ErrorCode::kParseError,
                     "CSV line " + std::to_string(line_number) +
                         ": non-numeric value '" + field + "' in column '" +
                         header[c] + "'");
      }
      columns[c].push_back(value);
    }
  }
  if (header.empty()) {
    return Error(ErrorCode::kParseError, "CSV: no header line");
  }
  Dataset data;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (auto s = data.AddColumn(header[c], std::move(columns[c])); !s.ok()) {
      return s.error();
    }
  }
  return data;
}

Result<Dataset> ReadCsvDataset(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return Error(ErrorCode::kInvalidArgument,
                 "ReadCsvDataset: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsvDataset(buffer.str());
}

}  // namespace sisyphus::causal
