// Robust synthetic control (Amjad, Shah & Shen, JMLR 2018) — the estimator
// the paper's case study uses for Table 1.
//
// Differences from the classical method:
//  1. Denoising: the donor matrix (all periods) is replaced by a low-rank
//     approximation via singular-value hard thresholding, de-emphasizing
//     idiosyncratic noise in individual donors.
//  2. Unconstrained (ridge-regularized) regression of the treated unit's
//     pre-period series on the *denoised* donors — weights may be negative
//     and need not sum to one, which matters when no convex combination of
//     donors tracks the treated unit.
#pragma once

#include "causal/synthetic_control.h"
#include "core/result.h"

namespace sisyphus::causal {

struct RobustSyntheticControlOptions {
  /// Singular values <= threshold are dropped. Negative (default) means
  /// "choose automatically" via the universal-threshold heuristic.
  double singular_value_threshold = -1.0;
  /// Ridge penalty on the donor regression.
  double ridge_lambda = 1e-2;
  /// Keep at least this many singular values regardless of threshold.
  std::size_t min_rank = 1;
};

struct RobustSyntheticControlFit {
  SyntheticControlFit base;      ///< weights, trajectory, diagnostics
  std::size_t retained_rank = 0; ///< singular values kept by the threshold
  double threshold_used = 0.0;
};

/// Fits robust synthetic control. Same input contract as
/// FitSyntheticControl.
core::Result<RobustSyntheticControlFit> FitRobustSyntheticControl(
    const SyntheticControlInput& input,
    const RobustSyntheticControlOptions& options = {});

}  // namespace sisyphus::causal
