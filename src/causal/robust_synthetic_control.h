// Robust synthetic control (Amjad, Shah & Shen, JMLR 2018) — the estimator
// the paper's case study uses for Table 1.
//
// Differences from the classical method:
//  1. Denoising: the donor matrix (all periods) is replaced by a low-rank
//     approximation via singular-value hard thresholding, de-emphasizing
//     idiosyncratic noise in individual donors.
//  2. Unconstrained (ridge-regularized) regression of the treated unit's
//     pre-period series on the *denoised* donors — weights may be negative
//     and need not sum to one, which matters when no convex combination of
//     donors tracks the treated unit.
//  3. Missing data: the estimator was designed for PARTIALLY OBSERVED
//     donor matrices. When the input carries missingness masks, unobserved
//     donor entries are zero-filled and the thresholded reconstruction is
//     rescaled by the inverse observed fraction 1/p̂ (the Amjad masked
//     matrix-completion step), and the treated regression uses observed
//     pre-periods only.
#pragma once

#include "causal/synthetic_control.h"
#include "core/result.h"

namespace sisyphus::causal {

struct RobustSyntheticControlOptions {
  /// Singular values <= threshold are dropped. Negative (default) means
  /// "choose automatically" via the universal-threshold heuristic.
  double singular_value_threshold = -1.0;
  /// Ridge penalty on the donor regression.
  double ridge_lambda = 1e-2;
  /// Keep at least this many singular values regardless of threshold.
  std::size_t min_rank = 1;
  /// Use the masked/rescaled path when the input carries masks. Off, the
  /// estimator treats interpolated entries as real measurements.
  bool use_mask = true;
  /// Donor matrices with a smaller observed fraction fail with
  /// kNumericalFailure instead of returning meaningless estimates.
  double min_observed_fraction = 0.05;
  /// Minimum observed treated pre-periods for the masked regression.
  std::size_t min_observed_pre_periods = 2;
};

struct RobustSyntheticControlFit {
  SyntheticControlFit base;      ///< weights, trajectory, diagnostics
  std::size_t retained_rank = 0; ///< singular values kept by the threshold
  double threshold_used = 0.0;
  /// Observed fraction p̂ of the donor matrix (1.0 without a mask).
  double observed_fraction = 1.0;
};

/// Fits robust synthetic control. Same input contract as
/// FitSyntheticControl.
core::Result<RobustSyntheticControlFit> FitRobustSyntheticControl(
    const SyntheticControlInput& input,
    const RobustSyntheticControlOptions& options = {});

}  // namespace sisyphus::causal
