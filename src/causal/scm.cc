#include "causal/scm.h"

#include <algorithm>

#include "core/error.h"

namespace sisyphus::causal {

using core::Error;
using core::ErrorCode;
using core::Result;
using core::Status;

Scm::Scm(Dag dag) : dag_(std::move(dag)) {
  equations_.resize(dag_.NodeCount());
  for (NodeId id : dag_.AllNodes()) {
    equations_[id.value()].linear.coefficients.assign(
        dag_.Parents(id).size(), 0.0);
  }
  topo_order_ = dag_.TopologicalOrder();
}

Status Scm::SetLinear(NodeId node, LinearEquation equation) {
  SISYPHUS_REQUIRE(node.value() < equations_.size(), "SetLinear: unknown id");
  if (equation.coefficients.size() != dag_.Parents(node).size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "SetLinear: '" + dag_.Name(node) + "' has " +
                     std::to_string(dag_.Parents(node).size()) +
                     " parents but " +
                     std::to_string(equation.coefficients.size()) +
                     " coefficients were given");
  }
  if (equation.noise_sd < 0.0) {
    return Error(ErrorCode::kInvalidArgument, "SetLinear: negative noise sd");
  }
  equations_[node.value()].linear = std::move(equation);
  equations_[node.value()].custom.reset();
  return Status::Ok();
}

Status Scm::SetLinear(
    std::string_view node, double intercept,
    const std::vector<std::pair<std::string, double>>& parent_coefficients,
    double noise_sd) {
  auto id = dag_.Node(node);
  if (!id.ok()) return id.error();
  const auto& parents = dag_.Parents(id.value());
  LinearEquation eq;
  eq.intercept = intercept;
  eq.noise_sd = noise_sd;
  eq.coefficients.assign(parents.size(), 0.0);
  for (const auto& [name, coeff] : parent_coefficients) {
    auto pid = dag_.Node(name);
    if (!pid.ok()) return pid.error();
    const auto it = std::find(parents.begin(), parents.end(), pid.value());
    if (it == parents.end()) {
      return Error(ErrorCode::kInvalidArgument,
                   "SetLinear: '" + name + "' is not a parent of '" +
                       std::string(node) + "'");
    }
    eq.coefficients[static_cast<std::size_t>(it - parents.begin())] = coeff;
  }
  return SetLinear(id.value(), std::move(eq));
}

Status Scm::SetCustom(NodeId node, CustomEquation equation) {
  SISYPHUS_REQUIRE(node.value() < equations_.size(), "SetCustom: unknown id");
  if (!equation.mechanism) {
    return Error(ErrorCode::kInvalidArgument, "SetCustom: empty mechanism");
  }
  if (equation.noise_sd < 0.0) {
    return Error(ErrorCode::kInvalidArgument, "SetCustom: negative noise sd");
  }
  equations_[node.value()].custom = std::move(equation);
  return Status::Ok();
}

double Scm::StructuralValue(NodeId node,
                            const std::vector<double>& values) const {
  const auto& parents = dag_.Parents(node);
  std::vector<double> parent_values(parents.size());
  for (std::size_t i = 0; i < parents.size(); ++i)
    parent_values[i] = values[parents[i].value()];
  const auto& eq = equations_[node.value()];
  if (eq.custom.has_value()) {
    return eq.custom->mechanism(parent_values);
  }
  double sum = eq.linear.intercept;
  for (std::size_t i = 0; i < parents.size(); ++i)
    sum += eq.linear.coefficients[i] * parent_values[i];
  return sum;
}

Dataset Scm::Sample(std::size_t n, core::Rng& rng,
                    const std::vector<Intervention>& interventions,
                    bool include_latents) const {
  std::vector<std::optional<double>> clamped(dag_.NodeCount());
  for (const auto& iv : interventions) clamped[iv.node.value()] = iv.value;

  std::vector<std::vector<double>> columns(dag_.NodeCount());
  for (auto& col : columns) col.reserve(n);

  std::vector<double> values(dag_.NodeCount(), 0.0);
  for (std::size_t row = 0; row < n; ++row) {
    for (NodeId node : topo_order_) {
      if (clamped[node.value()].has_value()) {
        values[node.value()] = *clamped[node.value()];
        continue;
      }
      const auto& eq = equations_[node.value()];
      const double sd =
          eq.custom.has_value() ? eq.custom->noise_sd : eq.linear.noise_sd;
      values[node.value()] =
          StructuralValue(node, values) + (sd > 0.0 ? rng.Gaussian(0.0, sd) : 0.0);
    }
    for (NodeId node : dag_.AllNodes())
      columns[node.value()].push_back(values[node.value()]);
  }

  Dataset out;
  for (NodeId node : dag_.AllNodes()) {
    if (!include_latents && !dag_.IsObserved(node)) continue;
    const auto status =
        out.AddColumn(dag_.Name(node), std::move(columns[node.value()]));
    SISYPHUS_REQUIRE(status.ok(), "Sample: column insert failed");
  }
  return out;
}

double Scm::ExpectedUnderIntervention(NodeId outcome,
                                      const std::vector<Intervention>& dos,
                                      std::size_t n, core::Rng& rng) const {
  SISYPHUS_REQUIRE(n > 0, "ExpectedUnderIntervention: n == 0");
  const Dataset sample = Sample(n, rng, dos, /*include_latents=*/true);
  const auto col = sample.ColumnOrDie(dag_.Name(outcome));
  double sum = 0.0;
  for (double v : col) sum += v;
  return sum / static_cast<double>(n);
}

double Scm::AverageTreatmentEffect(NodeId treatment, NodeId outcome,
                                   double high, double low, std::size_t n,
                                   core::Rng& rng) const {
  const double y_high =
      ExpectedUnderIntervention(outcome, {{treatment, high}}, n, rng);
  const double y_low =
      ExpectedUnderIntervention(outcome, {{treatment, low}}, n, rng);
  return y_high - y_low;
}

Result<std::unordered_map<std::string, double>> Scm::Counterfactual(
    const std::unordered_map<std::string, double>& factual,
    const std::vector<Intervention>& interventions) const {
  // Abduction: recover each node's additive noise from the factual world.
  std::vector<double> factual_values(dag_.NodeCount());
  for (NodeId node : dag_.AllNodes()) {
    const auto it = factual.find(dag_.Name(node));
    if (it == factual.end()) {
      return Error(ErrorCode::kInvalidArgument,
                   "Counterfactual: factual world missing node '" +
                       dag_.Name(node) +
                       "' (every node, latents included, is required "
                       "for abduction)");
    }
    factual_values[node.value()] = it->second;
  }
  std::vector<double> noise(dag_.NodeCount());
  for (NodeId node : topo_order_) {
    noise[node.value()] =
        factual_values[node.value()] - StructuralValue(node, factual_values);
  }
  // Action + prediction: clamp intervened nodes, replay with stored noise.
  std::vector<std::optional<double>> clamped(dag_.NodeCount());
  for (const auto& iv : interventions) clamped[iv.node.value()] = iv.value;
  std::vector<double> values(dag_.NodeCount());
  for (NodeId node : topo_order_) {
    if (clamped[node.value()].has_value()) {
      values[node.value()] = *clamped[node.value()];
    } else {
      values[node.value()] =
          StructuralValue(node, values) + noise[node.value()];
    }
  }
  std::unordered_map<std::string, double> out;
  for (NodeId node : dag_.AllNodes()) out[dag_.Name(node)] = values[node.value()];
  return out;
}

std::unordered_map<std::string, double> Scm::SampleWorld(
    core::Rng& rng) const {
  const Dataset sample = Sample(1, rng, {}, /*include_latents=*/true);
  std::unordered_map<std::string, double> out;
  for (NodeId node : dag_.AllNodes())
    out[dag_.Name(node)] = sample.ColumnOrDie(dag_.Name(node))[0];
  return out;
}

double Scm::LinearCoefficient(NodeId parent, NodeId child) const {
  const auto& parents = dag_.Parents(child);
  const auto it = std::find(parents.begin(), parents.end(), parent);
  if (it == parents.end()) return 0.0;
  const auto& eq = equations_[child.value()];
  if (eq.custom.has_value()) return 0.0;
  return eq.linear.coefficients[static_cast<std::size_t>(it - parents.begin())];
}

}  // namespace sisyphus::causal
