// Descriptive statistics over spans of doubles.
//
// All functions are NaN-intolerant by contract: callers filter missing
// values first (the panel builder in sisyphus::measure does this).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sisyphus::stats {

/// Arithmetic mean. Precondition: non-empty.
double Mean(std::span<const double> xs);

/// Neumaier-compensated sum: tracks a running error term so the result is
/// nearly independent of accumulation order and magnitude disparity. The
/// panel builder feeds it *sorted* cell values, which pins the result to
/// the value multiset — the batch and streaming ingest paths then agree
/// bit-for-bit no matter what order records arrived in.
double CompensatedSum(std::span<const double> xs);

/// CompensatedSum(xs) / xs.size(). Precondition: non-empty.
double CompensatedMean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator). Precondition: size >= 2.
double Variance(std::span<const double> xs);

/// sqrt(Variance).
double StdDev(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. Precondition: non-empty.
double Quantile(std::span<const double> xs, double q);

/// Quantile(0.5).
double Median(std::span<const double> xs);

/// Median absolute deviation (robust scale), scaled by 1.4826 to be
/// consistent with the standard deviation under normality.
double MedianAbsoluteDeviation(std::span<const double> xs);

/// Pearson correlation. Precondition: equal sizes >= 2, non-degenerate.
double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys);

/// Sample covariance (n-1 denominator). Precondition: equal sizes >= 2.
double Covariance(std::span<const double> xs, std::span<const double> ys);

/// Root mean squared error between two equal-length series.
double Rmse(std::span<const double> a, std::span<const double> b);

/// Mean absolute error between two equal-length series.
double MeanAbsoluteError(std::span<const double> a, std::span<const double> b);

/// Min / max. Precondition: non-empty.
double Min(std::span<const double> xs);
double Max(std::span<const double> xs);

/// Centered moving average with window `w` (odd preferred); edges use the
/// available partial window. Returns a series of the same length.
std::vector<double> MovingAverage(std::span<const double> xs, std::size_t w);

/// z-scores: (x - mean) / sd. Precondition: size >= 2 and sd > 0.
std::vector<double> Standardize(std::span<const double> xs);

}  // namespace sisyphus::stats
