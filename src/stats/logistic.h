// Logistic regression via iteratively reweighted least squares (IRLS).
//
// Used by the causal estimators for propensity scores (inverse propensity
// weighting needs P(treated | covariates)).
#pragma once

#include <span>

#include "core/result.h"
#include "stats/matrix.h"

namespace sisyphus::stats {

struct LogisticFit {
  Vector coefficients;  ///< includes intercept at index 0
  std::size_t iterations = 0;
  bool converged = false;
  double log_likelihood = 0.0;

  /// P(y = 1 | row) for a row of regressors (without the intercept column).
  double PredictProbability(std::span<const double> row) const;
};

struct LogisticOptions {
  std::size_t max_iterations = 100;
  double tolerance = 1e-9;
  /// Small L2 penalty stabilizes IRLS under separation; 0 disables.
  double l2_penalty = 1e-8;
};

/// Fits P(y=1|x) = sigmoid(b0 + x.b). y entries must be 0 or 1.
/// Fails (kInvalidArgument) on shape/label errors, (kNumericalFailure) if
/// IRLS diverges.
core::Result<LogisticFit> LogisticRegression(
    const Matrix& design, std::span<const double> y,
    const LogisticOptions& options = {});

/// Numerically stable sigmoid.
double Sigmoid(double z);

}  // namespace sisyphus::stats
