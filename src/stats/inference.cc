#include "stats/inference.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace sisyphus::stats {

PermutationTestResult PermutationTest(
    std::span<const double> group_a, std::span<const double> group_b,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& statistic,
    std::size_t permutations, core::Rng& rng) {
  SISYPHUS_REQUIRE(!group_a.empty() && !group_b.empty(),
                   "PermutationTest: empty group");
  PermutationTestResult out;
  out.observed_statistic = statistic(group_a, group_b);
  out.permutations = permutations;

  std::vector<double> pooled;
  pooled.reserve(group_a.size() + group_b.size());
  pooled.insert(pooled.end(), group_a.begin(), group_a.end());
  pooled.insert(pooled.end(), group_b.begin(), group_b.end());
  const std::size_t na = group_a.size();

  std::size_t extreme = 0;
  const double threshold = std::abs(out.observed_statistic);
  for (std::size_t it = 0; it < permutations; ++it) {
    // Fisher–Yates shuffle.
    for (std::size_t i = pooled.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(pooled[i - 1], pooled[j]);
    }
    std::span<const double> pa(pooled.data(), na);
    std::span<const double> pb(pooled.data() + na, pooled.size() - na);
    if (std::abs(statistic(pa, pb)) >= threshold) ++extreme;
  }
  out.p_value = static_cast<double>(extreme + 1) /
                static_cast<double>(permutations + 1);
  return out;
}

PermutationTestResult PermutationMeanDifferenceTest(
    std::span<const double> group_a, std::span<const double> group_b,
    std::size_t permutations, core::Rng& rng) {
  return PermutationTest(
      group_a, group_b,
      [](std::span<const double> a, std::span<const double> b) {
        return Mean(a) - Mean(b);
      },
      permutations, rng);
}

BootstrapInterval BootstrapCi(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double confidence, core::Rng& rng) {
  SISYPHUS_REQUIRE(!sample.empty(), "BootstrapCi: empty sample");
  SISYPHUS_REQUIRE(confidence > 0.0 && confidence < 1.0,
                   "BootstrapCi: confidence outside (0,1)");
  BootstrapInterval out;
  out.estimate = statistic(sample);
  std::vector<double> resample(sample.size());
  std::vector<double> stats;
  stats.reserve(replicates);
  for (std::size_t it = 0; it < replicates; ++it) {
    for (auto& x : resample) {
      const auto idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(sample.size()) - 1));
      x = sample[idx];
    }
    stats.push_back(statistic(resample));
  }
  const double alpha = 1.0 - confidence;
  out.lower = Quantile(stats, alpha / 2.0);
  out.upper = Quantile(stats, 1.0 - alpha / 2.0);
  out.standard_error = stats.size() >= 2 ? StdDev(stats) : 0.0;
  return out;
}

TTestResult WelchTTest(std::span<const double> a, std::span<const double> b) {
  SISYPHUS_REQUIRE(a.size() >= 2 && b.size() >= 2,
                   "WelchTTest: need >= 2 samples per group");
  TTestResult out;
  const double ma = Mean(a), mb = Mean(b);
  const double va = Variance(a), vb = Variance(b);
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  const double se2 = va / na + vb / nb;
  out.mean_difference = ma - mb;
  if (se2 <= 0.0) {
    out.statistic = 0.0;
    out.dof = na + nb - 2.0;
    out.p_value = out.mean_difference == 0.0 ? 1.0 : 0.0;
    return out;
  }
  out.statistic = out.mean_difference / std::sqrt(se2);
  out.dof = se2 * se2 /
            (va * va / (na * na * (na - 1.0)) +
             vb * vb / (nb * nb * (nb - 1.0)));
  out.p_value = TwoSidedTPValue(out.statistic, out.dof);
  return out;
}

KsTestResult KolmogorovSmirnovTest(std::span<const double> a,
                                   std::span<const double> b) {
  SISYPHUS_REQUIRE(!a.empty() && !b.empty(), "KsTest: empty sample");
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < sa.size() && j < sb.size()) {
    const double x = std::min(sa[i], sb[j]);
    while (i < sa.size() && sa[i] <= x) ++i;
    while (j < sb.size() && sb[j] <= x) ++j;
    const double fa = static_cast<double>(i) / static_cast<double>(sa.size());
    const double fb = static_cast<double>(j) / static_cast<double>(sb.size());
    d = std::max(d, std::abs(fa - fb));
  }
  KsTestResult out;
  out.statistic = d;
  // Asymptotic Kolmogorov distribution.
  const double ne = static_cast<double>(sa.size()) *
                    static_cast<double>(sb.size()) /
                    static_cast<double>(sa.size() + sb.size());
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  double p = 0.0;
  double sign = 1.0;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * lambda * lambda * k * k);
    p += sign * term;
    sign = -sign;
    if (term < 1e-12) break;
  }
  out.p_value = std::min(1.0, std::max(0.0, 2.0 * p));
  return out;
}

double EmpiricalUpperPValue(double observed,
                            std::span<const double> distribution) {
  std::size_t at_least = 0;
  for (double x : distribution)
    if (x >= observed) ++at_least;
  return static_cast<double>(at_least + 1) /
         static_cast<double>(distribution.size() + 1);
}

}  // namespace sisyphus::stats
