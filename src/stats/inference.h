// Resampling-based and classical inference: permutation tests, bootstrap
// confidence intervals, Welch's t-test, Kolmogorov–Smirnov.
//
// The paper's Table 1 p-values come from *placebo* permutation over the
// donor pool (implemented in causal/placebo.h on top of these primitives).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/rng.h"

namespace sisyphus::stats {

struct PermutationTestResult {
  double observed_statistic = 0.0;
  double p_value = 1.0;  ///< P(|T_perm| >= |T_obs|) with +1 correction
  std::size_t permutations = 0;
};

/// Two-sample permutation test of mean difference: shuffles group labels
/// `permutations` times. p-value uses the standard (b+1)/(m+1) correction.
PermutationTestResult PermutationMeanDifferenceTest(
    std::span<const double> group_a, std::span<const double> group_b,
    std::size_t permutations, core::Rng& rng);

/// Generic permutation test: `statistic` maps (a, b) to a scalar; labels
/// are shuffled, two-sided.
PermutationTestResult PermutationTest(
    std::span<const double> group_a, std::span<const double> group_b,
    const std::function<double(std::span<const double>,
                               std::span<const double>)>& statistic,
    std::size_t permutations, core::Rng& rng);

struct BootstrapInterval {
  double estimate = 0.0;  ///< statistic on the original sample
  double lower = 0.0;     ///< percentile CI bounds
  double upper = 0.0;
  double standard_error = 0.0;  ///< bootstrap SE
};

/// Percentile bootstrap CI for an arbitrary statistic of one sample.
/// `confidence` in (0, 1), e.g. 0.95.
BootstrapInterval BootstrapCi(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double confidence, core::Rng& rng);

struct TTestResult {
  double statistic = 0.0;
  double dof = 0.0;   ///< Welch–Satterthwaite
  double p_value = 1.0;
  double mean_difference = 0.0;
};

/// Welch's two-sample t-test (unequal variances). Preconditions: both
/// samples have size >= 2.
TTestResult WelchTTest(std::span<const double> a, std::span<const double> b);

struct KsTestResult {
  double statistic = 0.0;  ///< sup |F_a - F_b|
  double p_value = 1.0;    ///< asymptotic Kolmogorov distribution
};

/// Two-sample Kolmogorov–Smirnov test.
KsTestResult KolmogorovSmirnovTest(std::span<const double> a,
                                   std::span<const double> b);

/// Empirical one-sided p-value of `observed` within a null `distribution`:
/// (#{x >= observed} + 1) / (n + 1). Used for placebo RMSE-ratio ranks.
double EmpiricalUpperPValue(double observed,
                            std::span<const double> distribution);

}  // namespace sisyphus::stats
