#include "stats/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "core/error.h"

namespace sisyphus::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    SISYPHUS_REQUIRE(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColumnVector(std::span<const double> data) {
  Matrix m(data.size(), 1);
  for (std::size_t i = 0; i < data.size(); ++i) m(i, 0) = data[i];
  return m;
}

Matrix Matrix::FromColumns(const std::vector<Vector>& columns) {
  if (columns.empty()) return {};
  const std::size_t n = columns.front().size();
  Matrix m(n, columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    SISYPHUS_REQUIRE(columns[c].size() == n, "FromColumns: ragged columns");
    for (std::size_t r = 0; r < n; ++r) m(r, c) = columns[c][r];
  }
  return m;
}

Vector Matrix::Column(std::size_t c) const {
  SISYPHUS_REQUIRE(c < cols_, "Column: index out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetColumn(std::size_t c, std::span<const double> values) {
  SISYPHUS_REQUIRE(c < cols_ && values.size() == rows_,
                   "SetColumn: shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

void Matrix::SetRow(std::size_t r, std::span<const double> values) {
  SISYPHUS_REQUIRE(r < rows_ && values.size() == cols_,
                   "SetRow: shape mismatch");
  std::copy(values.begin(), values.end(), Row(r).begin());
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::Block(std::size_t r0, std::size_t r1, std::size_t c0,
                     std::size_t c1) const {
  SISYPHUS_REQUIRE(r0 <= r1 && r1 <= rows_ && c0 <= c1 && c1 <= cols_,
                   "Block: bad range");
  Matrix out(r1 - r0, c1 - c0);
  for (std::size_t r = r0; r < r1; ++r)
    for (std::size_t c = c0; c < c1; ++c) out(r - r0, c - c0) = (*this)(r, c);
  return out;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  SISYPHUS_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                   "MaxAbsDiff: shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  SISYPHUS_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "+: shape");
  Matrix out = a;
  for (std::size_t i = 0; i < out.data_.size(); ++i) out.data_[i] += b.data_[i];
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  SISYPHUS_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "-: shape");
  Matrix out = a;
  for (std::size_t i = 0; i < out.data_.size(); ++i) out.data_[i] -= b.data_[i];
  return out;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  SISYPHUS_REQUIRE(a.cols_ == b.rows_, "*: inner dimension mismatch");
  Matrix out(a.rows_, b.cols_);
  // ikj order for row-major cache friendliness.
  for (std::size_t i = 0; i < a.rows_; ++i) {
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Matrix operator*(double scalar, const Matrix& m) {
  Matrix out = m;
  for (double& x : out.data_) x *= scalar;
  return out;
}

Vector Matrix::Apply(std::span<const double> x) const {
  SISYPHUS_REQUIRE(x.size() == cols_, "Apply: size mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = Dot(Row(r), x);
  return out;
}

Vector Matrix::ApplyTransposed(std::span<const double> x) const {
  SISYPHUS_REQUIRE(x.size() == rows_, "ApplyTransposed: size mismatch");
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    auto row = Row(r);
    for (std::size_t c = 0; c < cols_; ++c) out[c] += xr * row[c];
  }
  return out;
}

std::string Matrix::ToText(int precision) const {
  std::string out;
  char buffer[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    out += "[ ";
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buffer, sizeof(buffer), "%.*f ", precision, (*this)(r, c));
      out += buffer;
    }
    out += "]\n";
  }
  return out;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  SISYPHUS_REQUIRE(a.size() == b.size(), "Dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(std::span<const double> a) { return std::sqrt(Dot(a, a)); }

Vector Axpy(std::span<const double> a, double s, std::span<const double> b) {
  SISYPHUS_REQUIRE(a.size() == b.size(), "Axpy: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

Vector Scale(double s, std::span<const double> a) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = s * a[i];
  return out;
}

Vector Subtract(std::span<const double> a, std::span<const double> b) {
  return Axpy(a, -1.0, b);
}

Vector Add(std::span<const double> a, std::span<const double> b) {
  return Axpy(a, 1.0, b);
}

Vector ProjectToSimplex(std::span<const double> v) {
  SISYPHUS_REQUIRE(!v.empty(), "ProjectToSimplex: empty input");
  Vector sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double running = 0.0;
  double threshold = 0.0;
  std::size_t support = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    running += sorted[i];
    const double candidate =
        (running - 1.0) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0.0) {
      threshold = candidate;
      support = i + 1;
    }
  }
  SISYPHUS_REQUIRE(support > 0, "ProjectToSimplex: degenerate input");
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = std::max(0.0, v[i] - threshold);
  return out;
}

}  // namespace sisyphus::stats
