#include "stats/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "core/error.h"

namespace sisyphus::stats {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    SISYPHUS_REQUIRE(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ColumnVector(std::span<const double> data) {
  Matrix m(data.size(), 1);
  for (std::size_t i = 0; i < data.size(); ++i) m(i, 0) = data[i];
  return m;
}

Matrix Matrix::FromColumns(const std::vector<Vector>& columns) {
  if (columns.empty()) return {};
  const std::size_t n = columns.front().size();
  Matrix m(n, columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    SISYPHUS_REQUIRE(columns[c].size() == n, "FromColumns: ragged columns");
    for (std::size_t r = 0; r < n; ++r) m(r, c) = columns[c][r];
  }
  return m;
}

Vector Matrix::Column(std::size_t c) const {
  SISYPHUS_REQUIRE(c < cols_, "Column: index out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::SetColumn(std::size_t c, std::span<const double> values) {
  SISYPHUS_REQUIRE(c < cols_ && values.size() == rows_,
                   "SetColumn: shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

void Matrix::SetRow(std::size_t r, std::span<const double> values) {
  SISYPHUS_REQUIRE(r < rows_ && values.size() == cols_,
                   "SetRow: shape mismatch");
  std::copy(values.begin(), values.end(), Row(r).begin());
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

Matrix Matrix::Block(std::size_t r0, std::size_t r1, std::size_t c0,
                     std::size_t c1) const {
  SISYPHUS_REQUIRE(r0 <= r1 && r1 <= rows_ && c0 <= c1 && c1 <= cols_,
                   "Block: bad range");
  Matrix out(r1 - r0, c1 - c0);
  for (std::size_t r = r0; r < r1; ++r)
    for (std::size_t c = c0; c < c1; ++c) out(r - r0, c - c0) = (*this)(r, c);
  return out;
}

double Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  SISYPHUS_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                   "MaxAbsDiff: shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  return worst;
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  SISYPHUS_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "+: shape");
  Matrix out = a;
  for (std::size_t i = 0; i < out.data_.size(); ++i) out.data_[i] += b.data_[i];
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  SISYPHUS_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_, "-: shape");
  Matrix out = a;
  for (std::size_t i = 0; i < out.data_.size(); ++i) out.data_[i] -= b.data_[i];
  return out;
}

Matrix MultiplyReference(const Matrix& a, const Matrix& b) {
  SISYPHUS_REQUIRE(a.cols() == b.rows(), "*: inner dimension mismatch");
  Matrix out(a.rows(), b.cols());
  // ikj order for row-major cache friendliness.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

#if defined(__x86_64__) && defined(__GNUC__)
#define SISYPHUS_HAVE_AVX2_KERNEL 1
// Register-tiled AVX2 microkernel: a 4x8 output tile lives in 8 ymm
// accumulators across the full k extent and is stored exactly once.
// Every out(i,j) is a single accumulator summed over k in ascending
// order with separate multiply and add (target("avx2") without "fma",
// so GCC cannot contract a*b+c into one rounding) — bit-identical to
// MultiplyReference, just like the scalar blocked kernel below.
__attribute__((target("avx2"))) static void MultiplyTiledAvx2(
    const double* ad, const double* bd, double* od, std::size_t m,
    std::size_t inner, std::size_t n) {
  constexpr std::size_t kTileI = 4;
  constexpr std::size_t kTileJ = 8;
  const std::size_t m4 = m - m % kTileI;
  const std::size_t n8 = n - n % kTileJ;
  for (std::size_t i0 = 0; i0 < m4; i0 += kTileI) {
    const double* a0 = ad + i0 * inner;
    const double* a1 = a0 + inner;
    const double* a2 = a1 + inner;
    const double* a3 = a2 + inner;
    for (std::size_t j0 = 0; j0 < n8; j0 += kTileJ) {
      __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
      __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
      __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
      __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
      const double* br = bd + j0;
      for (std::size_t k = 0; k < inner; ++k, br += n) {
        const __m256d b0 = _mm256_loadu_pd(br);
        const __m256d b1 = _mm256_loadu_pd(br + 4);
        const __m256d v0 = _mm256_broadcast_sd(a0 + k);
        c00 = _mm256_add_pd(c00, _mm256_mul_pd(v0, b0));
        c01 = _mm256_add_pd(c01, _mm256_mul_pd(v0, b1));
        const __m256d v1 = _mm256_broadcast_sd(a1 + k);
        c10 = _mm256_add_pd(c10, _mm256_mul_pd(v1, b0));
        c11 = _mm256_add_pd(c11, _mm256_mul_pd(v1, b1));
        const __m256d v2 = _mm256_broadcast_sd(a2 + k);
        c20 = _mm256_add_pd(c20, _mm256_mul_pd(v2, b0));
        c21 = _mm256_add_pd(c21, _mm256_mul_pd(v2, b1));
        const __m256d v3 = _mm256_broadcast_sd(a3 + k);
        c30 = _mm256_add_pd(c30, _mm256_mul_pd(v3, b0));
        c31 = _mm256_add_pd(c31, _mm256_mul_pd(v3, b1));
      }
      double* orow = od + i0 * n + j0;
      _mm256_storeu_pd(orow, c00);
      _mm256_storeu_pd(orow + 4, c01);
      _mm256_storeu_pd(orow + n, c10);
      _mm256_storeu_pd(orow + n + 4, c11);
      _mm256_storeu_pd(orow + 2 * n, c20);
      _mm256_storeu_pd(orow + 2 * n + 4, c21);
      _mm256_storeu_pd(orow + 3 * n, c30);
      _mm256_storeu_pd(orow + 3 * n + 4, c31);
    }
  }
  // Remainder columns (j >= n8) for the tiled rows, and remainder rows
  // (i >= m4) in full: one scalar accumulator per element, k ascending.
  for (std::size_t i = 0; i < m4; ++i) {
    const double* arow = ad + i * inner;
    for (std::size_t j = n8; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < inner; ++k) acc += arow[k] * bd[k * n + j];
      od[i * n + j] = acc;
    }
  }
  for (std::size_t i = m4; i < m; ++i) {
    const double* arow = ad + i * inner;
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < inner; ++k) acc += arow[k] * bd[k * n + j];
      od[i * n + j] = acc;
    }
  }
}
#endif  // SISYPHUS_HAVE_AVX2_KERNEL

Matrix operator*(const Matrix& a, const Matrix& b) {
  SISYPHUS_REQUIRE(a.cols_ == b.rows_, "*: inner dimension mismatch");
  Matrix out(a.rows_, b.cols_);
  const std::size_t m = a.rows_;
  const std::size_t inner = a.cols_;
  const std::size_t n = b.cols_;
  if (m == 0 || inner == 0 || n == 0) return out;
#if SISYPHUS_HAVE_AVX2_KERNEL
  static const bool have_avx2 = __builtin_cpu_supports("avx2");
  if (have_avx2) {
    MultiplyTiledAvx2(a.data_.data(), b.data_.data(), out.data_.data(), m,
                      inner, n);
    return out;
  }
#endif
  // Portable fallback: cache-blocked ikj kernel. A k-tile of B (kBlockK
  // rows) stays resident
  // across a 4-row micro-panel of A, so each B row loaded from memory feeds
  // four independent accumulator streams (better ILP, 4x the arithmetic per
  // byte of B traffic). Each out(i,j) still accumulates over k in strictly
  // ascending order — per-element FP semantics match MultiplyReference, so
  // results agree to the last bit (modulo the reference's skip of exact-zero
  // a(i,k) terms, which only affects the sign of exact zeros).
  constexpr std::size_t kBlockK = 64;
  constexpr std::size_t kUnrollI = 4;
  const double* ad = a.data_.data();
  const double* bd = b.data_.data();
  double* od = out.data_.data();
  for (std::size_t k0 = 0; k0 < inner; k0 += kBlockK) {
    const std::size_t k1 = std::min(k0 + kBlockK, inner);
    std::size_t i = 0;
    for (; i + kUnrollI <= m; i += kUnrollI) {
      const double* a0 = ad + i * inner;
      const double* a1 = a0 + inner;
      const double* a2 = a1 + inner;
      const double* a3 = a2 + inner;
      double* o0 = od + i * n;
      double* o1 = o0 + n;
      double* o2 = o1 + n;
      double* o3 = o2 + n;
      for (std::size_t k = k0; k < k1; ++k) {
        const double* br = bd + k * n;
        const double a0k = a0[k];
        const double a1k = a1[k];
        const double a2k = a2[k];
        const double a3k = a3[k];
        for (std::size_t j = 0; j < n; ++j) {
          const double bkj = br[j];
          o0[j] += a0k * bkj;
          o1[j] += a1k * bkj;
          o2[j] += a2k * bkj;
          o3[j] += a3k * bkj;
        }
      }
    }
    for (; i < m; ++i) {
      const double* arow = ad + i * inner;
      double* orow = od + i * n;
      for (std::size_t k = k0; k < k1; ++k) {
        const double aik = arow[k];
        const double* br = bd + k * n;
        for (std::size_t j = 0; j < n; ++j) orow[j] += aik * br[j];
      }
    }
  }
  return out;
}

Matrix MultiplyAtB(const Matrix& a, const Matrix& b) {
  SISYPHUS_REQUIRE(a.rows() == b.rows(), "MultiplyAtB: row count mismatch");
  Matrix out(a.cols(), b.cols());
  const std::size_t n = b.cols();
  // Rank-1 accumulation streaming the rows of A and B once: out(c1,c2) =
  // sum_r a(r,c1) b(r,c2) with r ascending — the exact accumulation order
  // (and exact-zero skip) of Transposed()*b, without materializing A^T.
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const auto arow = a.Row(r);
    const double* brow = b.Row(r).data();
    for (std::size_t c1 = 0; c1 < a.cols(); ++c1) {
      const double v = arow[c1];
      if (v == 0.0) continue;
      double* orow = out.Row(c1).data();
      for (std::size_t c2 = 0; c2 < n; ++c2) orow[c2] += v * brow[c2];
    }
  }
  return out;
}

Matrix MultiplyAbT(const Matrix& a, const Matrix& b) {
  SISYPHUS_REQUIRE(a.cols() == b.cols(), "MultiplyAbT: col count mismatch");
  Matrix out(a.rows(), b.rows());
  // Both operands are streamed along contiguous rows; each entry is a dot
  // with k ascending, matching a * b.Transposed() without the materialized
  // transpose.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.Row(i);
    for (std::size_t j = 0; j < b.rows(); ++j) {
      out(i, j) = Dot(arow, b.Row(j));
    }
  }
  return out;
}

Matrix operator*(double scalar, const Matrix& m) {
  Matrix out = m;
  for (double& x : out.data_) x *= scalar;
  return out;
}

Vector Matrix::Apply(std::span<const double> x) const {
  SISYPHUS_REQUIRE(x.size() == cols_, "Apply: size mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = Dot(Row(r), x);
  return out;
}

Vector Matrix::ApplyTransposed(std::span<const double> x) const {
  SISYPHUS_REQUIRE(x.size() == rows_, "ApplyTransposed: size mismatch");
  Vector out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    auto row = Row(r);
    for (std::size_t c = 0; c < cols_; ++c) out[c] += xr * row[c];
  }
  return out;
}

std::string Matrix::ToText(int precision) const {
  std::string out;
  char buffer[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    out += "[ ";
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buffer, sizeof(buffer), "%.*f ", precision, (*this)(r, c));
      out += buffer;
    }
    out += "]\n";
  }
  return out;
}

double Dot(std::span<const double> a, std::span<const double> b) {
  SISYPHUS_REQUIRE(a.size() == b.size(), "Dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double Norm2(std::span<const double> a) { return std::sqrt(Dot(a, a)); }

Vector Axpy(std::span<const double> a, double s, std::span<const double> b) {
  SISYPHUS_REQUIRE(a.size() == b.size(), "Axpy: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

Vector Scale(double s, std::span<const double> a) {
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = s * a[i];
  return out;
}

Vector Subtract(std::span<const double> a, std::span<const double> b) {
  return Axpy(a, -1.0, b);
}

Vector Add(std::span<const double> a, std::span<const double> b) {
  return Axpy(a, 1.0, b);
}

Vector ProjectToSimplex(std::span<const double> v) {
  SISYPHUS_REQUIRE(!v.empty(), "ProjectToSimplex: empty input");
  Vector sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  double running = 0.0;
  double threshold = 0.0;
  std::size_t support = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    running += sorted[i];
    const double candidate =
        (running - 1.0) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0.0) {
      threshold = candidate;
      support = i + 1;
    }
  }
  SISYPHUS_REQUIRE(support > 0, "ProjectToSimplex: degenerate input");
  Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = std::max(0.0, v[i] - threshold);
  return out;
}

}  // namespace sisyphus::stats
