// TimeSeries: an ordered (SimTime, value) sequence with the aggregation
// operations panel construction needs (bucketed medians, alignment,
// differencing).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/sim_time.h"

namespace sisyphus::stats {

struct TimePoint {
  core::SimTime time;
  double value = 0.0;
};

/// An append-only time series. Points must be appended in non-decreasing
/// time order (enforced).
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Precondition: time >= last appended time.
  void Append(core::SimTime time, double value);

  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const TimePoint& operator[](std::size_t i) const { return points_[i]; }
  std::span<const TimePoint> points() const { return points_; }

  /// All values in [start, end).
  std::vector<double> ValuesInWindow(core::SimTime start,
                                     core::SimTime end) const;

  /// Median of values in [start, end); nullopt when the window is empty.
  std::optional<double> MedianInWindow(core::SimTime start,
                                       core::SimTime end) const;

  /// Buckets the series into consecutive windows of `bucket` length
  /// starting at `origin`, taking the median of each bucket; buckets with
  /// no data yield nullopt. `buckets` is the output length.
  std::vector<std::optional<double>> BucketedMedians(core::SimTime origin,
                                                     core::SimTime bucket,
                                                     std::size_t buckets) const;

  /// Plain values (time dropped).
  std::vector<double> Values() const;

 private:
  std::vector<TimePoint> points_;
};

/// Fills missing buckets by linear interpolation between neighbours
/// (edges propagate the nearest value). Fails only if *all* entries are
/// missing — callers check with AllMissing first.
std::vector<double> InterpolateMissing(
    std::span<const std::optional<double>> buckets);

bool AllMissing(std::span<const std::optional<double>> buckets);

/// Fraction of buckets that are missing.
double MissingFraction(std::span<const std::optional<double>> buckets);

/// First difference: out[i] = xs[i+1] - xs[i] (length n-1).
std::vector<double> Difference(std::span<const double> xs);

}  // namespace sisyphus::stats
