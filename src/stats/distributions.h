// Distribution functions (pdf/cdf/quantile) needed by the inference layer.
//
// Sampling lives on core::Rng; this header is the deterministic math side:
// normal and Student-t tails for regression standard errors and test
// p-values.
#pragma once

namespace sisyphus::stats {

/// Standard normal density.
double NormalPdf(double x);

/// Standard normal CDF via erfc (double precision accurate).
double NormalCdf(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, |error|
/// < 1.15e-9 — ample for confidence intervals). Precondition: p in (0,1).
double NormalQuantile(double p);

/// Student-t CDF with `dof` degrees of freedom (via the regularized
/// incomplete beta function). dof > 0.
double StudentTCdf(double t, double dof);

/// Two-sided p-value for a t statistic.
double TwoSidedTPValue(double t, double dof);

/// Two-sided p-value for a z statistic.
double TwoSidedZPValue(double z);

/// Regularized incomplete beta I_x(a, b) by continued fraction
/// (Lentz's method). Preconditions: a, b > 0, x in [0, 1].
double RegularizedIncompleteBeta(double a, double b, double x);

/// log Gamma via Lanczos approximation.
double LogGamma(double x);

/// Chi-squared upper-tail probability P(X > x) with k degrees of freedom.
double ChiSquaredSurvival(double x, double k);

/// Regularized lower incomplete gamma P(a, x).
double RegularizedLowerGamma(double a, double x);

}  // namespace sisyphus::stats
