#include "stats/distributions.h"

#include <cmath>
#include <limits>

#include "core/error.h"

namespace sisyphus::stats {

double NormalPdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  SISYPHUS_REQUIRE(p > 0.0 && p < 1.0, "NormalQuantile: p outside (0,1)");
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1.0 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double LogGamma(double x) {
  // Lanczos, g = 7, n = 9.
  static const double coeff[] = {
      0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,  12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double sum = coeff[0];
  for (int i = 1; i < 9; ++i) sum += coeff[i] / (x + static_cast<double>(i));
  const double t = x + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
         std::log(sum);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  SISYPHUS_REQUIRE(a > 0.0 && b > 0.0, "IncompleteBeta: a,b must be > 0");
  SISYPHUS_REQUIRE(x >= 0.0 && x <= 1.0, "IncompleteBeta: x outside [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  // Use the symmetry that converges fastest.
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x);
  }
  const double ln_front = a * std::log(x) + b * std::log(1.0 - x) -
                          std::log(a) - LogGamma(a) - LogGamma(b) +
                          LogGamma(a + b);
  const double front = std::exp(ln_front);
  // Lentz continued fraction.
  const double kTiny = 1e-300;
  double f = 1.0, c = 1.0, d = 0.0;
  for (int i = 0; i <= 300; ++i) {
    const int m = i / 2;
    double numerator;
    if (i == 0) {
      numerator = 1.0;
    } else if (i % 2 == 0) {
      numerator = (m * (b - m) * x) / ((a + 2.0 * m - 1.0) * (a + 2.0 * m));
    } else {
      numerator =
          -((a + m) * (a + b + m) * x) / ((a + 2.0 * m) * (a + 2.0 * m + 1.0));
    }
    d = 1.0 + numerator * d;
    if (std::abs(d) < kTiny) d = kTiny;
    d = 1.0 / d;
    c = 1.0 + numerator / c;
    if (std::abs(c) < kTiny) c = kTiny;
    const double delta = c * d;
    f *= delta;
    if (std::abs(1.0 - delta) < 1e-12) break;
  }
  return front * (f - 1.0);
}

double StudentTCdf(double t, double dof) {
  SISYPHUS_REQUIRE(dof > 0.0, "StudentTCdf: dof must be > 0");
  const double x = dof / (dof + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double TwoSidedTPValue(double t, double dof) {
  const double upper = 1.0 - StudentTCdf(std::abs(t), dof);
  return std::min(1.0, 2.0 * upper);
}

double TwoSidedZPValue(double z) {
  return std::min(1.0, 2.0 * (1.0 - NormalCdf(std::abs(z))));
}

double RegularizedLowerGamma(double a, double x) {
  SISYPHUS_REQUIRE(a > 0.0 && x >= 0.0, "RegularizedLowerGamma: bad args");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series expansion.
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      term *= x / ap;
      sum += term;
      if (std::abs(term) < std::abs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
  }
  // Continued fraction for the upper tail.
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  const double upper = h * std::exp(-x + a * std::log(x) - LogGamma(a));
  return 1.0 - upper;
}

double ChiSquaredSurvival(double x, double k) {
  SISYPHUS_REQUIRE(k > 0.0, "ChiSquaredSurvival: dof must be > 0");
  if (x <= 0.0) return 1.0;
  return 1.0 - RegularizedLowerGamma(k / 2.0, x / 2.0);
}

}  // namespace sisyphus::stats
