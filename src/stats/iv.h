// Two-stage least squares (2SLS) instrumental-variable estimation.
//
// The paper's §3 "natural experiments" discussion: when treatment is
// endogenous (confounded with the outcome error), an instrument Z that
// (1) moves the treatment and (2) affects the outcome only through the
// treatment identifies the causal coefficient. 2SLS implements this by
// regressing treatment on instruments + exogenous controls (first stage),
// then the outcome on the *predicted* treatment + controls (second stage).
#pragma once

#include <span>

#include "core/result.h"
#include "stats/matrix.h"
#include "stats/regression.h"

namespace sisyphus::stats {

struct TwoStageLeastSquaresFit {
  /// Second-stage coefficients: [intercept, treatment, controls...].
  Vector coefficients;
  /// 2SLS-correct standard errors (residuals from *actual* treatment,
  /// bread from projected design).
  Vector standard_errors;
  /// First-stage fit, for instrument-strength diagnostics.
  OlsFit first_stage;
  /// First-stage partial F statistic for the instruments (rule of thumb:
  /// F < 10 => weak instrument, estimates unreliable).
  double first_stage_f = 0.0;
  std::size_t n = 0;

  double TreatmentEffect() const { return coefficients[1]; }
  double TreatmentStdError() const { return standard_errors[1]; }
  /// Two-sided p-value (normal approximation) for the treatment effect.
  double TreatmentPValue() const;
  bool WeakInstrument() const { return first_stage_f < 10.0; }
};

/// Estimates the effect of `treatment` on `outcome`, instrumenting with the
/// columns of `instruments` and controlling for the (exogenous) columns of
/// `controls` (may be empty: 0 columns).
///
/// Fails (kInvalidArgument) on shape errors, (kNumericalFailure) on rank
/// deficiency in either stage.
core::Result<TwoStageLeastSquaresFit> TwoStageLeastSquares(
    std::span<const double> outcome, std::span<const double> treatment,
    const Matrix& instruments, const Matrix& controls);

}  // namespace sisyphus::stats
