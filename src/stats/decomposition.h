// Matrix decompositions: Householder QR, one-sided Jacobi SVD, and the
// solvers built on them (least squares, pseudo-inverse, low-rank
// approximation for robust synthetic control).
#pragma once

#include <cstddef>

#include "core/result.h"
#include "stats/matrix.h"

namespace sisyphus::stats {

/// Householder QR factorization A = Q R with A (m x n), m >= n.
/// Q is m x n with orthonormal columns (thin QR); R is n x n upper
/// triangular.
struct QrDecomposition {
  Matrix q;
  Matrix r;
};

/// Computes the thin QR of `a`. Fails (kInvalidArgument) if rows < cols.
core::Result<QrDecomposition> QrDecompose(const Matrix& a);

/// Solves min_x ||A x - b||_2 via QR. Fails (kNumericalFailure) if A is
/// rank-deficient to working precision (|R_ii| below tolerance); callers
/// who want minimum-norm solutions over rank-deficient systems should use
/// SvdSolveLeastSquares.
core::Result<Vector> SolveLeastSquares(const Matrix& a,
                                       std::span<const double> b);

/// Singular value decomposition A = U S V^T, A (m x n) with m >= n
/// (transpose first otherwise). U is m x n, V is n x n, singular values are
/// returned in non-increasing order.
struct SvdDecomposition {
  Matrix u;
  Vector singular_values;
  Matrix v;

  /// Reconstructs U * diag(s) * V^T (for tests/diagnostics).
  Matrix Reconstruct() const;

  /// Rank-k truncation U_k S_k V_k^T. Precondition: k <= s.size().
  Matrix TruncatedReconstruct(std::size_t k) const;

  /// Number of singular values strictly above `threshold`.
  std::size_t RankAbove(double threshold) const;
};

/// One-sided Jacobi SVD. Chosen over Golub–Kahan for simplicity and high
/// relative accuracy at this library's panel sizes (see DESIGN.md §4;
/// scaling measured in bench/perf_linalg). Works for any m, n (internally
/// transposes if m < n). Fails (kNumericalFailure) if Jacobi sweeps do not
/// converge.
core::Result<SvdDecomposition> SvdDecompose(const Matrix& a);

/// Minimum-norm least squares via SVD with relative cutoff `rcond` on
/// singular values (like LAPACK gelsd).
core::Result<Vector> SvdSolveLeastSquares(const Matrix& a,
                                          std::span<const double> b,
                                          double rcond = 1e-12);

/// Moore–Penrose pseudo-inverse via SVD.
core::Result<Matrix> PseudoInverse(const Matrix& a, double rcond = 1e-12);

/// Hard-thresholded low-rank approximation: keep singular values
/// > `threshold`, zero the rest. This is the denoising step of robust
/// synthetic control (Amjad, Shah & Shen 2018).
core::Result<Matrix> HardThreshold(const Matrix& a, double threshold);

/// Universal singular-value threshold of Gavish–Donoho flavor used by RSC
/// when the caller does not supply one: sigma * (sqrt(m) + sqrt(n)), with
/// sigma estimated from the median singular value.
double DefaultSingularValueThreshold(const SvdDecomposition& svd,
                                     std::size_t rows, std::size_t cols);

}  // namespace sisyphus::stats
