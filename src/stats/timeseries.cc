#include "stats/timeseries.h"

#include <algorithm>

#include "core/error.h"
#include "stats/descriptive.h"

namespace sisyphus::stats {

void TimeSeries::Append(core::SimTime time, double value) {
  SISYPHUS_REQUIRE(points_.empty() || points_.back().time <= time,
                   "TimeSeries::Append: out-of-order time");
  points_.push_back({time, value});
}

std::vector<double> TimeSeries::ValuesInWindow(core::SimTime start,
                                               core::SimTime end) const {
  // Binary search on the sorted time axis.
  const auto lo = std::lower_bound(
      points_.begin(), points_.end(), start,
      [](const TimePoint& p, core::SimTime t) { return p.time < t; });
  const auto hi = std::lower_bound(
      lo, points_.end(), end,
      [](const TimePoint& p, core::SimTime t) { return p.time < t; });
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (auto it = lo; it != hi; ++it) out.push_back(it->value);
  return out;
}

std::optional<double> TimeSeries::MedianInWindow(core::SimTime start,
                                                 core::SimTime end) const {
  const auto values = ValuesInWindow(start, end);
  if (values.empty()) return std::nullopt;
  return Median(values);
}

std::vector<std::optional<double>> TimeSeries::BucketedMedians(
    core::SimTime origin, core::SimTime bucket, std::size_t buckets) const {
  SISYPHUS_REQUIRE(bucket.minutes() > 0, "BucketedMedians: zero bucket");
  std::vector<std::optional<double>> out;
  out.reserve(buckets);
  for (std::size_t i = 0; i < buckets; ++i) {
    const core::SimTime start(origin.minutes() +
                              static_cast<std::int64_t>(i) * bucket.minutes());
    const core::SimTime end(start.minutes() + bucket.minutes());
    out.push_back(MedianInWindow(start, end));
  }
  return out;
}

std::vector<double> TimeSeries::Values() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.value);
  return out;
}

bool AllMissing(std::span<const std::optional<double>> buckets) {
  return std::none_of(buckets.begin(), buckets.end(),
                      [](const auto& b) { return b.has_value(); });
}

double MissingFraction(std::span<const std::optional<double>> buckets) {
  if (buckets.empty()) return 0.0;
  std::size_t missing = 0;
  for (const auto& b : buckets)
    if (!b.has_value()) ++missing;
  return static_cast<double>(missing) / static_cast<double>(buckets.size());
}

std::vector<double> InterpolateMissing(
    std::span<const std::optional<double>> buckets) {
  SISYPHUS_REQUIRE(!AllMissing(buckets), "InterpolateMissing: all missing");
  const std::size_t n = buckets.size();
  std::vector<double> out(n, 0.0);
  // Indices of present values.
  std::vector<std::size_t> present;
  for (std::size_t i = 0; i < n; ++i)
    if (buckets[i].has_value()) present.push_back(i);
  for (std::size_t i = 0; i < n; ++i) {
    if (buckets[i].has_value()) {
      out[i] = *buckets[i];
      continue;
    }
    // Nearest present neighbours.
    const auto after =
        std::lower_bound(present.begin(), present.end(), i);
    if (after == present.begin()) {
      out[i] = *buckets[present.front()];
    } else if (after == present.end()) {
      out[i] = *buckets[present.back()];
    } else {
      const std::size_t hi = *after;
      const std::size_t lo = *(after - 1);
      const double frac = static_cast<double>(i - lo) /
                          static_cast<double>(hi - lo);
      out[i] = *buckets[lo] * (1.0 - frac) + *buckets[hi] * frac;
    }
  }
  return out;
}

std::vector<double> Difference(std::span<const double> xs) {
  if (xs.size() < 2) return {};
  std::vector<double> out(xs.size() - 1);
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) out[i] = xs[i + 1] - xs[i];
  return out;
}

}  // namespace sisyphus::stats
