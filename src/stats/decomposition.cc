#include "stats/decomposition.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.h"

namespace sisyphus::stats {

using core::Error;
using core::ErrorCode;
using core::Result;

Result<QrDecomposition> QrDecompose(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (m < n) {
    return Error(ErrorCode::kInvalidArgument,
                 "QrDecompose: need rows >= cols for thin QR");
  }
  // Householder on a working copy; accumulate reflectors to form thin Q.
  Matrix r = a;
  std::vector<Vector> reflectors;  // v for each column, length m-k
  reflectors.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    Vector v(m - k, 0.0);
    if (norm == 0.0) {
      reflectors.push_back(std::move(v));  // zero column: identity reflector
      continue;
    }
    const double alpha = r(k, k) >= 0.0 ? -norm : norm;
    for (std::size_t i = k; i < m; ++i) v[i - k] = r(i, k);
    v[0] -= alpha;
    const double vnorm = Norm2(v);
    if (vnorm == 0.0) {
      reflectors.push_back(Vector(m - k, 0.0));
      continue;
    }
    for (double& x : v) x /= vnorm;
    // Apply H = I - 2 v v^T to the trailing block of R. Two row-streaming
    // passes (w = v^T R, then the rank-1 update) instead of per-column
    // strided dots: each w[j] still accumulates over i ascending and the
    // update rounds the same real product, so results are bit-identical to
    // the column-at-a-time form — just contiguous along rows.
    Vector w(n - k, 0.0);
    for (std::size_t i = k; i < m; ++i) {
      const double vi = v[i - k];
      const auto row = r.Row(i);
      for (std::size_t j = k; j < n; ++j) w[j - k] += vi * row[j];
    }
    for (std::size_t i = k; i < m; ++i) {
      const double vi2 = 2.0 * v[i - k];
      const auto row = r.Row(i);
      for (std::size_t j = k; j < n; ++j) row[j] -= vi2 * w[j - k];
    }
    reflectors.push_back(std::move(v));
  }
  // Thin Q: apply reflectors in reverse to the first n columns of I.
  Matrix q(m, n);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  for (std::size_t k = n; k-- > 0;) {
    const Vector& v = reflectors[k];
    if (v.empty()) continue;
    bool zero = true;
    for (double x : v)
      if (x != 0.0) {
        zero = false;
        break;
      }
    if (zero) continue;
    // Same row-streaming two-pass application as the R update above.
    Vector w(n, 0.0);
    for (std::size_t i = k; i < m; ++i) {
      const double vi = v[i - k];
      const auto row = q.Row(i);
      for (std::size_t j = 0; j < n; ++j) w[j] += vi * row[j];
    }
    for (std::size_t i = k; i < m; ++i) {
      const double vi2 = 2.0 * v[i - k];
      const auto row = q.Row(i);
      for (std::size_t j = 0; j < n; ++j) row[j] -= vi2 * w[j];
    }
  }
  QrDecomposition out;
  out.q = std::move(q);
  out.r = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j) out.r(i, j) = r(i, j);
  return out;
}

Result<Vector> SolveLeastSquares(const Matrix& a, std::span<const double> b) {
  SISYPHUS_REQUIRE(b.size() == a.rows(), "SolveLeastSquares: size mismatch");
  auto qr = QrDecompose(a);
  if (!qr.ok()) return qr.error();
  const std::size_t n = a.cols();
  // Tolerance scaled by the largest diagonal magnitude.
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_diag = std::max(max_diag, std::abs(qr.value().r(i, i)));
  const double tol = std::max(1e-300, max_diag * 1e-12);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(qr.value().r(i, i)) < tol) {
      return Error(ErrorCode::kNumericalFailure,
                   "SolveLeastSquares: rank-deficient design matrix");
    }
  }
  // x = R^{-1} Q^T b by back substitution.
  Vector qtb = qr.value().q.ApplyTransposed(b);
  Vector x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = qtb[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= qr.value().r(i, j) * x[j];
    x[i] = sum / qr.value().r(i, i);
  }
  return x;
}

Matrix SvdDecomposition::Reconstruct() const {
  return TruncatedReconstruct(singular_values.size());
}

Matrix SvdDecomposition::TruncatedReconstruct(std::size_t k) const {
  SISYPHUS_REQUIRE(k <= singular_values.size(),
                   "TruncatedReconstruct: k exceeds rank");
  // (U diag(s)) V^T through the blocked A*B^T kernel; per-entry accumulation
  // stays (u*s)*v with i ascending, matching the former triple loop bit for
  // bit while streaming both factors along contiguous rows.
  Matrix us(u.rows(), k);
  for (std::size_t r = 0; r < u.rows(); ++r)
    for (std::size_t i = 0; i < k; ++i) us(r, i) = u(r, i) * singular_values[i];
  return MultiplyAbT(us, v.Block(0, v.rows(), 0, k));
}

std::size_t SvdDecomposition::RankAbove(double threshold) const {
  std::size_t rank = 0;
  for (double s : singular_values)
    if (s > threshold) ++rank;
  return rank;
}

namespace {

// One-sided Jacobi on A (m x n), m >= n: rotates column pairs of a working
// copy W until all pairs are numerically orthogonal. Then s_j = ||W_j||,
// U_j = W_j / s_j, and V accumulates the rotations.
Result<SvdDecomposition> JacobiSvdTall(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  Matrix w = a;
  Matrix v = Matrix::Identity(n);
  const int kMaxSweeps = 60;
  const double kTol = 1e-14;
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double* row = w.Row(i).data();
          const double wp = row[p];
          const double wq = row[q];
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        if (std::abs(gamma) <= kTol * std::sqrt(alpha * beta) ||
            gamma == 0.0) {
          continue;
        }
        rotated = true;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          double* row = w.Row(i).data();
          const double wp = row[p];
          const double wq = row[q];
          row[p] = c * wp - s * wq;
          row[q] = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          double* row = v.Row(i).data();
          const double vp = row[p];
          const double vq = row[q];
          row[p] = c * vp - s * vq;
          row[q] = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
    if (sweep == kMaxSweeps - 1) {
      return Error(ErrorCode::kNumericalFailure,
                   "SvdDecompose: Jacobi sweeps did not converge");
    }
  }
  SvdDecomposition out;
  out.singular_values.assign(n, 0.0);
  out.u = Matrix(m, n);
  out.v = Matrix(n, n);
  // Column norms = singular values; sort descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Vector norms(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) sum += w(i, j) * w(i, j);
    norms[j] = std::sqrt(sum);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return norms[x] > norms[y]; });
  for (std::size_t dst = 0; dst < n; ++dst) {
    const std::size_t src = order[dst];
    const double s = norms[src];
    out.singular_values[dst] = s;
    for (std::size_t i = 0; i < m; ++i)
      out.u(i, dst) = s > 0.0 ? w(i, src) / s : 0.0;
    for (std::size_t i = 0; i < n; ++i) out.v(i, dst) = v(i, src);
  }
  return out;
}

}  // namespace

Result<SvdDecomposition> SvdDecompose(const Matrix& a) {
  if (a.empty()) {
    return Error(ErrorCode::kInvalidArgument, "SvdDecompose: empty matrix");
  }
  if (a.rows() >= a.cols()) return JacobiSvdTall(a);
  // Wide matrix: decompose the transpose and swap U <-> V.
  auto svd = JacobiSvdTall(a.Transposed());
  if (!svd.ok()) return svd.error();
  SvdDecomposition out;
  out.u = std::move(svd.value().v);
  out.v = std::move(svd.value().u);
  out.singular_values = std::move(svd.value().singular_values);
  return out;
}

Result<Vector> SvdSolveLeastSquares(const Matrix& a, std::span<const double> b,
                                    double rcond) {
  SISYPHUS_REQUIRE(b.size() == a.rows(), "SvdSolveLeastSquares: size");
  auto svd = SvdDecompose(a);
  if (!svd.ok()) return svd.error();
  const auto& d = svd.value();
  const double smax =
      d.singular_values.empty() ? 0.0 : d.singular_values.front();
  const double cutoff = smax * rcond;
  // x = V diag(1/s) U^T b over retained components.
  Vector utb = d.u.ApplyTransposed(b);
  Vector x(a.cols(), 0.0);
  for (std::size_t k = 0; k < d.singular_values.size(); ++k) {
    const double s = d.singular_values[k];
    if (s <= cutoff || s == 0.0) continue;
    const double coeff = utb[k] / s;
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += coeff * d.v(i, k);
  }
  return x;
}

Result<Matrix> PseudoInverse(const Matrix& a, double rcond) {
  auto svd = SvdDecompose(a);
  if (!svd.ok()) return svd.error();
  const auto& d = svd.value();
  const double smax =
      d.singular_values.empty() ? 0.0 : d.singular_values.front();
  const double cutoff = smax * rcond;
  // Gather the retained components, then (V diag(1/s)) U^T via the blocked
  // A*B^T kernel. Retained-k order and the (v*(1/s))*u rounding sequence
  // match the former accumulation loop exactly.
  std::vector<std::size_t> kept;
  for (std::size_t k = 0; k < d.singular_values.size(); ++k) {
    const double s = d.singular_values[k];
    if (s <= cutoff || s == 0.0) continue;
    kept.push_back(k);
  }
  Matrix vs(a.cols(), kept.size());
  Matrix uk(a.rows(), kept.size());
  for (std::size_t idx = 0; idx < kept.size(); ++idx) {
    const std::size_t k = kept[idx];
    const double inv_s = 1.0 / d.singular_values[k];
    for (std::size_t i = 0; i < a.cols(); ++i) vs(i, idx) = d.v(i, k) * inv_s;
    for (std::size_t j = 0; j < a.rows(); ++j) uk(j, idx) = d.u(j, k);
  }
  return MultiplyAbT(vs, uk);
}

Result<Matrix> HardThreshold(const Matrix& a, double threshold) {
  auto svd = SvdDecompose(a);
  if (!svd.ok()) return svd.error();
  const std::size_t k = svd.value().RankAbove(threshold);
  return svd.value().TruncatedReconstruct(k);
}

double DefaultSingularValueThreshold(const SvdDecomposition& svd,
                                     std::size_t rows, std::size_t cols) {
  // Estimate the noise level from the median singular value (the signal
  // occupies only the top few), then apply the (sqrt(m)+sqrt(n)) * sigma
  // universal threshold shape of Gavish–Donoho.
  const auto& s = svd.singular_values;
  if (s.empty()) return 0.0;
  Vector sorted = s;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  const double scale =
      std::sqrt(static_cast<double>(rows)) + std::sqrt(static_cast<double>(cols));
  // Median singular value of pure noise ~ 0.6 * sigma * (sqrt(m)+sqrt(n))/2.
  const double sigma_hat = median / (0.6 * scale / 2.0 + 1e-30);
  return sigma_hat * scale * 0.5;
}

}  // namespace sisyphus::stats
