// Dense row-major matrix of doubles and free-function vector algebra.
//
// Sized for this library's workloads: synthetic-control donor panels
// (hundreds x dozens), regression design matrices, DAG adjacency work.
// No expression templates — clarity over micro-optimization; the perf
// benches (bench/perf_linalg) document actual throughput.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace sisyphus::stats {

using Vector = std::vector<double>;

/// Dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, all entries `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// From nested initializer list: Matrix{{1,2},{3,4}}.
  /// Precondition: all rows have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(std::size_t n);

  /// Column vector (n x 1) from data.
  static Matrix ColumnVector(std::span<const double> data);

  /// Builds a matrix from columns, each of equal length.
  static Matrix FromColumns(const std::vector<Vector>& columns);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  std::span<double> Row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> Row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Copy of column c.
  Vector Column(std::size_t c) const;
  void SetColumn(std::size_t c, std::span<const double> values);
  void SetRow(std::size_t r, std::span<const double> values);

  Matrix Transposed() const;

  /// Submatrix of rows [r0, r1) and cols [c0, c1).
  Matrix Block(std::size_t r0, std::size_t r1, std::size_t c0,
               std::size_t c1) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Largest |entry| difference against other (same shape required).
  double MaxAbsDiff(const Matrix& other) const;

  friend Matrix operator+(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);
  friend Matrix operator*(const Matrix& a, const Matrix& b);
  friend Matrix operator*(double scalar, const Matrix& m);

  /// Matrix * vector. Precondition: x.size() == cols().
  Vector Apply(std::span<const double> x) const;

  /// Transpose(this) * vector. Precondition: x.size() == rows().
  Vector ApplyTransposed(std::span<const double> x) const;

  /// Multi-line text form for debugging/tests.
  std::string ToText(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- Multiply variants ----------------------------------------------------

/// Reference naive ikj multiply (the pre-blocking kernel). Kept for
/// equality tests and the kernel-vs-reference comparison in
/// bench/perf_linalg; operator* is the production kernel (register-tiled
/// AVX2 where the CPU has it, cache-blocked scalar otherwise — both
/// accumulate each element over k in ascending order without FMA
/// contraction, so all three kernels agree to the last bit).
Matrix MultiplyReference(const Matrix& a, const Matrix& b);

/// A^T * B without materializing the transpose. Accumulation order matches
/// a.Transposed() * b exactly (Gram matrices: MultiplyAtB(x, x)).
Matrix MultiplyAtB(const Matrix& a, const Matrix& b);

/// A * B^T without materializing the transpose. Accumulation order matches
/// a * b.Transposed() exactly.
Matrix MultiplyAbT(const Matrix& a, const Matrix& b);

// ---- Free-function vector algebra -----------------------------------------

double Dot(std::span<const double> a, std::span<const double> b);
double Norm2(std::span<const double> a);
/// a + s*b, elementwise. Precondition: equal sizes.
Vector Axpy(std::span<const double> a, double s, std::span<const double> b);
Vector Scale(double s, std::span<const double> a);
Vector Subtract(std::span<const double> a, std::span<const double> b);
Vector Add(std::span<const double> a, std::span<const double> b);

/// Euclidean projection of v onto the probability simplex
/// {w : w_i >= 0, sum w_i = 1} (Duchi et al. 2008). Used by the classical
/// synthetic-control weight solver.
Vector ProjectToSimplex(std::span<const double> v);

}  // namespace sisyphus::stats
