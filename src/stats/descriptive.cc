#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace sisyphus::stats {

double Mean(std::span<const double> xs) {
  SISYPHUS_REQUIRE(!xs.empty(), "Mean: empty input");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double CompensatedSum(std::span<const double> xs) {
  // Neumaier's variant of Kahan summation: the compensation term also
  // survives the case |x| > |sum|, so partial sums of wildly mixed
  // magnitudes stay exact to the last bit in practice.
  double sum = 0.0;
  double compensation = 0.0;
  for (double x : xs) {
    const double t = sum + x;
    if (std::abs(sum) >= std::abs(x)) {
      compensation += (sum - t) + x;
    } else {
      compensation += (x - t) + sum;
    }
    sum = t;
  }
  return sum + compensation;
}

double CompensatedMean(std::span<const double> xs) {
  SISYPHUS_REQUIRE(!xs.empty(), "CompensatedMean: empty input");
  return CompensatedSum(xs) / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) {
  SISYPHUS_REQUIRE(xs.size() >= 2, "Variance: need >= 2 samples");
  const double mu = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - mu) * (x - mu);
  return sum / static_cast<double>(xs.size() - 1);
}

double StdDev(std::span<const double> xs) { return std::sqrt(Variance(xs)); }

double Quantile(std::span<const double> xs, double q) {
  SISYPHUS_REQUIRE(!xs.empty(), "Quantile: empty input");
  SISYPHUS_REQUIRE(q >= 0.0 && q <= 1.0, "Quantile: q outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Median(std::span<const double> xs) { return Quantile(xs, 0.5); }

double MedianAbsoluteDeviation(std::span<const double> xs) {
  const double med = Median(xs);
  std::vector<double> deviations(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    deviations[i] = std::abs(xs[i] - med);
  return 1.4826 * Median(deviations);
}

double Covariance(std::span<const double> xs, std::span<const double> ys) {
  SISYPHUS_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
                   "Covariance: need equal sizes >= 2");
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    sum += (xs[i] - mx) * (ys[i] - my);
  return sum / static_cast<double>(xs.size() - 1);
}

double PearsonCorrelation(std::span<const double> xs,
                          std::span<const double> ys) {
  const double sx = StdDev(xs);
  const double sy = StdDev(ys);
  SISYPHUS_REQUIRE(sx > 0.0 && sy > 0.0,
                   "PearsonCorrelation: degenerate series");
  return Covariance(xs, ys) / (sx * sy);
}

double Rmse(std::span<const double> a, std::span<const double> b) {
  SISYPHUS_REQUIRE(a.size() == b.size() && !a.empty(), "Rmse: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    sum += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(sum / static_cast<double>(a.size()));
}

double MeanAbsoluteError(std::span<const double> a,
                         std::span<const double> b) {
  SISYPHUS_REQUIRE(a.size() == b.size() && !a.empty(), "MAE: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return sum / static_cast<double>(a.size());
}

double Min(std::span<const double> xs) {
  SISYPHUS_REQUIRE(!xs.empty(), "Min: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double Max(std::span<const double> xs) {
  SISYPHUS_REQUIRE(!xs.empty(), "Max: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<double> MovingAverage(std::span<const double> xs, std::size_t w) {
  SISYPHUS_REQUIRE(w >= 1, "MovingAverage: zero window");
  std::vector<double> out(xs.size(), 0.0);
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(w) / 2;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(xs.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
    const std::ptrdiff_t hi = std::min(n - 1, i + half);
    double sum = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) sum += xs[j];
    out[i] = sum / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> Standardize(std::span<const double> xs) {
  const double mu = Mean(xs);
  const double sd = StdDev(xs);
  SISYPHUS_REQUIRE(sd > 0.0, "Standardize: zero variance");
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (xs[i] - mu) / sd;
  return out;
}

}  // namespace sisyphus::stats
