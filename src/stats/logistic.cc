#include "stats/logistic.h"

#include <cmath>

#include "core/error.h"
#include "stats/decomposition.h"

namespace sisyphus::stats {

using core::Error;
using core::ErrorCode;
using core::Result;

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

double LogisticFit::PredictProbability(std::span<const double> row) const {
  SISYPHUS_REQUIRE(row.size() + 1 == coefficients.size(),
                   "PredictProbability: size mismatch");
  double z = coefficients[0];
  for (std::size_t i = 0; i < row.size(); ++i)
    z += coefficients[i + 1] * row[i];
  return Sigmoid(z);
}

Result<LogisticFit> LogisticRegression(const Matrix& design,
                                       std::span<const double> y,
                                       const LogisticOptions& options) {
  const std::size_t n = design.rows();
  const std::size_t p = design.cols() + 1;  // + intercept
  if (n != y.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "LogisticRegression: y length != rows");
  }
  if (n <= p) {
    return Error(ErrorCode::kInvalidArgument,
                 "LogisticRegression: need more observations than parameters");
  }
  for (double label : y) {
    if (label != 0.0 && label != 1.0) {
      return Error(ErrorCode::kInvalidArgument,
                   "LogisticRegression: labels must be 0 or 1");
    }
  }
  Matrix x(n, p);
  for (std::size_t r = 0; r < n; ++r) {
    x(r, 0) = 1.0;
    for (std::size_t c = 0; c + 1 < p; ++c) x(r, c + 1) = design(r, c);
  }

  LogisticFit fit;
  fit.coefficients.assign(p, 0.0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Newton step: solve (X'WX + lambda I) d = X'(y - mu) - lambda b.
    Vector eta = x.Apply(fit.coefficients);
    Vector mu(n), w(n);
    for (std::size_t i = 0; i < n; ++i) {
      mu[i] = Sigmoid(eta[i]);
      w[i] = std::max(1e-10, mu[i] * (1.0 - mu[i]));
    }
    Matrix hessian(p, p);
    for (std::size_t i = 0; i < n; ++i) {
      auto row = x.Row(i);
      for (std::size_t a = 0; a < p; ++a)
        for (std::size_t b = 0; b < p; ++b)
          hessian(a, b) += w[i] * row[a] * row[b];
    }
    for (std::size_t a = 0; a < p; ++a) hessian(a, a) += options.l2_penalty;
    Vector gradient(p, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double diff = y[i] - mu[i];
      auto row = x.Row(i);
      for (std::size_t a = 0; a < p; ++a) gradient[a] += diff * row[a];
    }
    for (std::size_t a = 0; a < p; ++a)
      gradient[a] -= options.l2_penalty * fit.coefficients[a];

    auto inv = PseudoInverse(hessian);
    if (!inv.ok()) return inv.error();
    Vector step = inv.value().Apply(gradient);
    double step_norm = Norm2(step);
    if (!std::isfinite(step_norm)) {
      return Error(ErrorCode::kNumericalFailure,
                   "LogisticRegression: IRLS diverged");
    }
    // Damp very large steps (separation safety).
    if (step_norm > 10.0) {
      for (double& s : step) s *= 10.0 / step_norm;
      step_norm = 10.0;
    }
    for (std::size_t a = 0; a < p; ++a) fit.coefficients[a] += step[a];
    fit.iterations = iter + 1;
    if (step_norm < options.tolerance) {
      fit.converged = true;
      break;
    }
  }
  // Final log-likelihood.
  Vector eta = x.Apply(fit.coefficients);
  fit.log_likelihood = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pr = Sigmoid(eta[i]);
    const double clamped = std::min(1.0 - 1e-12, std::max(1e-12, pr));
    fit.log_likelihood +=
        y[i] * std::log(clamped) + (1.0 - y[i]) * std::log(1.0 - clamped);
  }
  return fit;
}

}  // namespace sisyphus::stats
