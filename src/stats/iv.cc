#include "stats/iv.h"

#include <cmath>

#include "core/error.h"
#include "stats/decomposition.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace sisyphus::stats {

using core::Error;
using core::ErrorCode;
using core::Result;

double TwoStageLeastSquaresFit::TreatmentPValue() const {
  return TwoSidedZPValue(TreatmentEffect() / TreatmentStdError());
}

Result<TwoStageLeastSquaresFit> TwoStageLeastSquares(
    std::span<const double> outcome, std::span<const double> treatment,
    const Matrix& instruments, const Matrix& controls) {
  const std::size_t n = outcome.size();
  if (treatment.size() != n || instruments.rows() != n ||
      (controls.cols() > 0 && controls.rows() != n)) {
    return Error(ErrorCode::kInvalidArgument,
                 "TwoStageLeastSquares: row-count mismatch");
  }
  if (instruments.cols() == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "TwoStageLeastSquares: need at least one instrument");
  }

  // ---- First stage: treatment ~ instruments + controls ----
  const std::size_t k_iv = instruments.cols();
  const std::size_t k_ctl = controls.cols();
  Matrix first_design(n, k_iv + k_ctl);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < k_iv; ++c)
      first_design(r, c) = instruments(r, c);
    for (std::size_t c = 0; c < k_ctl; ++c)
      first_design(r, k_iv + c) = controls(r, c);
  }
  auto first = Ols(first_design, treatment);
  if (!first.ok()) return first.error();

  // Partial F for instruments: compare against the restricted model with
  // controls only.
  double ssr_full = 0.0;
  for (double e : first.value().residuals) ssr_full += e * e;
  double ssr_restricted = 0.0;
  if (k_ctl > 0) {
    Matrix restricted(n, k_ctl);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < k_ctl; ++c) restricted(r, c) = controls(r, c);
    auto fit = Ols(restricted, treatment);
    if (!fit.ok()) return fit.error();
    for (double e : fit.value().residuals) ssr_restricted += e * e;
  } else {
    const double mean = Mean(treatment);
    for (double t : treatment) ssr_restricted += (t - mean) * (t - mean);
  }
  const double dof_full = static_cast<double>(n - (1 + k_iv + k_ctl));
  double f_stat = 0.0;
  if (ssr_full > 0.0 && dof_full > 0.0) {
    f_stat = ((ssr_restricted - ssr_full) / static_cast<double>(k_iv)) /
             (ssr_full / dof_full);
  }

  // ---- Second stage: outcome ~ [1, predicted treatment, controls] ----
  // Copy: `first` is moved into the result below, and `predicted` is still
  // needed for the standard-error bread afterwards.
  const Vector predicted = first.value().fitted;
  Matrix second_design(n, 1 + k_ctl);
  for (std::size_t r = 0; r < n; ++r) {
    second_design(r, 0) = predicted[r];
    for (std::size_t c = 0; c < k_ctl; ++c)
      second_design(r, 1 + c) = controls(r, c);
  }
  auto second = Ols(second_design, outcome);
  if (!second.ok()) return second.error();

  TwoStageLeastSquaresFit out;
  out.coefficients = second.value().coefficients;
  out.first_stage = std::move(first).value();
  out.first_stage_f = f_stat;
  out.n = n;

  // Correct 2SLS standard errors: residuals recomputed with the *actual*
  // treatment (the OLS-of-second-stage residuals understate sigma^2).
  const std::size_t p = out.coefficients.size();
  Vector residuals(n);
  double ssr = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double fitted = out.coefficients[0] + out.coefficients[1] * treatment[r];
    for (std::size_t c = 0; c < k_ctl; ++c)
      fitted += out.coefficients[2 + c] * controls(r, c);
    residuals[r] = outcome[r] - fitted;
    ssr += residuals[r] * residuals[r];
  }
  const double sigma2 = ssr / static_cast<double>(n - p);
  // Bread from the projected design (with intercept).
  Matrix z(n, p);
  for (std::size_t r = 0; r < n; ++r) {
    z(r, 0) = 1.0;
    z(r, 1) = predicted[r];
    for (std::size_t c = 0; c < k_ctl; ++c) z(r, 2 + c) = controls(r, c);
  }
  auto inv = PseudoInverse(MultiplyAtB(z, z));
  if (!inv.ok()) return inv.error();
  out.standard_errors.resize(p);
  for (std::size_t j = 0; j < p; ++j)
    out.standard_errors[j] = std::sqrt(sigma2 * inv.value()(j, j));
  return out;
}

}  // namespace sisyphus::stats
