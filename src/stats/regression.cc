#include "stats/regression.h"

#include <cmath>

#include "core/error.h"
#include "stats/decomposition.h"
#include "stats/descriptive.h"
#include "stats/distributions.h"

namespace sisyphus::stats {

using core::Error;
using core::ErrorCode;
using core::Result;

namespace {

Matrix WithIntercept(const Matrix& design) {
  Matrix out(design.rows(), design.cols() + 1);
  for (std::size_t r = 0; r < design.rows(); ++r) {
    out(r, 0) = 1.0;
    for (std::size_t c = 0; c < design.cols(); ++c)
      out(r, c + 1) = design(r, c);
  }
  return out;
}

}  // namespace

double OlsFit::TStatistic(std::size_t i) const {
  SISYPHUS_REQUIRE(i < coefficients.size(), "TStatistic: index");
  return coefficients[i] / standard_errors[i];
}

double OlsFit::PValue(std::size_t i) const {
  const double dof = static_cast<double>(n - p);
  return TwoSidedTPValue(TStatistic(i), dof);
}

double OlsFit::RobustPValue(std::size_t i) const {
  SISYPHUS_REQUIRE(i < coefficients.size(), "RobustPValue: index");
  return TwoSidedZPValue(coefficients[i] / robust_errors[i]);
}

double OlsFit::Predict(std::span<const double> row) const {
  if (row.size() + 1 == coefficients.size()) {
    // Caller passed regressors without the intercept column.
    double sum = coefficients[0];
    for (std::size_t i = 0; i < row.size(); ++i)
      sum += coefficients[i + 1] * row[i];
    return sum;
  }
  SISYPHUS_REQUIRE(row.size() == coefficients.size(), "Predict: size");
  return Dot(row, coefficients);
}

Result<OlsFit> Ols(const Matrix& design, std::span<const double> y,
                   const OlsOptions& options) {
  const Matrix x = options.add_intercept ? WithIntercept(design) : design;
  if (x.rows() != y.size()) {
    return Error(ErrorCode::kInvalidArgument, "Ols: y length != rows");
  }
  if (x.rows() <= x.cols()) {
    return Error(ErrorCode::kInvalidArgument,
                 "Ols: need more observations than parameters");
  }
  auto beta = SolveLeastSquares(x, y);
  if (!beta.ok()) return beta.error();

  OlsFit fit;
  fit.coefficients = std::move(beta).value();
  fit.n = x.rows();
  fit.p = x.cols();
  fit.fitted = x.Apply(fit.coefficients);
  fit.residuals.resize(fit.n);
  double ssr = 0.0;
  for (std::size_t i = 0; i < fit.n; ++i) {
    fit.residuals[i] = y[i] - fit.fitted[i];
    ssr += fit.residuals[i] * fit.residuals[i];
  }
  const double dof = static_cast<double>(fit.n - fit.p);
  fit.residual_variance = ssr / dof;

  // (X'X)^-1 via pseudo-inverse of X'X (p x p, small).
  const Matrix xtx = MultiplyAtB(x, x);
  auto xtx_inv = PseudoInverse(xtx);
  if (!xtx_inv.ok()) return xtx_inv.error();
  const Matrix& inv = xtx_inv.value();

  fit.standard_errors.resize(fit.p);
  for (std::size_t j = 0; j < fit.p; ++j)
    fit.standard_errors[j] = std::sqrt(fit.residual_variance * inv(j, j));

  // HC1 sandwich: (X'X)^-1 X' diag(e^2) X (X'X)^-1 * n/(n-p).
  Matrix meat(fit.p, fit.p);
  for (std::size_t i = 0; i < fit.n; ++i) {
    const double e2 = fit.residuals[i] * fit.residuals[i];
    auto row = x.Row(i);
    for (std::size_t a = 0; a < fit.p; ++a)
      for (std::size_t b = 0; b < fit.p; ++b)
        meat(a, b) += e2 * row[a] * row[b];
  }
  const Matrix sandwich = inv * meat * inv;
  const double hc1 = static_cast<double>(fit.n) / dof;
  fit.robust_errors.resize(fit.p);
  for (std::size_t j = 0; j < fit.p; ++j)
    fit.robust_errors[j] = std::sqrt(hc1 * sandwich(j, j));

  // R^2 against the mean model.
  const double ybar = Mean(y);
  double sst = 0.0;
  for (double yi : y) sst += (yi - ybar) * (yi - ybar);
  fit.r_squared = sst > 0.0 ? 1.0 - ssr / sst : 0.0;
  fit.adjusted_r_squared =
      1.0 - (1.0 - fit.r_squared) * static_cast<double>(fit.n - 1) / dof;
  return fit;
}

Result<Vector> Ridge(const Matrix& design, std::span<const double> y,
                     double lambda, const OlsOptions& options) {
  SISYPHUS_REQUIRE(lambda >= 0.0, "Ridge: negative lambda");
  const Matrix x = options.add_intercept ? WithIntercept(design) : design;
  if (x.rows() != y.size()) {
    return Error(ErrorCode::kInvalidArgument, "Ridge: y length != rows");
  }
  Matrix xtx = MultiplyAtB(x, x);
  // Leave the intercept unpenalized.
  const std::size_t first = options.add_intercept ? 1 : 0;
  for (std::size_t j = first; j < xtx.cols(); ++j) xtx(j, j) += lambda;
  auto inv = PseudoInverse(xtx);
  if (!inv.ok()) return inv.error();
  Vector xty = x.ApplyTransposed(y);
  return inv.value().Apply(xty);
}

Matrix DesignFromColumns(const std::vector<Vector>& columns) {
  return Matrix::FromColumns(columns);
}

std::size_t NeweyWestDefaultLags(std::size_t n) {
  return static_cast<std::size_t>(
      std::floor(4.0 * std::pow(static_cast<double>(n) / 100.0, 2.0 / 9.0)));
}

Result<Vector> NeweyWestErrors(const Matrix& design, const OlsFit& fit,
                               std::size_t lags, const OlsOptions& options) {
  const Matrix x = options.add_intercept ? WithIntercept(design) : design;
  if (x.rows() != fit.n || x.cols() != fit.p) {
    return Error(ErrorCode::kInvalidArgument,
                 "NeweyWestErrors: design does not match the fit");
  }
  if (lags >= fit.n) {
    return Error(ErrorCode::kInvalidArgument,
                 "NeweyWestErrors: lags must be < observations");
  }
  const std::size_t n = fit.n;
  const std::size_t p = fit.p;

  auto xtx_inv = PseudoInverse(MultiplyAtB(x, x));
  if (!xtx_inv.ok()) return xtx_inv.error();
  const Matrix& bread = xtx_inv.value();

  // Meat: S = sum_t e_t^2 x_t x_t' +
  //   sum_l w_l sum_t e_t e_{t-l} (x_t x_{t-l}' + x_{t-l} x_t').
  Matrix meat(p, p);
  for (std::size_t i = 0; i < n; ++i) {
    const double e2 = fit.residuals[i] * fit.residuals[i];
    auto row = x.Row(i);
    for (std::size_t a = 0; a < p; ++a)
      for (std::size_t b = 0; b < p; ++b) meat(a, b) += e2 * row[a] * row[b];
  }
  for (std::size_t lag = 1; lag <= lags; ++lag) {
    const double weight =
        1.0 - static_cast<double>(lag) / static_cast<double>(lags + 1);
    for (std::size_t i = lag; i < n; ++i) {
      const double ee = fit.residuals[i] * fit.residuals[i - lag];
      auto row_t = x.Row(i);
      auto row_l = x.Row(i - lag);
      for (std::size_t a = 0; a < p; ++a) {
        for (std::size_t b = 0; b < p; ++b) {
          meat(a, b) +=
              weight * ee * (row_t[a] * row_l[b] + row_l[a] * row_t[b]);
        }
      }
    }
  }
  const Matrix sandwich = bread * meat * bread;
  Vector out(p);
  for (std::size_t j = 0; j < p; ++j) {
    out[j] = std::sqrt(std::max(0.0, sandwich(j, j)));
  }
  return out;
}

}  // namespace sisyphus::stats
