// Linear regression: ordinary least squares with classical and
// heteroskedasticity-robust (HC1) standard errors, plus ridge.
#pragma once

#include <span>
#include <vector>

#include "core/result.h"
#include "stats/matrix.h"

namespace sisyphus::stats {

/// Fitted OLS model.
struct OlsFit {
  Vector coefficients;       ///< beta, one per design column
  Vector standard_errors;    ///< classical (homoskedastic) SEs
  Vector robust_errors;      ///< HC1 heteroskedasticity-robust SEs
  Vector residuals;          ///< y - X beta
  Vector fitted;             ///< X beta
  double r_squared = 0.0;
  double adjusted_r_squared = 0.0;
  double residual_variance = 0.0;  ///< SSR / (n - p)
  std::size_t n = 0;               ///< observations
  std::size_t p = 0;               ///< parameters

  /// t statistic for coefficient i using classical SEs.
  double TStatistic(std::size_t i) const;
  /// Two-sided p-value for coefficient i (classical SEs, t distribution).
  double PValue(std::size_t i) const;
  /// Two-sided p-value using HC1 robust SEs (normal approximation).
  double RobustPValue(std::size_t i) const;
  /// Predicts for a single row of regressors.
  double Predict(std::span<const double> row) const;
};

/// Options for Ols().
struct OlsOptions {
  bool add_intercept = true;  ///< prepend a constant-1 column
};

/// Fits y ~ X by QR least squares. X columns are the regressors; when
/// options.add_intercept, the returned coefficient 0 is the intercept.
/// Fails (kNumericalFailure) on rank deficiency, (kInvalidArgument) when
/// n <= p.
core::Result<OlsFit> Ols(const Matrix& design, std::span<const double> y,
                         const OlsOptions& options = {});

/// Ridge regression: (X'X + lambda I)^-1 X'y, intercept unpenalized when
/// added. lambda >= 0.
core::Result<Vector> Ridge(const Matrix& design, std::span<const double> y,
                           double lambda, const OlsOptions& options = {});

/// Convenience: builds a design matrix from named columns (used by the
/// causal estimators which work on Dataset columns).
Matrix DesignFromColumns(const std::vector<Vector>& columns);

/// Newey–West HAC standard errors for an OLS fit on TIME-ORDERED data:
/// the sandwich with Bartlett-weighted autocovariance terms up to `lags`.
/// Panel RTT series are strongly autocorrelated (diurnal structure), so
/// classical/HC SEs understate uncertainty; use these for time-series
/// regressions. `design` must be the matrix passed to Ols (without the
/// intercept column when options.add_intercept was true — pass the same
/// options). lags < observations required.
core::Result<Vector> NeweyWestErrors(const Matrix& design, const OlsFit& fit,
                                     std::size_t lags,
                                     const OlsOptions& options = {});

/// Rule-of-thumb lag choice: floor(4 * (n/100)^(2/9)).
std::size_t NeweyWestDefaultLags(std::size_t n);

}  // namespace sisyphus::stats
