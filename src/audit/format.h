// On-disk layout of the indexed audit artifact (audit.bin, schema
// sisyphus.audit/1 — DESIGN.md §12).
//
// The file is a pure function of the final lineage ledger, so every
// determinism guarantee the ledger already carries (byte-identical at any
// SISYPHUS_THREADS via TaskObserver capture/replay, byte-identical across
// a durable kill/resume via Lineage::Save/Load in the snapshot payload)
// transfers to audit.bin with no extra machinery.
//
// Layout (all integers little-endian, fixed-width — core/binio.h rules):
//
//   [0,  8)  magic "SISYAUD1"
//   [8, 12)  u32 version (1)
//   [12,16)  u32 flags (0)
//   [16,24)  u64 section_count
//   [24,32)  u64 table_offset
//   [32,40)  u64 file_size
//   [40,48)  u64 header_checksum = FNV-1a over bytes [0, 40)
//   ...      sections, each 8-byte aligned (zero padding between)
//   table_offset:
//            section_count entries of 40 bytes each:
//              u64 kind, u64 run (~0 = global), u64 offset, u64 size,
//              u64 checksum (FNV-1a over the section's bytes)
//   ...      u64 table_checksum = FNV-1a over the table entry bytes
//
// A reader validates the header and table (O(index)), then verifies each
// section checksum lazily on first access. Sections are 8-byte aligned so
// the mmap'd columnar arrays can be read through typed pointers without
// misaligned loads (UBSan-clean).
#pragma once

#include <cstdint>

namespace sisyphus::audit {

inline constexpr char kAuditMagic[8] = {'S', 'I', 'S', 'Y',
                                        'A', 'U', 'D', '1'};
inline constexpr std::uint32_t kAuditVersion = 1;
inline constexpr const char* kAuditSchema = "sisyphus.audit/1";
inline constexpr const char* kAuditFileName = "audit.bin";

inline constexpr std::uint64_t kAuditHeaderSize = 48;
inline constexpr std::uint64_t kAuditTableEntrySize = 40;
/// `run` value marking a file-global section.
inline constexpr std::uint64_t kAuditGlobalRun = ~std::uint64_t{0};

/// Section kinds. Per run the writer emits one of each run-scoped kind;
/// kMeta is global. Unknown kinds are skipped by readers (forward
/// compatibility within version 1).
enum class SectionKind : std::uint64_t {
  /// Global: schema string, run count, stage names, fault-bit names.
  kMeta = 1,
  /// Per run: label + waterfall rollup (the conservation surface) +
  /// record/unit/estimate counts.
  kRunHeader = 2,
  /// Per run: columnar per-record arrays (index = id - 1), stages
  /// RESOLVED (fit marks folded in): u64 n, then 8-byte-aligned arrays
  /// vantage u32[n], intent u8[n], attempts u8[n], fault_mask u8[n],
  /// copies u8[n], stage u8[n], seen u8[n].
  kRecords = 3,
  /// Per run: for each of the 9 terminal stages, the record-id posting
  /// list (IdRunSet encoding) plus intent/fault/vantage facet counts.
  kTerminalIndex = 4,
  /// Per run: sorted fixed-stride unit directory (binary-searchable by
  /// name) with per-unit payloads: panel verdict, cell digests/id-runs.
  kUnitIndex = 5,
  /// Per run: sorted fixed-stride estimate directory (by label) with
  /// effect/p-value and precomputed treated/donor compositions.
  kEstimateIndex = 6,
  /// Per run: units and vantages ranked by contributing records (the
  /// --top-k surface), precomputed at write time.
  kRankings = 7,
};

/// One decoded section-table entry.
struct SectionEntry {
  std::uint64_t kind = 0;
  std::uint64_t run = kAuditGlobalRun;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

}  // namespace sisyphus::audit
