#include "audit/writer.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "audit/format.h"
#include "core/binio.h"
#include "core/hash.h"

namespace sisyphus::audit {
namespace {

using core::binio::Writer;
using obs::IdRunSet;
using obs::kLineageFaultNames;
using obs::kLineageStageCount;
using obs::Lineage;
using obs::LineageStage;

void AppendRawU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendRawU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PadTo8(std::string& out) {
  while (out.size() % 8 != 0) out.push_back('\0');
}

void PutCountMap(Writer& w,
                 const std::map<std::string, std::uint64_t>& counts) {
  w.PutU64(counts.size());
  for (const auto& [key, count] : counts) {
    w.PutString(key);
    w.PutU64(count);
  }
}

/// Facet counters over a set of records (intent/fault/vantage name ->
/// count). String keys match the lineage JSON rendering exactly.
struct Facets {
  std::map<std::string, std::uint64_t> intents;
  std::map<std::string, std::uint64_t> faults;
  std::map<std::string, std::uint64_t> vantages;

  void Add(const Lineage::RecordEntry& entry) {
    ++intents[obs::LineageIntentName(entry.intent)];
    ++vantages[std::to_string(entry.vantage)];
    for (std::size_t bit = 0; bit < kLineageFaultNames.size(); ++bit) {
      if (entry.fault_mask & (1u << bit)) ++faults[kLineageFaultNames[bit]];
    }
  }

  void Put(Writer& w) const {
    PutCountMap(w, intents);
    PutCountMap(w, faults);
    PutCountMap(w, vantages);
  }
};

/// Mirror of the estimate composition in Lineage::ToJson: records/cells
/// counted over every id in the units' kept cells, digest = FNV over the
/// concatenated cell digests, facets over *seen* records only — so the
/// indexed answers equal the JSON-path answers field for field.
struct Composition {
  std::uint64_t records = 0;
  std::uint64_t cells = 0;
  std::uint64_t digest = 0;
  Facets facets;
};

Composition Compose(const Lineage::RunLedger& run,
                    const std::vector<std::string>& units) {
  Composition comp;
  std::string digest_bytes;
  for (const std::string& unit_name : units) {
    const auto it = run.units.find(unit_name);
    if (it == run.units.end() || it->second.dropped) continue;
    for (const Lineage::CellEntry& cell : it->second.cells) {
      ++comp.cells;
      const std::uint64_t cell_digest = cell.ids.digest();
      digest_bytes.append(reinterpret_cast<const char*>(&cell_digest),
                          sizeof(cell_digest));
      for (std::uint64_t id : cell.ids.Expand()) {
        if (id == 0 || id > run.records.size()) continue;
        const Lineage::RecordEntry& entry = run.records[id - 1];
        ++comp.records;
        if (!entry.seen) continue;
        comp.facets.Add(entry);
      }
    }
  }
  comp.digest = core::Fnv1a64(digest_bytes);
  return comp;
}

void PutComposition(Writer& w, const Composition& comp) {
  w.PutU64(comp.records);
  w.PutU64(comp.cells);
  w.PutU64(comp.digest);
  comp.facets.Put(w);
}

/// Records contributed by one unit: sum of kept-cell id counts, or the
/// dropped-id set size for dropped units.
std::uint64_t UnitRecordTotal(const Lineage::UnitLedger& unit) {
  if (unit.dropped) return unit.dropped_ids.size();
  std::uint64_t total = 0;
  for (const Lineage::CellEntry& cell : unit.cells) total += cell.ids.size();
  return total;
}

std::string EncodeMeta(std::size_t run_count) {
  Writer w;
  w.PutString(kAuditSchema);
  w.PutU64(run_count);
  w.PutU64(kLineageStageCount);
  for (std::size_t s = 0; s < kLineageStageCount; ++s) {
    w.PutString(obs::ToString(static_cast<LineageStage>(s)));
  }
  w.PutU64(kLineageFaultNames.size());
  for (const char* name : kLineageFaultNames) w.PutString(name);
  w.PutU64(obs::kLineageIntentNames.size());
  for (const char* name : obs::kLineageIntentNames) w.PutString(name);
  return std::move(w).Take();
}

std::string EncodeRunHeader(const Lineage::RunLedger& run,
                            const std::vector<LineageStage>& stages) {
  std::uint64_t emitted = 0, delivered = 0, quarantined = 0, archived = 0,
                untracked = 0, failed = 0;
  std::array<std::uint64_t, kLineageStageCount> terminal{};
  for (std::size_t i = 0; i < run.records.size(); ++i) {
    const Lineage::RecordEntry& entry = run.records[i];
    if (!entry.seen) {
      ++untracked;
      continue;
    }
    ++emitted;
    delivered += entry.copies;
    if (stages[i] == LineageStage::kQuarantined) {
      quarantined += entry.copies;
    } else {
      archived += entry.copies;
    }
    ++terminal[static_cast<std::size_t>(stages[i])];
  }
  for (const auto& [reason, count] : run.probe_failures) failed += count;
  std::uint64_t units_kept = 0, units_dropped = 0, cells_observed = 0,
                cells_masked = 0;
  for (const auto& [name, unit] : run.units) {
    if (unit.dropped) {
      ++units_dropped;
    } else {
      ++units_kept;
    }
    cells_observed += unit.observed_cells;
    cells_masked += unit.masked_cells;
  }

  Writer w;
  w.PutString(run.label);
  w.PutU64(emitted);
  w.PutU64(untracked);
  w.PutU64(delivered);
  w.PutU64(quarantined);
  w.PutU64(archived);
  w.PutU64(failed);
  PutCountMap(w, run.probe_failures);
  for (std::size_t s = 0; s < kLineageStageCount; ++s) w.PutU64(terminal[s]);
  w.PutU64(units_kept);
  w.PutU64(units_dropped);
  w.PutU64(run.empty_units);
  w.PutU64(cells_observed);
  w.PutU64(cells_masked);
  w.PutU64(run.records.size());
  w.PutU64(run.units.size());
  w.PutU64(run.estimates.size());
  return std::move(w).Take();
}

std::string EncodeRecords(const Lineage::RunLedger& run,
                          const std::vector<LineageStage>& stages) {
  const std::size_t n = run.records.size();
  std::string out;
  out.reserve(8 + n * 10 + 64);
  AppendRawU64(out, n);
  for (const Lineage::RecordEntry& entry : run.records) {
    AppendRawU32(out, entry.vantage);
  }
  PadTo8(out);
  const auto column = [&](auto&& get) {
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(static_cast<char>(get(run.records[i], stages[i])));
    }
    PadTo8(out);
  };
  column([](const Lineage::RecordEntry& r, LineageStage) { return r.intent; });
  column(
      [](const Lineage::RecordEntry& r, LineageStage) { return r.attempts; });
  column([](const Lineage::RecordEntry& r, LineageStage) {
    return r.fault_mask;
  });
  column([](const Lineage::RecordEntry& r, LineageStage) { return r.copies; });
  column([](const Lineage::RecordEntry&, LineageStage stage) {
    return static_cast<std::uint8_t>(stage);
  });
  column([](const Lineage::RecordEntry& r, LineageStage) {
    return static_cast<std::uint8_t>(r.seen ? 1 : 0);
  });
  return out;
}

std::string EncodeTerminalIndex(const Lineage::RunLedger& run,
                                const std::vector<LineageStage>& stages) {
  Writer w;
  for (std::size_t s = 0; s < kLineageStageCount; ++s) {
    const LineageStage stage = static_cast<LineageStage>(s);
    std::vector<std::uint64_t> ids;
    Facets facets;
    for (std::size_t i = 0; i < run.records.size(); ++i) {
      if (stages[i] != stage) continue;
      ids.push_back(static_cast<std::uint64_t>(i) + 1);
      facets.Add(run.records[i]);
    }
    w.PutU64(ids.size());
    core::binio::PutU64Vector(w, IdRunSet::FromSorted(ids).encoded());
    facets.Put(w);
  }
  return std::move(w).Take();
}

/// Sorted fixed-stride directory + payload area shared by the unit and
/// estimate indexes: u64 count, then count entries of
/// {name_off, name_len, payload_off, payload_len} (section-relative),
/// then the name heap, padding, and the concatenated payloads.
std::string EncodeDirectory(
    const std::vector<std::pair<std::string, std::string>>& entries) {
  std::string names;
  std::vector<std::array<std::uint64_t, 4>> slots;
  slots.reserve(entries.size());
  const std::uint64_t dir_size = 8 + 32 * entries.size();
  for (const auto& [name, payload] : entries) {
    slots.push_back({dir_size + names.size(), name.size(), 0, payload.size()});
    names += name;
  }
  std::uint64_t payload_base = dir_size + names.size();
  while (payload_base % 8 != 0) ++payload_base;
  std::uint64_t cursor = payload_base;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    slots[i][2] = cursor;
    cursor += entries[i].second.size();
  }

  std::string out;
  out.reserve(cursor);
  AppendRawU64(out, entries.size());
  for (const auto& slot : slots) {
    for (std::uint64_t field : slot) AppendRawU64(out, field);
  }
  out += names;
  while (out.size() < payload_base) out.push_back('\0');
  for (const auto& [name, payload] : entries) out += payload;
  return out;
}

std::string EncodeUnitIndex(const Lineage::RunLedger& run) {
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(run.units.size());
  for (const auto& [name, unit] : run.units) {  // map order = sorted by name
    Writer w;
    w.PutBool(unit.dropped);
    w.PutDouble(unit.missing_fraction);
    w.PutU64(unit.observed_cells);
    w.PutU64(unit.masked_cells);
    w.PutBool(unit.used_treated);
    w.PutBool(unit.used_donor);
    core::binio::PutU64Vector(w, unit.dropped_ids.encoded());
    w.PutU64(unit.cells.size());
    for (const Lineage::CellEntry& cell : unit.cells) {
      w.PutU32(cell.period);
      w.PutU64(cell.ids.size());
      w.PutU64(cell.ids.digest());
      core::binio::PutU64Vector(w, cell.ids.encoded());
    }
    w.PutU64(UnitRecordTotal(unit));
    entries.emplace_back(name, std::move(w).Take());
  }
  return EncodeDirectory(entries);
}

std::string EncodeEstimateIndex(const Lineage::RunLedger& run) {
  // Stable sort by label keeps the earliest insertion first among equal
  // labels, so a directory lookup returns the same estimate the JSON
  // first-match scan does.
  std::vector<std::size_t> order(run.estimates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return run.estimates[a].label < run.estimates[b].label;
                   });
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(order.size());
  for (std::size_t index : order) {
    const Lineage::EstimateEntry& estimate = run.estimates[index];
    Writer w;
    w.PutString(estimate.treated);
    w.PutU64(estimate.donors.size());
    for (const std::string& donor : estimate.donors) w.PutString(donor);
    w.PutDouble(estimate.effect);
    w.PutDouble(estimate.p_value);
    PutComposition(w, Compose(run, {estimate.treated}));
    PutComposition(w, Compose(run, estimate.donors));
    entries.emplace_back(estimate.label, std::move(w).Take());
  }
  return EncodeDirectory(entries);
}

std::string EncodeRankings(const Lineage::RunLedger& run) {
  struct UnitRank {
    std::string name;
    std::uint64_t records = 0;
    bool dropped = false;
  };
  std::vector<UnitRank> units;
  units.reserve(run.units.size());
  for (const auto& [name, unit] : run.units) {
    units.push_back({name, UnitRecordTotal(unit), unit.dropped});
  }
  std::sort(units.begin(), units.end(), [](const UnitRank& a,
                                           const UnitRank& b) {
    if (a.records != b.records) return a.records > b.records;
    return a.name < b.name;
  });

  std::map<std::uint32_t, std::uint64_t> vantage_counts;
  for (const Lineage::RecordEntry& entry : run.records) {
    ++vantage_counts[entry.vantage];
  }
  std::vector<std::pair<std::uint32_t, std::uint64_t>> vantages(
      vantage_counts.begin(), vantage_counts.end());
  std::sort(vantages.begin(), vantages.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  Writer w;
  w.PutU64(units.size());
  for (const UnitRank& unit : units) {
    w.PutString(unit.name);
    w.PutU64(unit.records);
    w.PutBool(unit.dropped);
  }
  w.PutU64(vantages.size());
  for (const auto& [vantage, count] : vantages) {
    w.PutU32(vantage);
    w.PutU64(count);
  }
  return std::move(w).Take();
}

}  // namespace

std::string BuildAuditArtifact(const obs::Lineage& lineage) {
  std::string file(kAuditHeaderSize, '\0');
  std::vector<SectionEntry> table;

  const auto add_section = [&](SectionKind kind, std::uint64_t run,
                               const std::string& payload) {
    PadTo8(file);
    SectionEntry entry;
    entry.kind = static_cast<std::uint64_t>(kind);
    entry.run = run;
    entry.offset = file.size();
    entry.size = payload.size();
    entry.checksum = core::Fnv1a64(payload);
    table.push_back(entry);
    file += payload;
  };

  lineage.VisitRuns([&](const std::vector<Lineage::RunLedger>& runs) {
    add_section(SectionKind::kMeta, kAuditGlobalRun, EncodeMeta(runs.size()));
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const Lineage::RunLedger& run = runs[r];
      const std::vector<LineageStage> stages = Lineage::ResolveStages(run);
      add_section(SectionKind::kRunHeader, r, EncodeRunHeader(run, stages));
      add_section(SectionKind::kRecords, r, EncodeRecords(run, stages));
      add_section(SectionKind::kTerminalIndex, r,
                  EncodeTerminalIndex(run, stages));
      add_section(SectionKind::kUnitIndex, r, EncodeUnitIndex(run));
      add_section(SectionKind::kEstimateIndex, r, EncodeEstimateIndex(run));
      add_section(SectionKind::kRankings, r, EncodeRankings(run));
    }
  });

  PadTo8(file);
  const std::uint64_t table_offset = file.size();
  std::string table_bytes;
  table_bytes.reserve(table.size() * kAuditTableEntrySize);
  for (const SectionEntry& entry : table) {
    AppendRawU64(table_bytes, entry.kind);
    AppendRawU64(table_bytes, entry.run);
    AppendRawU64(table_bytes, entry.offset);
    AppendRawU64(table_bytes, entry.size);
    AppendRawU64(table_bytes, entry.checksum);
  }
  file += table_bytes;
  AppendRawU64(file, core::Fnv1a64(table_bytes));

  // Header, then its checksum over the first 40 bytes.
  std::string header;
  header.append(kAuditMagic, sizeof(kAuditMagic));
  AppendRawU32(header, kAuditVersion);
  AppendRawU32(header, 0);  // flags
  AppendRawU64(header, table.size());
  AppendRawU64(header, table_offset);
  AppendRawU64(header, file.size());
  AppendRawU64(header, core::Fnv1a64(header));
  std::memcpy(file.data(), header.data(), header.size());
  return file;
}

core::Status WriteAuditArtifact(const std::string& directory,
                                const obs::Lineage& lineage) {
  const std::string bytes = BuildAuditArtifact(lineage);
  const std::string path = directory + "/" + kAuditFileName;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return core::Error(core::ErrorCode::kInvalidArgument,
                       "audit: cannot open " + path + " for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != bytes.size() || !closed) {
    return core::Error(core::ErrorCode::kCapacity,
                       "audit: short write to " + path);
  }
  return core::Status::Ok();
}

}  // namespace sisyphus::audit
