// Zero-copy memory-mapped reader for audit.bin (format.h, DESIGN.md §12).
//
// Open() maps the file and validates only the fixed header and the
// section table — O(index), no parsing of section payloads — so opening
// a multi-gigabyte artifact is instant. Section payload checksums are
// verified lazily, once, on first access (VerifyAll() forces every
// section for --check / obscheck). Accessors return decoded views; the
// columnar record arrays are handed out as typed pointers straight into
// the mapping (sections are 8-byte aligned by the writer).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "audit/format.h"
#include "core/result.h"
#include "obs/lineage.h"

namespace sisyphus::audit {

/// Zero-copy view of one run's columnar record arrays (index = id - 1).
/// `stage` is the RESOLVED terminal stage (fit marks folded in).
struct RecordColumns {
  std::uint64_t count = 0;
  const std::uint32_t* vantage = nullptr;
  const std::uint8_t* intent = nullptr;
  const std::uint8_t* attempts = nullptr;
  const std::uint8_t* fault_mask = nullptr;
  const std::uint8_t* copies = nullptr;
  const std::uint8_t* stage = nullptr;
  const std::uint8_t* seen = nullptr;
};

/// Intent/fault/vantage breakdowns keyed exactly as the lineage JSON
/// renders them (intent names, fault-bit names, decimal vantage ids).
struct FacetCounts {
  std::map<std::string, std::uint64_t> intents;
  std::map<std::string, std::uint64_t> faults;
  std::map<std::string, std::uint64_t> vantages;
};

/// Posting list for one terminal stage of one run.
struct TerminalSlice {
  std::uint64_t count = 0;
  /// IdRunSet [gap, len, ...] encoding of the record ids.
  std::vector<std::uint64_t> id_runs;
  FacetCounts facets;
};

struct CellInfo {
  std::uint32_t period = 0;
  std::uint64_t count = 0;
  std::uint64_t digest = 0;
  std::vector<std::uint64_t> runs;
};

struct UnitInfo {
  bool found = false;
  bool dropped = false;
  double missing_fraction = 0.0;
  std::uint64_t observed_cells = 0;
  std::uint64_t masked_cells = 0;
  bool used_treated = false;
  bool used_donor = false;
  std::vector<std::uint64_t> dropped_id_runs;
  std::vector<CellInfo> cells;
  std::uint64_t record_total = 0;
};

struct CompositionInfo {
  std::uint64_t records = 0;
  std::uint64_t cells = 0;
  std::uint64_t digest = 0;
  FacetCounts facets;
};

struct EstimateInfo {
  bool found = false;
  std::string treated;
  std::vector<std::string> donors;
  double effect = 0.0;
  double p_value = 0.0;  ///< NaN = not applicable
  CompositionInfo treated_comp;
  CompositionInfo donor_comp;
};

struct UnitRank {
  std::string name;
  std::uint64_t records = 0;
  bool dropped = false;
};

struct VantageRank {
  std::uint32_t vantage = 0;
  std::uint64_t records = 0;
};

struct Rankings {
  std::vector<UnitRank> units;
  std::vector<VantageRank> vantages;
};

/// Per-run rollup decoded from the run-header section at Open() time.
struct RunSummary {
  std::string label;
  obs::LineageWaterfall waterfall;
  std::uint64_t record_rows = 0;  ///< columnar rows (= emitted + untracked)
  std::uint64_t unit_count = 0;
  std::uint64_t estimate_count = 0;
};

class AuditReader {
 public:
  AuditReader() = default;
  ~AuditReader();
  AuditReader(const AuditReader&) = delete;
  AuditReader& operator=(const AuditReader&) = delete;

  /// Maps and validates header + section table + meta/run headers.
  /// On failure the reader stays closed.
  core::Status Open(const std::string& path);
  bool is_open() const { return map_ != nullptr; }

  std::size_t run_count() const { return runs_.size(); }
  const RunSummary& run(std::size_t index) const { return runs_[index]; }

  /// Zero-copy columnar record view (verifies the section on first use).
  core::Result<RecordColumns> Records(std::size_t run) const;
  /// Posting list + facets for one terminal stage.
  core::Result<TerminalSlice> Terminal(std::size_t run,
                                       obs::LineageStage stage) const;
  /// Binary search in the unit directory; .found is false when absent.
  core::Result<UnitInfo> FindUnit(std::size_t run,
                                  std::string_view name) const;
  /// Binary search in the estimate directory (first insertion wins among
  /// duplicate labels, matching the JSON scan).
  core::Result<EstimateInfo> FindEstimate(std::size_t run,
                                          std::string_view label) const;
  /// Units/vantages ranked by contributing records (write-time order).
  core::Result<Rankings> Ranked(std::size_t run) const;

  /// Forces checksum verification of every section.
  core::Status VerifyAll() const;

 private:
  /// Returns the section's payload bytes, verifying its checksum once.
  core::Result<std::string_view> Section(SectionKind kind,
                                         std::uint64_t run) const;
  core::Status VerifyEntry(std::size_t index) const;
  const char* base() const { return static_cast<const char*>(map_); }
  void Close();

  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  std::string path_;
  std::vector<SectionEntry> table_;
  mutable std::vector<std::uint8_t> verified_;  ///< per table entry
  std::vector<RunSummary> runs_;
};

}  // namespace sisyphus::audit
