// Serializes the global lineage ledger into the indexed audit artifact
// (audit.bin, format.h / DESIGN.md §12).
//
// The artifact is a pure function of the ledger contents: no wall-clock,
// no iteration-order dependence (unit and probe-failure maps are already
// sorted; estimate directories are sorted stably by label at write time).
// Because the durable layer snapshots and restores the ledger itself
// (Lineage::Save/Load inside the snapshot payload), a killed-and-resumed
// run rebuilds the exact ledger and therefore the exact audit.bin.
#pragma once

#include <string>

#include "core/result.h"
#include "obs/lineage.h"

namespace sisyphus::audit {

/// Builds the complete audit.bin byte image from a lineage ledger.
/// Deterministic: equal ledgers produce equal bytes.
std::string BuildAuditArtifact(const obs::Lineage& lineage);

/// Writes `directory`/audit.bin (directory must exist). Returns an error
/// on I/O failure; never writes a partial file on success.
core::Status WriteAuditArtifact(const std::string& directory,
                                const obs::Lineage& lineage);

}  // namespace sisyphus::audit
