#include "audit/reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "core/binio.h"
#include "core/hash.h"

namespace sisyphus::audit {
namespace {

using core::Error;
using core::ErrorCode;
using core::Result;
using core::Status;

std::uint64_t ReadRawU64(const char* base, std::uint64_t offset) {
  std::uint64_t v = 0;
  std::memcpy(&v, base + offset, sizeof(v));
  return v;
}

std::uint32_t ReadRawU32(const char* base, std::uint64_t offset) {
  std::uint32_t v = 0;
  std::memcpy(&v, base + offset, sizeof(v));
  return v;
}

Error Malformed(const std::string& path, const std::string& what) {
  return Error(ErrorCode::kParseError, "audit: " + path + ": " + what);
}

std::map<std::string, std::uint64_t> GetCountMap(core::binio::Reader& r) {
  std::map<std::string, std::uint64_t> out;
  const std::uint64_t n = r.GetU64();
  for (std::uint64_t i = 0; i < n && r.ok(); ++i) {
    std::string key = r.GetString();
    const std::uint64_t count = r.GetU64();
    if (r.ok()) out.emplace(std::move(key), count);
  }
  return out;
}

FacetCounts GetFacets(core::binio::Reader& r) {
  FacetCounts facets;
  facets.intents = GetCountMap(r);
  facets.faults = GetCountMap(r);
  facets.vantages = GetCountMap(r);
  return facets;
}

CompositionInfo GetComposition(core::binio::Reader& r) {
  CompositionInfo comp;
  comp.records = r.GetU64();
  comp.cells = r.GetU64();
  comp.digest = r.GetU64();
  comp.facets = GetFacets(r);
  return comp;
}

/// One slot of a sorted directory section (unit / estimate indexes).
struct DirSlot {
  std::uint64_t name_off = 0;
  std::uint64_t name_len = 0;
  std::uint64_t payload_off = 0;
  std::uint64_t payload_len = 0;
};

/// Binary-searches a directory section for `name`; returns the payload
/// bytes, or an empty view when absent, or an error when malformed.
Result<std::string_view> DirectoryLookup(std::string_view section,
                                         std::string_view name,
                                         const std::string& path) {
  if (section.size() < 8) return Malformed(path, "directory too small");
  const char* base = section.data();
  const std::uint64_t count = ReadRawU64(base, 0);
  if (8 + count * 32 > section.size()) {
    return Malformed(path, "directory slot table out of bounds");
  }
  const auto slot_at = [&](std::uint64_t i) {
    DirSlot slot;
    slot.name_off = ReadRawU64(base, 8 + i * 32);
    slot.name_len = ReadRawU64(base, 8 + i * 32 + 8);
    slot.payload_off = ReadRawU64(base, 8 + i * 32 + 16);
    slot.payload_len = ReadRawU64(base, 8 + i * 32 + 24);
    return slot;
  };
  const auto name_at = [&](const DirSlot& slot) {
    return std::string_view(base + slot.name_off,
                            static_cast<std::size_t>(slot.name_len));
  };
  std::uint64_t lo = 0, hi = count;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const DirSlot slot = slot_at(mid);
    if (slot.name_off + slot.name_len > section.size() ||
        slot.payload_off + slot.payload_len > section.size()) {
      return Malformed(path, "directory entry out of bounds");
    }
    if (name_at(slot) < name) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= count) return std::string_view();
  const DirSlot slot = slot_at(lo);
  if (slot.name_off + slot.name_len > section.size() ||
      slot.payload_off + slot.payload_len > section.size()) {
    return Malformed(path, "directory entry out of bounds");
  }
  if (name_at(slot) != name) return std::string_view();
  return std::string_view(base + slot.payload_off,
                          static_cast<std::size_t>(slot.payload_len));
}

}  // namespace

AuditReader::~AuditReader() { Close(); }

void AuditReader::Close() {
  if (map_ != nullptr) {
    ::munmap(map_, map_size_);
    map_ = nullptr;
    map_size_ = 0;
  }
  table_.clear();
  verified_.clear();
  runs_.clear();
}

Status AuditReader::Open(const std::string& path) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Error(ErrorCode::kNotFound, "audit: cannot open " + path);
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Malformed(path, "cannot stat");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size < kAuditHeaderSize) {
    ::close(fd);
    return Malformed(path, "truncated header (file smaller than 48 bytes)");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return Malformed(path, "mmap failed");
  }
  map_ = map;
  map_size_ = size;
  path_ = path;

  // -- header --
  const char* b = base();
  if (std::memcmp(b, kAuditMagic, sizeof(kAuditMagic)) != 0) {
    Close();
    return Malformed(path, "bad magic (not an audit.bin)");
  }
  if (ReadRawU32(b, 8) != kAuditVersion) {
    Close();
    return Malformed(path, "unsupported version");
  }
  const std::uint64_t section_count = ReadRawU64(b, 16);
  const std::uint64_t table_offset = ReadRawU64(b, 24);
  const std::uint64_t file_size = ReadRawU64(b, 32);
  const std::uint64_t header_checksum = ReadRawU64(b, 40);
  if (core::Fnv1a64(std::string_view(b, 40)) != header_checksum) {
    Close();
    return Malformed(path, "header checksum mismatch");
  }
  if (file_size != size) {
    Close();
    return Malformed(path, "file size mismatch (truncated or appended)");
  }

  // -- section table --
  const std::uint64_t table_bytes = section_count * kAuditTableEntrySize;
  if (table_offset < kAuditHeaderSize || table_offset > size ||
      table_bytes + 8 > size - table_offset) {
    Close();
    return Malformed(path, "section table out of bounds");
  }
  const std::string_view table_view(b + table_offset,
                                    static_cast<std::size_t>(table_bytes));
  if (core::Fnv1a64(table_view) !=
      ReadRawU64(b, table_offset + table_bytes)) {
    Close();
    return Malformed(path, "section table checksum mismatch");
  }
  table_.reserve(static_cast<std::size_t>(section_count));
  for (std::uint64_t i = 0; i < section_count; ++i) {
    const std::uint64_t at = table_offset + i * kAuditTableEntrySize;
    SectionEntry entry;
    entry.kind = ReadRawU64(b, at);
    entry.run = ReadRawU64(b, at + 8);
    entry.offset = ReadRawU64(b, at + 16);
    entry.size = ReadRawU64(b, at + 24);
    entry.checksum = ReadRawU64(b, at + 32);
    if (entry.offset < kAuditHeaderSize || entry.offset > table_offset ||
        entry.size > table_offset - entry.offset ||
        entry.offset % 8 != 0) {
      Close();
      return Malformed(path, "section entry out of bounds");
    }
    table_.push_back(entry);
  }
  verified_.assign(table_.size(), 0);

  // -- meta + run headers (small; decoded eagerly so run_count()/run()
  //    need no error paths) --
  const Result<std::string_view> meta =
      Section(SectionKind::kMeta, kAuditGlobalRun);
  if (!meta.ok()) {
    const Error error = meta.error();
    Close();
    return error;
  }
  core::binio::Reader mr(meta.value());
  const std::string schema = mr.GetString();
  if (!mr.ok() || schema != kAuditSchema) {
    Close();
    return Malformed(path, "schema mismatch (want sisyphus.audit/1)");
  }
  const std::uint64_t run_count = mr.GetU64();
  runs_.reserve(static_cast<std::size_t>(run_count));
  for (std::uint64_t r = 0; r < run_count; ++r) {
    const Result<std::string_view> header =
        Section(SectionKind::kRunHeader, r);
    if (!header.ok()) {
      const Error error = header.error();
      Close();
      return error;
    }
    core::binio::Reader hr(header.value());
    RunSummary summary;
    summary.label = hr.GetString();
    summary.waterfall.emitted = hr.GetU64();
    summary.waterfall.untracked = hr.GetU64();
    summary.waterfall.delivered = hr.GetU64();
    summary.waterfall.quarantined_copies = hr.GetU64();
    summary.waterfall.archived_copies = hr.GetU64();
    summary.waterfall.probes_failed = hr.GetU64();
    summary.waterfall.failure_reasons = GetCountMap(hr);
    for (std::size_t s = 0; s < obs::kLineageStageCount; ++s) {
      summary.waterfall.terminal[s] = hr.GetU64();
    }
    summary.waterfall.units_kept = hr.GetU64();
    summary.waterfall.units_dropped = hr.GetU64();
    summary.waterfall.units_empty = hr.GetU64();
    summary.waterfall.cells_observed = hr.GetU64();
    summary.waterfall.cells_masked = hr.GetU64();
    summary.record_rows = hr.GetU64();
    summary.unit_count = hr.GetU64();
    summary.estimate_count = hr.GetU64();
    if (!hr.ok()) {
      Close();
      return Malformed(path, "run header decode failed");
    }
    summary.waterfall.probes_attempted =
        summary.waterfall.emitted + summary.waterfall.probes_failed;
    runs_.push_back(std::move(summary));
  }
  return Status::Ok();
}

Status AuditReader::VerifyEntry(std::size_t index) const {
  if (verified_[index]) return Status::Ok();
  const SectionEntry& entry = table_[index];
  const std::string_view bytes(base() + entry.offset,
                               static_cast<std::size_t>(entry.size));
  if (core::Fnv1a64(bytes) != entry.checksum) {
    return Malformed(path_, "section checksum mismatch (kind " +
                                std::to_string(entry.kind) + ", run " +
                                (entry.run == kAuditGlobalRun
                                     ? std::string("global")
                                     : std::to_string(entry.run)) +
                                ")");
  }
  verified_[index] = 1;
  return Status::Ok();
}

Result<std::string_view> AuditReader::Section(SectionKind kind,
                                              std::uint64_t run) const {
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const SectionEntry& entry = table_[i];
    if (entry.kind != static_cast<std::uint64_t>(kind) || entry.run != run) {
      continue;
    }
    const Status status = VerifyEntry(i);
    if (!status.ok()) return status.error();
    return std::string_view(base() + entry.offset,
                            static_cast<std::size_t>(entry.size));
  }
  return Malformed(path_, "missing section (kind " +
                              std::to_string(static_cast<int>(kind)) + ")");
}

Status AuditReader::VerifyAll() const {
  for (std::size_t i = 0; i < table_.size(); ++i) {
    const Status status = VerifyEntry(i);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Result<RecordColumns> AuditReader::Records(std::size_t run) const {
  const Result<std::string_view> section =
      Section(SectionKind::kRecords, run);
  if (!section.ok()) return section.error();
  const std::string_view bytes = section.value();
  if (bytes.size() < 8) return Malformed(path_, "records section too small");
  RecordColumns columns;
  columns.count = ReadRawU64(bytes.data(), 0);
  const std::uint64_t n = columns.count;
  const auto pad8 = [](std::uint64_t v) { return (v + 7) & ~std::uint64_t{7}; };
  std::uint64_t need = 8 + pad8(n * 4);
  for (int i = 0; i < 6; ++i) need += pad8(n);
  if (need > bytes.size()) {
    return Malformed(path_, "records section truncated");
  }
  const char* p = bytes.data();
  std::uint64_t off = 8;
  columns.vantage = reinterpret_cast<const std::uint32_t*>(p + off);
  off += pad8(n * 4);
  const auto u8_column = [&]() {
    const std::uint8_t* column =
        reinterpret_cast<const std::uint8_t*>(p + off);
    off += pad8(n);
    return column;
  };
  columns.intent = u8_column();
  columns.attempts = u8_column();
  columns.fault_mask = u8_column();
  columns.copies = u8_column();
  columns.stage = u8_column();
  columns.seen = u8_column();
  return columns;
}

Result<TerminalSlice> AuditReader::Terminal(std::size_t run,
                                            obs::LineageStage stage) const {
  const Result<std::string_view> section =
      Section(SectionKind::kTerminalIndex, run);
  if (!section.ok()) return section.error();
  core::binio::Reader r(section.value());
  for (std::size_t s = 0; s < obs::kLineageStageCount; ++s) {
    TerminalSlice slice;
    slice.count = r.GetU64();
    slice.id_runs = core::binio::GetU64Vector(r);
    slice.facets = GetFacets(r);
    if (!r.ok()) return Malformed(path_, "terminal index decode failed");
    if (static_cast<obs::LineageStage>(s) == stage) return slice;
  }
  return Malformed(path_, "terminal stage out of range");
}

Result<UnitInfo> AuditReader::FindUnit(std::size_t run,
                                       std::string_view name) const {
  const Result<std::string_view> section =
      Section(SectionKind::kUnitIndex, run);
  if (!section.ok()) return section.error();
  const Result<std::string_view> payload =
      DirectoryLookup(section.value(), name, path_);
  if (!payload.ok()) return payload.error();
  UnitInfo info;
  if (payload.value().data() == nullptr) return info;  // not found
  core::binio::Reader r(payload.value());
  info.found = true;
  info.dropped = r.GetBool();
  info.missing_fraction = r.GetDouble();
  info.observed_cells = r.GetU64();
  info.masked_cells = r.GetU64();
  info.used_treated = r.GetBool();
  info.used_donor = r.GetBool();
  info.dropped_id_runs = core::binio::GetU64Vector(r);
  const std::uint64_t cell_count = r.GetU64();
  for (std::uint64_t i = 0; i < cell_count && r.ok(); ++i) {
    CellInfo cell;
    cell.period = r.GetU32();
    cell.count = r.GetU64();
    cell.digest = r.GetU64();
    cell.runs = core::binio::GetU64Vector(r);
    info.cells.push_back(std::move(cell));
  }
  info.record_total = r.GetU64();
  if (!r.ok()) return Malformed(path_, "unit payload decode failed");
  return info;
}

Result<EstimateInfo> AuditReader::FindEstimate(std::size_t run,
                                               std::string_view label) const {
  const Result<std::string_view> section =
      Section(SectionKind::kEstimateIndex, run);
  if (!section.ok()) return section.error();
  const Result<std::string_view> payload =
      DirectoryLookup(section.value(), label, path_);
  if (!payload.ok()) return payload.error();
  EstimateInfo info;
  if (payload.value().data() == nullptr) return info;  // not found
  core::binio::Reader r(payload.value());
  info.found = true;
  info.treated = r.GetString();
  const std::uint64_t donor_count = r.GetU64();
  for (std::uint64_t i = 0; i < donor_count && r.ok(); ++i) {
    info.donors.push_back(r.GetString());
  }
  info.effect = r.GetDouble();
  info.p_value = r.GetDouble();
  info.treated_comp = GetComposition(r);
  info.donor_comp = GetComposition(r);
  if (!r.ok()) return Malformed(path_, "estimate payload decode failed");
  return info;
}

Result<Rankings> AuditReader::Ranked(std::size_t run) const {
  const Result<std::string_view> section =
      Section(SectionKind::kRankings, run);
  if (!section.ok()) return section.error();
  core::binio::Reader r(section.value());
  Rankings rankings;
  const std::uint64_t unit_count = r.GetU64();
  for (std::uint64_t i = 0; i < unit_count && r.ok(); ++i) {
    UnitRank unit;
    unit.name = r.GetString();
    unit.records = r.GetU64();
    unit.dropped = r.GetBool();
    rankings.units.push_back(std::move(unit));
  }
  const std::uint64_t vantage_count = r.GetU64();
  for (std::uint64_t i = 0; i < vantage_count && r.ok(); ++i) {
    VantageRank vantage;
    vantage.vantage = r.GetU32();
    vantage.records = r.GetU64();
    rankings.vantages.push_back(vantage);
  }
  if (!r.ok()) return Malformed(path_, "rankings decode failed");
  return rankings;
}

}  // namespace sisyphus::audit
