// Measurement lineage: per-record provenance from emission through panel
// aggregation into the estimates that cite it (DESIGN.md §9).
//
// The paper's §4 platform proposals are about auditability: an analyst
// should be able to ask "which measurements, taken why, under which
// faults, back this effect estimate?" The metrics registry (PR 2) answers
// that only in aggregate. The Lineage ledger tracks every SpeedTestRecord
// id through a terminal-state waterfall —
//
//   emitted → quarantined | archived | out_of_panel | dropped_sparsity
//           | aggregated  | donor    | treated
//
// — with the invariant that each emitted record lands in EXACTLY ONE
// terminal state (the deepest pipeline stage it reached). Panel cells
// carry compact contributing-record-id sets (delta-encoded sorted runs,
// FNV-digested for cheap equality), and estimates record which units —
// and hence records, intents, fault exposures, and vantages — back each
// per-unit effect and p-value.
//
// Cost tiers match the metrics registry:
//  - compiled out (-DSISYPHUS_OBS=OFF): the SISYPHUS_LINEAGE macro
//    expands to nothing and Lineage::enabled() is constant false;
//  - compiled in, disabled (the default): one global-flag load per site;
//  - enabled (--obs-out): mutex-guarded ledger updates off the hot loops
//    (emission happens at the serial merge, panel attribution once per
//    build, marks once per fit).
//
// Determinism contract: the ledger reflects only what the instrumented
// code did — never wall-clock — and events raised inside a
// core::ParallelFor task are captured into the task's buffer and replayed
// in ascending task-index order (the TaskObserver side-channel shared
// with the metrics registry), so ToJson() is byte-identical at any
// SISYPHUS_THREADS.
//
// Layering: obs cannot depend on measure/causal, so the ledger speaks in
// primitives (ids, unit-key strings, intent codes, fault bits). The
// canonical names for intent codes and fault bits live here so every
// consumer (artifact, lineageq, obscheck) renders them identically.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sisyphus::core::binio {
class Writer;
class Reader;
}  // namespace sisyphus::core::binio

namespace sisyphus::obs {

/// Pipeline stages a record can terminate in, ordered by depth: a
/// record's terminal state is the numerically largest stage it reached.
enum class LineageStage : std::uint8_t {
  kEmitted = 0,          ///< produced but never handed to a store (tests)
  kQuarantined = 1,      ///< rejected by validating ingest
  kArchived = 2,         ///< archived, but no panel was ever built over it
  kOutOfPanel = 3,       ///< archived, outside the panel's time range
  kDroppedSparsity = 4,  ///< bucketed, but its unit was dropped as sparse
  kAggregated = 5,       ///< contributed to a kept panel cell, unused by fits
  kDonor = 6,            ///< its unit served in a fit's donor pool
  kTreated = 7,          ///< its unit was the treated series of a fit
  kShedOverload = 8,     ///< dropped by streaming overload shedding (§11)
};
inline constexpr std::size_t kLineageStageCount = 9;
const char* ToString(LineageStage stage);

/// Record-fault mask bits (set by measure::FaultInjector, named here so
/// the artifact and its consumers agree). kLineageFaultNames[i] names
/// bit (1 << i).
inline constexpr std::uint8_t kLineageFaultSkewed = 1;
inline constexpr std::uint8_t kLineageFaultTruncated = 2;
inline constexpr std::uint8_t kLineageFaultCorrupted = 4;
inline constexpr std::uint8_t kLineageFaultDuplicated = 8;
inline constexpr std::array<const char*, 4> kLineageFaultNames = {
    "skewed", "truncated", "corrupted", "duplicated"};

/// Canonical names for measure::Intent codes (0, 1, 2); codes beyond the
/// array render as "intent<code>".
inline constexpr std::array<const char*, 3> kLineageIntentNames = {
    "baseline", "user_initiated", "event_triggered"};
std::string LineageIntentName(std::uint8_t code);

/// A compact immutable set of record ids: consecutive runs of sorted ids
/// stored delta-encoded as [gap, len, gap, len, ...] where each gap is
/// measured from the end of the previous run (from 0 for the first), plus
/// an FNV-1a digest over the encoding for cheap equality. A panel cell's
/// contributing-record set is typically a handful of runs regardless of
/// how many records it holds, because platform ids are sequential per
/// vantage step.
class IdRunSet {
 public:
  IdRunSet() = default;

  /// Builds from ids sorted ascending (duplicates are collapsed).
  static IdRunSet FromSorted(const std::vector<std::uint64_t>& sorted_ids);

  /// Rebuilds from a previously serialized encoded() vector (snapshot
  /// restore); size and digest are recomputed from the encoding.
  static IdRunSet FromEncoded(std::vector<std::uint64_t> encoded);

  std::uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::uint64_t digest() const { return digest_; }
  /// The raw [gap, len, ...] encoding (serialized verbatim as "runs").
  const std::vector<std::uint64_t>& encoded() const { return encoded_; }
  /// Expands back to the sorted id list.
  std::vector<std::uint64_t> Expand() const;

  friend bool operator==(const IdRunSet& a, const IdRunSet& b) {
    return a.digest_ == b.digest_ && a.encoded_ == b.encoded_;
  }

 private:
  std::vector<std::uint64_t> encoded_;
  std::uint64_t size_ = 0;
  std::uint64_t digest_ = 0;
};

/// Everything the platform knows about one emitted record at merge time.
struct LineageRecordInfo {
  std::uint64_t id = 0;        ///< sequential, 1-based (core::MeasurementId)
  std::uint32_t vantage = 0;   ///< vantage PoP index
  std::uint8_t intent = 0;     ///< measure::Intent code
  std::uint8_t attempts = 1;   ///< probe attempts consumed (clamped to 255)
  std::uint8_t fault_mask = 0; ///< kLineageFault* bits
  std::uint8_t copies = 1;     ///< delivered copies (2 = duplicated)
  bool archived = false;       ///< passed validating ingest
};

namespace internal {
extern bool g_lineage_enabled;

// One buffered ledger mutation. Public mutators funnel through events so
// the capture path (inside parallel tasks) and the direct path apply the
// exact same logic; field meaning depends on `kind` (see lineage.cc).
struct LineageEvent {
  enum class Kind : std::uint8_t {
    kBeginRun,
    kEmitted,
    kShed,
    kProbeFailure,
    kOutOfPanel,
    kUnitEmpty,
    kUnitKept,
    kUnitDropped,
    kCell,
    kMarkTreated,
    kMarkDonor,
    kEstimate,
  };
  Kind kind = Kind::kBeginRun;
  LineageRecordInfo record;        // kEmitted
  std::string name;                // run label / reason / unit / estimate label
  std::string unit;                // kEstimate: treated unit
  std::vector<std::string> names;  // kEstimate: donor units
  std::uint64_t id = 0;            // kOutOfPanel
  std::uint32_t period = 0;        // kCell
  std::uint64_t count = 0;         // failure count / observed cells
  std::uint64_t count2 = 0;        // masked cells
  double number = 0.0;             // missing fraction / effect
  double number2 = 0.0;            // p-value
  IdRunSet ids;                    // kCell / kUnitDropped
};

// Non-null while this thread executes a core::ParallelFor task with
// lineage enabled: events are captured here (set by the metrics TaskBuffer
// machinery) and replayed in task-index order.
extern thread_local std::vector<LineageEvent>* t_lineage_buffer;
}  // namespace internal

/// Aggregate waterfall accounting (per run or summed across runs).
struct LineageWaterfall {
  std::uint64_t probes_attempted = 0;  ///< emitted + probes_failed
  std::uint64_t probes_failed = 0;
  std::uint64_t emitted = 0;           ///< distinct record ids
  std::uint64_t delivered = 0;         ///< copies (duplication counts twice)
  std::uint64_t quarantined_copies = 0;
  std::uint64_t archived_copies = 0;
  /// Ids referenced by panel events without a matching RecordEmitted
  /// (possible only when a store is fed outside the platform, e.g. tests).
  std::uint64_t untracked = 0;
  /// terminal[stage] = records whose deepest stage is `stage`; sums to
  /// `emitted` (the exactly-one-terminal-state invariant).
  std::array<std::uint64_t, kLineageStageCount> terminal{};
  std::map<std::string, std::uint64_t> failure_reasons;
  /// Panel rollup (sums over the run's units).
  std::uint64_t units_kept = 0;
  std::uint64_t units_dropped = 0;
  std::uint64_t units_empty = 0;
  std::uint64_t cells_observed = 0;
  std::uint64_t cells_masked = 0;
};

/// The process-wide lineage ledger. All mutators are cheap no-ops while
/// disabled; hot call sites additionally go through SISYPHUS_LINEAGE so a
/// disabled ledger costs one flag load (and nothing at all under
/// -DSISYPHUS_OBS=OFF).
class Lineage {
 public:
  static Lineage& Global();
  static void Enable(bool on);
  static bool enabled() {
#if defined(SISYPHUS_OBS_DISABLED)
    return false;
#else
    return internal::g_lineage_enabled;
#endif
  }

  /// Clears every run (call at the start of an instrumented run).
  void Reset();

  /// Starts a new run ledger (one per campaign). Relabels the current run
  /// when it has recorded nothing yet, so an ObsRun-opened ledger can be
  /// renamed by the first campaign.
  void BeginRun(std::string label);

  // -- measure/platform --------------------------------------------------
  void RecordEmitted(const LineageRecordInfo& info);
  /// An emitted record dropped by the streaming overload-shed policy: it
  /// terminates in shed_overload with zero delivered copies, keeping
  /// emitted/delivered conservation exact (DESIGN.md §11).
  void RecordShed(const LineageRecordInfo& info);
  void RecordProbeFailure(std::string_view reason, std::uint64_t count = 1);

  // -- measure/panel -----------------------------------------------------
  void RecordOutOfPanel(std::uint64_t id);
  void PanelUnitEmpty(std::string_view unit);
  void PanelUnitKept(std::string_view unit, double missing_fraction,
                     std::uint64_t observed_cells, std::uint64_t masked_cells);
  void PanelUnitDropped(std::string_view unit, double missing_fraction,
                        std::uint64_t observed_cells,
                        std::uint64_t masked_cells, IdRunSet ids);
  /// One observed panel cell of a kept unit with its contributing ids.
  void PanelCell(std::string_view unit, std::uint32_t period, IdRunSet ids);

  // -- causal ------------------------------------------------------------
  /// Marks a kept unit's records as used by a fit. Idempotent; treated
  /// outranks donor. Safe inside parallel tasks (captured + replayed).
  void MarkTreated(std::string_view unit);
  void MarkDonor(std::string_view unit);
  /// Registers an estimate with the units backing it; the serialized entry
  /// carries the record/intent/fault/vantage composition of the treated
  /// unit and the donor pool, resolved from the panel ledger.
  void AddEstimate(std::string label, std::string treated_unit,
                   std::vector<std::string> donor_units, double effect,
                   double p_value);

  /// Waterfall totals summed across runs, with fit marks resolved.
  LineageWaterfall Totals() const;
  /// Number of run ledgers (diagnostics/tests).
  std::size_t run_count() const;

  /// Deterministic artifact JSON (schema sisyphus.lineage/1); compact by
  /// default — the columnar record arrays make indented output huge.
  std::string ToJson(int indent = 0) const;

  /// Applies a captured per-task event buffer in order (called from the
  /// TaskObserver merge on the region's calling thread).
  void Replay(const std::vector<internal::LineageEvent>& events);

  /// Serializes / restores the full ledger (every run, record entry, unit
  /// cell set, and estimate) for a durable snapshot (DESIGN.md §11).
  void Save(core::binio::Writer& w) const;
  bool Load(core::binio::Reader& r);

  // Ledger internals, public so read-only consumers (the audit artifact
  // writer in src/audit/) can walk the resolved ledger through VisitRuns
  // without a parallel copy of the schema. Mutation stays private.
  struct RecordEntry {
    std::uint32_t vantage = 0;
    std::uint8_t intent = 0;
    std::uint8_t attempts = 0;
    std::uint8_t fault_mask = 0;
    std::uint8_t copies = 0;
    LineageStage stage = LineageStage::kEmitted;
    bool seen = false;  ///< RecordEmitted arrived (vs panel-only reference)
  };
  struct CellEntry {
    std::uint32_t period = 0;
    IdRunSet ids;
  };
  struct UnitLedger {
    bool dropped = false;
    double missing_fraction = 0.0;
    std::uint64_t observed_cells = 0;
    std::uint64_t masked_cells = 0;
    std::vector<CellEntry> cells;  ///< kept units only
    IdRunSet dropped_ids;          ///< dropped units only
    bool used_treated = false;
    bool used_donor = false;
  };
  struct EstimateEntry {
    std::string label;
    std::string treated;
    std::vector<std::string> donors;
    double effect = 0.0;
    double p_value = 0.0;  ///< NaN = not applicable (serialized null)
  };
  struct RunLedger {
    std::string label;
    std::vector<RecordEntry> records;  ///< index = id - 1
    std::map<std::string, std::uint64_t> probe_failures;
    std::map<std::string, UnitLedger> units;
    std::vector<EstimateEntry> estimates;
    std::uint64_t empty_units = 0;
    std::uint64_t event_count = 0;  ///< 0 = relabelable by BeginRun
  };

  /// Per-record stages with used_treated/used_donor unit flags folded in
  /// (pure function of one run ledger; shared by ToJson and the audit
  /// artifact writer so both resolve identical terminal states).
  static std::vector<LineageStage> ResolveStages(const RunLedger& run);

  /// Read-only visitor over the run ledgers, invoked with mu_ held: the
  /// audit writer serializes a consistent view without copying the ledger.
  /// `fn` must not call back into this Lineage.
  template <typename Fn>
  void VisitRuns(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    fn(static_cast<const std::vector<RunLedger>&>(runs_));
  }

 private:
  void Emit(internal::LineageEvent&& event);
  void Apply(const internal::LineageEvent& event);  // mu_ held
  RunLedger& CurrentRun();                          // mu_ held
  RecordEntry& EntryFor(RunLedger& run, std::uint64_t id);  // mu_ held

  mutable std::mutex mu_;
  std::vector<RunLedger> runs_;
};

}  // namespace sisyphus::obs

// Lineage call-site macro: `call` is a member call on the global ledger,
// e.g. SISYPHUS_LINEAGE(RecordProbeFailure("probe_loss")). Costs one
// global-flag load while disabled; expands to nothing under
// -DSISYPHUS_OBS=OFF.
#if defined(SISYPHUS_OBS_DISABLED)
#define SISYPHUS_LINEAGE(call) ((void)0)
#else
#define SISYPHUS_LINEAGE(call)                          \
  do {                                                  \
    if (::sisyphus::obs::internal::g_lineage_enabled) { \
      ::sisyphus::obs::Lineage::Global().call;          \
    }                                                   \
  } while (0)
#endif
