// Metrics registry: named counters, gauges, and fixed-bucket histograms,
// cheap enough to leave compiled into the hot paths (netsim probe loops,
// BGP convergence, estimator fits).
//
// Three cost tiers:
//  - compiled out (-DSISYPHUS_OBS_DISABLED, cmake -DSISYPHUS_OBS=OFF): the
//    SISYPHUS_METRIC_* macros expand to nothing;
//  - compiled in, registry disabled (the default): one relaxed global-flag
//    load and branch per call site;
//  - enabled: a pointer chase and an integer add (counters/gauges) or a
//    small branchless-ish bucket scan (histograms).
//
// Determinism contract: metric values reflect only what the instrumented
// code did — never wall-clock time — so a seeded run snapshots to
// byte-identical JSON every time (ISSUE 3 acceptance bar; wall-clock spans
// live in obs::Tracer instead).
//
// Threading (DESIGN.md §7): registration is mutex-guarded, and metric
// writes issued from inside a core::ParallelFor task are diverted to a
// thread-local per-task buffer that the pool replays on the calling thread
// in ascending task-index order. Metric state is therefore only ever
// mutated from the region's calling thread, and the snapshot stays
// byte-identical regardless of SISYPHUS_THREADS (including histogram
// floating-point sums, whose accumulation order is pinned by the replay).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sisyphus::core::json {
class Writer;
}  // namespace sisyphus::core::json

namespace sisyphus::core::binio {
class Writer;
class Reader;
}  // namespace sisyphus::core::binio

namespace sisyphus::obs {

/// Monotonically increasing count of events (probes attempted, cache
/// hits, placebo runs...). Naming scheme: "layer.noun.verbed", e.g.
/// "measure.probes.attempted" (DESIGN.md §6).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(std::uint64_t n = 1);
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  void Reset() { value_.store(0, std::memory_order_relaxed); }
  /// Overwrites the count (snapshot restore, DESIGN.md §11).
  void LoadValue(std::uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  // Relaxed atomic: increments commute, so concurrent producer/consumer
  // threads in the pipelined ingest mode (DESIGN.md §11) still yield a
  // deterministic total. Everything else in the registry stays
  // single-writer via the capture/replay path.
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (event-queue depth, panel dimensions...).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double value);
  double value() const { return value_; }
  const std::string& name() const { return name_; }
  void Reset() { value_ = 0.0; }
  /// Overwrites the value (snapshot restore).
  void LoadValue(double v) { value_ = v; }

 private:
  std::string name_;
  double value_ = 0.0;
};

/// Fixed-bucket histogram: counts per upper bound plus an overflow bucket,
/// with sum/count for mean recovery. Bounds are fixed at registration; the
/// snapshot is deterministic because bucket assignment depends only on the
/// observed values.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> upper_bounds);

  void Observe(double value);
  const std::string& name() const { return name_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// bucket_counts()[i] counts observations <= upper_bounds()[i]; the last
  /// entry (size = bounds + 1) is the overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  /// Deterministic quantile estimate from the bucket counts: finds the
  /// bucket holding the q-th observation and interpolates linearly inside
  /// it ([0, bounds[0]] for the first, clamped to the last bound for the
  /// overflow bucket). A pure function of the counts — identical across
  /// thread counts and kill/resume, unlike a sample-based quantile.
  /// q in [0, 1]; 0 when the histogram is empty.
  double Quantile(double q) const;
  void Reset();
  /// Overwrites the full bucket state (snapshot restore). `counts` must
  /// have upper_bounds() + 1 entries; mismatches are ignored.
  void LoadState(const std::vector<std::uint64_t>& counts,
                 std::uint64_t count, double sum);

 private:
  std::string name_;
  std::vector<double> upper_bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Default histogram bounds: 1, 2, 5 decades from 1 to 1e6 — adequate for
/// iteration counts, queue depths, and millisecond timings alike.
const std::vector<double>& DefaultHistogramBounds();

/// Owns every metric. Registration is idempotent by name; returned
/// pointers are stable for the registry's lifetime, so call sites cache
/// them in function-local statics (see the SISYPHUS_METRIC_* macros).
class Registry {
 public:
  /// The process-wide registry the macros write to.
  static Registry& Global();

  /// Collection on/off switch (off by default: library users who never
  /// opt in pay only the flag check). Enabling mid-run is fine; metrics
  /// count from wherever they were.
  static void Enable(bool on);
  static bool enabled();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `upper_bounds` is consulted only on first registration; pass {} to
  /// use DefaultHistogramBounds().
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> upper_bounds = {});

  /// Zeroes every registered metric (pointers stay valid). Call at the
  /// start of a run so artifacts cover exactly that run.
  void ResetAll();

  /// Deterministic snapshot: metrics sorted by name, schema
  /// sisyphus.metrics/1. Byte-identical across runs that performed the
  /// same instrumented work.
  std::string SnapshotJson(int indent = 2) const;

  /// Value of a counter, 0 when absent — convenience for tests/benches.
  std::uint64_t CounterValue(std::string_view name) const;

  /// Registered histogram by name, nullptr when absent. Read-only — never
  /// registers; the pointer is stable for the registry's lifetime.
  const Histogram* FindHistogram(std::string_view name) const;

  /// Serializes every registered metric (names, values, histogram bucket
  /// state) for a durable snapshot. Load() registers any missing metric
  /// and overwrites values — the resumed process may have registered a
  /// subset of the saved names before restore, never a superset with
  /// different values (DESIGN.md §11 registration-safety invariant).
  void Save(core::binio::Writer& w) const;
  bool Load(core::binio::Reader& r);

 private:
  mutable std::mutex mu_;  // guards the maps (registration / snapshot)
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Wall-clock statistics about the ThreadPool's own behavior: per-region
/// queue-wait (RegionBegin → a lane's first TaskBegin), lane utilization
/// (busy time / lanes x region span), and task-duration spread. Wall-clock
/// means non-deterministic, so PoolStats never touches the Registry (whose
/// snapshot must stay byte-identical across same-seed runs); it is
/// surfaced in manifest.json's "pool" object instead — the chartered
/// non-deterministic artifact (DESIGN.md §6).
///
/// The parallel observer in metrics.cc feeds top-level regions only;
/// nested inline regions are filtered out there.
class PoolStats {
 public:
  static PoolStats& Global();
  static void Enable(bool on);
  static bool enabled() {
#if defined(SISYPHUS_OBS_DISABLED)
    return false;
#else
    return internal_pool_enabled();
#endif
  }

  /// Zeroes all accumulators (call at the start of an instrumented run).
  void Reset();

  // -- observer hooks (top-level parallel regions only) --
  void RegionBegin(std::size_t task_count, std::size_t lanes);
  /// Called per task on the executing thread; detects each lane's first
  /// task of the region internally to derive queue-wait.
  void TaskStart();
  void TaskEnd(double task_us);
  void RegionEnd();

  /// Writes the aggregate object (caller wraps it in a key). Values are
  /// wall-clock microseconds; log2_buckets[i] counts values in
  /// [2^i, 2^(i+1)) us.
  void WriteJson(core::json::Writer& w) const;

 private:
  static bool internal_pool_enabled();

  struct Accum {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, 24> log2_buckets{};
    void Observe(double value);
  };

  mutable std::mutex mu_;
  std::uint64_t regions_ = 0;
  std::uint64_t tasks_ = 0;
  std::uint64_t max_lanes_engaged_ = 0;
  Accum queue_wait_us_;
  Accum task_us_;
  Accum region_span_us_;
  Accum utilization_;  // dimensionless fraction; buckets unused
  // In-flight region state (serial is monotonic so per-thread lane
  // detection survives Reset()).
  std::uint64_t region_serial_ = 0;
  std::size_t region_lanes_ = 0;
  std::uint64_t region_engaged_ = 0;
  double region_busy_us_ = 0.0;
  double region_start_us_ = 0.0;  // steady_clock since-epoch in us
};

namespace internal {
extern bool g_enabled;
extern bool g_pool_stats_enabled;
// True while this thread is executing a core::ParallelFor task: metric
// writes are captured into the task's buffer instead of applied, and
// replayed in task-index order by the pool's TaskObserver (installed by
// this translation unit at static-init time).
extern thread_local bool t_capturing;
void CaptureCount(Counter* counter, std::uint64_t n);
void CaptureGauge(Gauge* gauge, double value);
void CaptureObserve(Histogram* histogram, double value);
}  // namespace internal

inline void Counter::Add(std::uint64_t n) {
  if (!internal::g_enabled) return;
  if (internal::t_capturing) {
    internal::CaptureCount(this, n);
    return;
  }
  value_.fetch_add(n, std::memory_order_relaxed);
}

inline void Gauge::Set(double value) {
  if (!internal::g_enabled) return;
  if (internal::t_capturing) {
    internal::CaptureGauge(this, value);
    return;
  }
  value_ = value;
}

}  // namespace sisyphus::obs

// Instrumentation macros. `name` must be a string literal (it is looked up
// once and cached in a function-local static).
#if defined(SISYPHUS_OBS_DISABLED)
#define SISYPHUS_METRIC_COUNT(name, n) ((void)0)
#define SISYPHUS_METRIC_GAUGE(name, v) ((void)0)
#define SISYPHUS_METRIC_OBSERVE(name, v) ((void)0)
#else
#define SISYPHUS_METRIC_COUNT(name, n)                        \
  do {                                                        \
    static ::sisyphus::obs::Counter* sisyphus_metric_c =      \
        ::sisyphus::obs::Registry::Global().GetCounter(name); \
    sisyphus_metric_c->Add(n);                                \
  } while (0)
#define SISYPHUS_METRIC_GAUGE(name, v)                      \
  do {                                                      \
    static ::sisyphus::obs::Gauge* sisyphus_metric_g =      \
        ::sisyphus::obs::Registry::Global().GetGauge(name); \
    sisyphus_metric_g->Set(v);                              \
  } while (0)
#define SISYPHUS_METRIC_OBSERVE(name, v)                        \
  do {                                                          \
    static ::sisyphus::obs::Histogram* sisyphus_metric_h =      \
        ::sisyphus::obs::Registry::Global().GetHistogram(name); \
    sisyphus_metric_h->Observe(v);                              \
  } while (0)
#endif
