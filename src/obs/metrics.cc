#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/json.h"

namespace sisyphus::obs {

namespace internal {
bool g_enabled = false;
}  // namespace internal

Histogram::Histogram(std::string name, std::vector<double> upper_bounds)
    : name_(std::move(name)), upper_bounds_(std::move(upper_bounds)) {
  SISYPHUS_REQUIRE(!upper_bounds_.empty(), "Histogram: no buckets");
  SISYPHUS_REQUIRE(
      std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()),
      "Histogram: bounds must be sorted");
  counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  if (!internal::g_enabled) return;
  if (!std::isfinite(value)) return;  // non-finite observations are dropped
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += value;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

const std::vector<double>& DefaultHistogramBounds() {
  static const std::vector<double> kBounds = [] {
    std::vector<double> bounds;
    for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
      bounds.push_back(decade);
      bounds.push_back(2.0 * decade);
      bounds.push_back(5.0 * decade);
    }
    return bounds;
  }();
  return kBounds;
}

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

void Registry::Enable(bool on) { internal::g_enabled = on; }
bool Registry::enabled() { return internal::g_enabled; }

Counter* Registry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = DefaultHistogramBounds();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name),
                                                  std::move(upper_bounds)))
             .first;
  }
  return it->second.get();
}

void Registry::ResetAll() {
  for (auto& [_, counter] : counters_) counter->Reset();
  for (auto& [_, gauge] : gauges_) gauge->Reset();
  for (auto& [_, histogram] : histograms_) histogram->Reset();
}

std::uint64_t Registry::CounterValue(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::string Registry::SnapshotJson(int indent) const {
  // std::map iteration is already name-sorted — the determinism guarantee.
  core::json::Writer w(indent);
  w.BeginObject();
  w.Key("schema");
  w.String("sisyphus.metrics/1");
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name);
    w.UInt(counter->value());
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name);
    w.Double(gauge->value());
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.UInt(histogram->count());
    w.Key("sum");
    w.Double(histogram->sum());
    w.Key("upper_bounds");
    w.BeginArray();
    for (double bound : histogram->upper_bounds()) w.Double(bound);
    w.EndArray();
    w.Key("bucket_counts");
    w.BeginArray();
    for (std::uint64_t count : histogram->bucket_counts()) w.UInt(count);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).str();
}

}  // namespace sisyphus::obs
