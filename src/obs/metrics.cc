#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/binio.h"
#include "core/error.h"
#include "core/json.h"
#include "core/parallel.h"
#include "obs/lineage.h"
#include "obs/trace.h"

namespace sisyphus::obs {

namespace internal {
bool g_enabled = false;
bool g_pool_stats_enabled = false;
thread_local bool t_capturing = false;
}  // namespace internal

namespace {

// One buffered metric write. `metric` is a stable registry pointer, so
// replay is a direct application with no name lookup.
struct MetricEvent {
  enum class Kind { kCount, kGauge, kObserve };
  Kind kind;
  void* metric;
  double dvalue = 0.0;
  std::uint64_t uvalue = 0;
};

// Per-task side-channel buffer: metric writes (and lineage events)
// captured on the executing thread, replayed in task-index order on the
// region's calling thread.
struct TaskBuffer {
  std::vector<MetricEvent> events;
  std::vector<internal::LineageEvent> lineage_events;
  std::size_t task_index = 0;
  bool tracing = false;     // emit a wall span at TaskEnd
  bool pool_stats = false;  // feed PoolStats at TaskEnd
  std::chrono::steady_clock::time_point span_start{};
};

thread_local TaskBuffer* t_buffer = nullptr;

// True while this thread executes a pool task: nested inline regions
// (RegionBegin/RegionEnd with no task hooks) must not disturb the
// top-level region's PoolStats bookkeeping.
thread_local bool t_in_task = false;

double SteadyNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// TaskObserver wiring metric capture + per-task trace spans + pool gauges
// into core::ParallelFor. Installed at static-init time (core holds only a
// raw pointer, so init order against other statics is harmless).
class ParallelMetricsObserver final : public core::TaskObserver {
 public:
  void RegionBegin(std::size_t task_count, std::size_t lanes) override {
    // The registry is contracted to be byte-identical at any thread count
    // (the streaming parity fixture compares raw metrics.json), so only
    // thread-invariant values may land here. Lane counts genuinely depend
    // on the pool size and are surfaced via manifest.json's pool stats —
    // the chartered non-deterministic artifact — instead.
    // Telemetry-silenced regions (streaming ingest) skip the engine
    // counters so metrics.json stays byte-identical to execution shapes
    // that run fewer regions; per-task capture/replay, tracing, and pool
    // stats are unaffected.
    if (!core::RegionTelemetrySilenced()) {
      SISYPHUS_METRIC_COUNT("core.parallel.regions", 1);
      SISYPHUS_METRIC_COUNT("core.parallel.tasks", task_count);
      SISYPHUS_METRIC_GAUGE("core.parallel.region.tasks",
                            static_cast<double>(task_count));
    }
    if (PoolStats::enabled() && !t_in_task) {
      PoolStats::Global().RegionBegin(task_count, lanes);
    }
  }

  void* TaskBegin(std::size_t task_index) override {
    t_in_task = true;
    const bool tracing = Tracer::Global().enabled();
    const bool pool_stats = PoolStats::enabled();
    const bool lineage = Lineage::enabled();
    if (!internal::g_enabled && !tracing && !pool_stats && !lineage) {
      return nullptr;
    }
    auto* buffer = new TaskBuffer;
    buffer->task_index = task_index;
    buffer->tracing = tracing;
    buffer->pool_stats = pool_stats;
    if (tracing || pool_stats) {
      buffer->span_start = std::chrono::steady_clock::now();
    }
    if (pool_stats) PoolStats::Global().TaskStart();
    if (internal::g_enabled) {
      t_buffer = buffer;
      internal::t_capturing = true;
    }
    if (lineage) internal::t_lineage_buffer = &buffer->lineage_events;
    return buffer;
  }

  void TaskEnd(void* token) override {
    internal::t_capturing = false;
    t_buffer = nullptr;
    internal::t_lineage_buffer = nullptr;
    t_in_task = false;
    auto* buffer = static_cast<TaskBuffer*>(token);
    if (buffer == nullptr) return;
    if (buffer->tracing || buffer->pool_stats) {
      const auto now = std::chrono::steady_clock::now();
      if (buffer->tracing) {
        Tracer::Global().RecordWallSpan("parallel.task", "parallel",
                                        buffer->span_start, now);
      }
      if (buffer->pool_stats) {
        PoolStats::Global().TaskEnd(
            std::chrono::duration<double, std::micro>(now -
                                                      buffer->span_start)
                .count());
      }
    }
  }

  void TaskMerge(void* token) override {
    auto* buffer = static_cast<TaskBuffer*>(token);
    if (buffer == nullptr) return;
    for (const MetricEvent& event : buffer->events) {
      switch (event.kind) {
        case MetricEvent::Kind::kCount:
          static_cast<Counter*>(event.metric)->Add(event.uvalue);
          break;
        case MetricEvent::Kind::kGauge:
          static_cast<Gauge*>(event.metric)->Set(event.dvalue);
          break;
        case MetricEvent::Kind::kObserve:
          static_cast<Histogram*>(event.metric)->Observe(event.dvalue);
          break;
      }
    }
    Lineage::Global().Replay(buffer->lineage_events);
    delete buffer;
  }

  void RegionEnd() override {
    if (PoolStats::enabled() && !t_in_task) {
      PoolStats::Global().RegionEnd();
    }
  }
};

struct ObserverRegistrar {
  ObserverRegistrar() {
    static ParallelMetricsObserver observer;
    core::SetTaskObserver(&observer);
  }
};
// metrics.cc is pulled into every binary that touches the registry, so the
// registrar reliably installs the observer before main().
ObserverRegistrar g_observer_registrar;

}  // namespace

namespace internal {

void CaptureCount(Counter* counter, std::uint64_t n) {
  t_buffer->events.push_back(
      {MetricEvent::Kind::kCount, counter, 0.0, n});
}

void CaptureGauge(Gauge* gauge, double value) {
  t_buffer->events.push_back(
      {MetricEvent::Kind::kGauge, gauge, value, 0});
}

void CaptureObserve(Histogram* histogram, double value) {
  t_buffer->events.push_back(
      {MetricEvent::Kind::kObserve, histogram, value, 0});
}

}  // namespace internal

Histogram::Histogram(std::string name, std::vector<double> upper_bounds)
    : name_(std::move(name)), upper_bounds_(std::move(upper_bounds)) {
  SISYPHUS_REQUIRE(!upper_bounds_.empty(), "Histogram: no buckets");
  SISYPHUS_REQUIRE(
      std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()),
      "Histogram: bounds must be sorted");
  counts_.assign(upper_bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  if (!internal::g_enabled) return;
  if (internal::t_capturing) {
    internal::CaptureObserve(this, value);
    return;
  }
  if (!std::isfinite(value)) return;  // non-finite observations are dropped
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - upper_bounds_.begin())];
  ++count_;
  sum_ += value;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the target observation; walk the cumulative counts to
  // its bucket and interpolate linearly inside it.
  const double target = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) < target) continue;
    const double lower = i == 0 ? 0.0 : upper_bounds_[i - 1];
    // The overflow bucket has no upper edge; clamp to the last bound (the
    // estimate is then a floor, which the snapshot's bucket counts make
    // auditable).
    const double upper =
        i < upper_bounds_.size() ? upper_bounds_[i] : upper_bounds_.back();
    const double within =
        std::max(0.0, (target - before) / static_cast<double>(counts_[i]));
    return lower + (upper - lower) * std::min(1.0, within);
  }
  return upper_bounds_.back();
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
}

void Histogram::LoadState(const std::vector<std::uint64_t>& counts,
                          std::uint64_t count, double sum) {
  if (counts.size() != counts_.size()) return;
  counts_ = counts;
  count_ = count;
  sum_ = sum;
}

const std::vector<double>& DefaultHistogramBounds() {
  static const std::vector<double> kBounds = [] {
    std::vector<double> bounds;
    for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
      bounds.push_back(decade);
      bounds.push_back(2.0 * decade);
      bounds.push_back(5.0 * decade);
    }
    return bounds;
  }();
  return kBounds;
}

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

void Registry::Enable(bool on) { internal::g_enabled = on; }
bool Registry::enabled() { return internal::g_enabled; }

Counter* Registry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = DefaultHistogramBounds();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name),
                                                  std::move(upper_bounds)))
             .first;
  }
  return it->second.get();
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, counter] : counters_) counter->Reset();
  for (auto& [_, gauge] : gauges_) gauge->Reset();
  for (auto& [_, histogram] : histograms_) histogram->Reset();
}

std::uint64_t Registry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

const Histogram* Registry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::Save(core::binio::Writer& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.PutU64(counters_.size());
  for (const auto& [name, counter] : counters_) {
    w.PutString(name);
    w.PutU64(counter->value());
  }
  w.PutU64(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    w.PutString(name);
    w.PutDouble(gauge->value());
  }
  w.PutU64(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    w.PutString(name);
    core::binio::PutDoubleVector(w, histogram->upper_bounds());
    core::binio::PutU64Vector(w, histogram->bucket_counts());
    w.PutU64(histogram->count());
    w.PutDouble(histogram->sum());
  }
}

bool Registry::Load(core::binio::Reader& r) {
  const std::uint64_t counter_count = r.GetU64();
  for (std::uint64_t i = 0; i < counter_count && r.ok(); ++i) {
    const std::string name = r.GetString();
    const std::uint64_t value = r.GetU64();
    if (r.ok()) GetCounter(name)->LoadValue(value);
  }
  const std::uint64_t gauge_count = r.GetU64();
  for (std::uint64_t i = 0; i < gauge_count && r.ok(); ++i) {
    const std::string name = r.GetString();
    const double value = r.GetDouble();
    if (r.ok()) GetGauge(name)->LoadValue(value);
  }
  const std::uint64_t histogram_count = r.GetU64();
  for (std::uint64_t i = 0; i < histogram_count && r.ok(); ++i) {
    const std::string name = r.GetString();
    std::vector<double> bounds = core::binio::GetDoubleVector(r);
    const std::vector<std::uint64_t> counts = core::binio::GetU64Vector(r);
    const std::uint64_t count = r.GetU64();
    const double sum = r.GetDouble();
    if (r.ok()) {
      GetHistogram(name, std::move(bounds))->LoadState(counts, count, sum);
    }
  }
  return r.ok();
}

std::string Registry::SnapshotJson(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  // std::map iteration is already name-sorted — the determinism guarantee.
  core::json::Writer w(indent);
  w.BeginObject();
  w.Key("schema");
  w.String("sisyphus.metrics/1");
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name);
    w.UInt(counter->value());
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name);
    w.Double(gauge->value());
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.UInt(histogram->count());
    w.Key("sum");
    w.Double(histogram->sum());
    // Deterministic bucket-interpolated quantiles (pure functions of the
    // counts below, so they inherit the snapshot's byte-identity).
    w.Key("p50");
    w.Double(histogram->Quantile(0.50));
    w.Key("p95");
    w.Double(histogram->Quantile(0.95));
    w.Key("p99");
    w.Double(histogram->Quantile(0.99));
    w.Key("upper_bounds");
    w.BeginArray();
    for (double bound : histogram->upper_bounds()) w.Double(bound);
    w.EndArray();
    w.Key("bucket_counts");
    w.BeginArray();
    for (std::uint64_t count : histogram->bucket_counts()) w.UInt(count);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).str();
}

namespace {
// Last region serial this thread engaged with; a mismatch marks the lane's
// first task of the current region (its queue-wait sample).
thread_local std::uint64_t t_pool_region_serial = 0;
}  // namespace

PoolStats& PoolStats::Global() {
  static PoolStats stats;
  return stats;
}

void PoolStats::Enable(bool on) { internal::g_pool_stats_enabled = on; }

bool PoolStats::internal_pool_enabled() {
  return internal::g_pool_stats_enabled;
}

void PoolStats::Accum::Observe(double value) {
  if (count == 0 || value < min) min = value;
  if (value > max) max = value;
  sum += value;
  ++count;
  std::size_t bucket = 0;
  while (bucket + 1 < log2_buckets.size() &&
         value >= static_cast<double>(std::uint64_t{1} << (bucket + 1))) {
    ++bucket;
  }
  ++log2_buckets[bucket];
}

void PoolStats::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  regions_ = 0;
  tasks_ = 0;
  max_lanes_engaged_ = 0;
  queue_wait_us_ = {};
  task_us_ = {};
  region_span_us_ = {};
  utilization_ = {};
  // region_serial_ stays monotonic so per-thread lane detection survives.
  region_lanes_ = 0;
  region_engaged_ = 0;
  region_busy_us_ = 0.0;
  region_start_us_ = 0.0;
}

void PoolStats::RegionBegin(std::size_t task_count, std::size_t lanes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++regions_;
  tasks_ += task_count;
  ++region_serial_;
  region_lanes_ = lanes;
  region_engaged_ = 0;
  region_busy_us_ = 0.0;
  region_start_us_ = SteadyNowUs();
}

void PoolStats::TaskStart() {
  const double now_us = SteadyNowUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (t_pool_region_serial == region_serial_) return;  // lane already seen
  t_pool_region_serial = region_serial_;
  ++region_engaged_;
  queue_wait_us_.Observe(now_us > region_start_us_
                             ? now_us - region_start_us_
                             : 0.0);
}

void PoolStats::TaskEnd(double task_us) {
  std::lock_guard<std::mutex> lock(mu_);
  task_us_.Observe(task_us);
  region_busy_us_ += task_us;
}

void PoolStats::RegionEnd() {
  const double now_us = SteadyNowUs();
  std::lock_guard<std::mutex> lock(mu_);
  const double span_us =
      now_us > region_start_us_ ? now_us - region_start_us_ : 0.0;
  region_span_us_.Observe(span_us);
  if (region_lanes_ > 0 && span_us > 0.0) {
    utilization_.Observe(region_busy_us_ /
                         (static_cast<double>(region_lanes_) * span_us));
  }
  if (region_engaged_ > max_lanes_engaged_) {
    max_lanes_engaged_ = region_engaged_;
  }
}

void PoolStats::WriteJson(core::json::Writer& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Quantile estimate from the log2 buckets (bucket 0 = [0, 2), bucket b
  // = [2^b, 2^(b+1))), linearly interpolated inside the bucket — the same
  // scheme as Histogram::Quantile, adapted to power-of-two edges.
  const auto log2_quantile = [](const Accum& a, double q) {
    if (a.count == 0) return 0.0;
    const double target = q * static_cast<double>(a.count);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < a.log2_buckets.size(); ++b) {
      if (a.log2_buckets[b] == 0) continue;
      const double before = static_cast<double>(cumulative);
      cumulative += a.log2_buckets[b];
      if (static_cast<double>(cumulative) < target) continue;
      const double lower =
          b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << b);
      const double upper = static_cast<double>(std::uint64_t{1} << (b + 1));
      const double within = std::max(
          0.0, (target - before) / static_cast<double>(a.log2_buckets[b]));
      return lower + (upper - lower) * std::min(1.0, within);
    }
    return a.max;
  };
  const auto accum = [&w, &log2_quantile](const char* key, const Accum& a,
                                          bool buckets) {
    w.Key(key);
    w.BeginObject();
    w.Key("count");
    w.UInt(a.count);
    w.Key("mean");
    w.Double(a.count > 0 ? a.sum / static_cast<double>(a.count) : 0.0);
    w.Key("min");
    w.Double(a.count > 0 ? a.min : 0.0);
    w.Key("max");
    w.Double(a.max);
    if (buckets) {
      w.Key("p50");
      w.Double(log2_quantile(a, 0.50));
      w.Key("p95");
      w.Double(log2_quantile(a, 0.95));
      w.Key("p99");
      w.Double(log2_quantile(a, 0.99));
      w.Key("log2_buckets");
      w.BeginArray();
      for (std::uint64_t count : a.log2_buckets) w.UInt(count);
      w.EndArray();
    }
    w.EndObject();
  };
  w.BeginObject();
  w.Key("regions");
  w.UInt(regions_);
  w.Key("tasks");
  w.UInt(tasks_);
  w.Key("max_lanes_engaged");
  w.UInt(max_lanes_engaged_);
  accum("queue_wait_us", queue_wait_us_, true);
  accum("task_us", task_us_, true);
  accum("region_span_us", region_span_us_, true);
  accum("lane_utilization", utilization_, false);
  w.EndObject();
}

}  // namespace sisyphus::obs
