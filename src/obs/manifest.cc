#include "obs/manifest.h"

#include <fstream>

#include "core/error.h"
#include "core/json.h"

namespace sisyphus::obs {

using core::Error;
using core::ErrorCode;

std::string RunManifest::ToJson(const Registry& metrics, int indent) const {
  core::json::Writer w(indent);
  w.BeginObject();
  w.Key("schema");
  w.String(schema);
  w.Key("tool");
  w.String(tool);
  w.Key("seed");
  w.UInt(seed);
  w.Key("scenario_hash");
  w.String(scenario_hash);
  w.Key("fault_plan_hash");
  w.String(fault_plan_hash);
  w.Key("options");
  w.BeginObject();
  for (const auto& [key, value] : options) {
    w.Key(key);
    w.String(value);
  }
  w.EndObject();
  w.Key("phases");
  w.BeginArray();
  for (const PhaseTiming& phase : phases) {
    w.BeginObject();
    w.Key("name");
    w.String(phase.name);
    w.Key("wall_ms");
    w.Double(phase.wall_ms);
    if (phase.sim_start_min >= 0) {
      w.Key("sim_start_min");
      w.Int(phase.sim_start_min);
      w.Key("sim_end_min");
      w.Int(phase.sim_end_min);
    }
    w.EndObject();
  }
  w.EndArray();
  // A rollup of headline counters so a human skimming the manifest sees
  // run activity at a glance; the full per-name breakdown is metrics.json.
  w.Key("metrics");
  w.BeginObject();
  w.Key("schema");
  w.String("sisyphus.metrics/1");
  for (const char* name :
       {"measure.probes.attempted", "measure.store.quarantined",
        "measure.panel.cells_masked", "causal.placebo.runs"}) {
    w.Key(name);
    w.UInt(metrics.CounterValue(name));
  }
  w.EndObject();
  // Durable-run provenance: where the last snapshot and journal frame
  // stand, whether this process resumed or was interrupted. Deterministic
  // for a given (campaign, snapshot cadence, kill point), but kept in the
  // manifest because a resumed run legitimately differs from a clean one.
  if (durable.enabled) {
    w.Key("durable");
    w.BeginObject();
    w.Key("resumed");
    w.Bool(durable.resumed);
    w.Key("partial");
    w.Bool(durable.partial);
    w.Key("snapshot_seq");
    w.UInt(durable.snapshot_seq);
    w.Key("journal_high_water");
    w.UInt(durable.journal_high_water);
    w.Key("journal_entries");
    w.UInt(durable.journal_entries);
    w.Key("shed_records");
    w.UInt(durable.shed_records);
    w.EndObject();
  }
  // Timeline rollup: how many steps/series/samples timeline.bin carries
  // and how many detection events fired — the trigger summary consumers
  // check before opening the binary artifact.
  if (timeline.enabled) {
    w.Key("timeline");
    w.BeginObject();
    w.Key("steps");
    w.UInt(timeline.steps);
    w.Key("first_step");
    w.UInt(timeline.first_step);
    w.Key("last_step");
    w.UInt(timeline.last_step);
    w.Key("series");
    w.UInt(timeline.series);
    w.Key("samples");
    w.UInt(timeline.samples);
    w.Key("events");
    w.UInt(timeline.events);
    w.Key("level_shift_events");
    w.UInt(timeline.level_shift_events);
    w.Key("churn_events");
    w.UInt(timeline.churn_events);
    w.EndObject();
  }
  // ThreadPool behavior stats are wall-clock and therefore live here (the
  // chartered non-deterministic artifact), never in metrics.json.
  if (PoolStats::enabled()) {
    w.Key("pool");
    PoolStats::Global().WriteJson(w);
  }
  w.EndObject();
  return std::move(w).str();
}

ScopedPhase::ScopedPhase(RunManifest& manifest, std::string name)
    : manifest_(manifest),
      name_(std::move(name)),
      start_(std::chrono::steady_clock::now()) {}

void ScopedPhase::SetSimSpan(core::SimTime start, core::SimTime end) {
  sim_start_min_ = start.minutes();
  sim_end_min_ = end.minutes();
}

void ScopedPhase::Stop() {
  if (stopped_) return;
  stopped_ = true;
  const auto end = std::chrono::steady_clock::now();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(end - start_).count();
  manifest_.AddPhase(name_, wall_ms, sim_start_min_, sim_end_min_);
  Tracer::Global().RecordWallSpan(name_, "phase", start_, end);
  if (sim_start_min_ >= 0) {
    Tracer::Global().RecordSimSpan(name_, "phase",
                                   core::SimTime(sim_start_min_),
                                   core::SimTime(sim_end_min_));
  }
}

ScopedPhase::~ScopedPhase() { Stop(); }

namespace {

core::Status WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Error(ErrorCode::kInvalidArgument,
                 "WriteRunArtifacts: cannot open '" + path + "'");
  }
  out << text << '\n';
  if (!out.good()) {
    return Error(ErrorCode::kInvalidArgument,
                 "WriteRunArtifacts: short write to '" + path + "'");
  }
  return core::Status::Ok();
}

}  // namespace

core::Status WriteRunArtifacts(const std::string& directory,
                               const RunManifest& manifest,
                               const Registry& metrics,
                               const Tracer& tracer) {
  if (auto s = WriteFile(directory + "/manifest.json",
                         manifest.ToJson(metrics));
      !s.ok()) {
    return s;
  }
  if (auto s = WriteFile(directory + "/metrics.json",
                         metrics.SnapshotJson());
      !s.ok()) {
    return s;
  }
  return WriteFile(directory + "/trace.json",
                   tracer.ToChromeTraceJson(/*indent=*/0));
}

core::Status WriteRunArtifacts(const std::string& directory,
                               const RunManifest& manifest,
                               const Registry& metrics, const Tracer& tracer,
                               const Lineage& lineage) {
  if (auto s = WriteRunArtifacts(directory, manifest, metrics, tracer);
      !s.ok()) {
    return s;
  }
  return WriteFile(directory + "/lineage.json",
                   lineage.ToJson(/*indent=*/0));
}

}  // namespace sisyphus::obs
