#include "obs/lineage.h"

#include <algorithm>
#include <cstdio>

#include "core/binio.h"
#include "core/hash.h"
#include "core/json.h"

namespace sisyphus::obs {

namespace internal {
bool g_lineage_enabled = false;
thread_local std::vector<LineageEvent>* t_lineage_buffer = nullptr;
}  // namespace internal

using internal::LineageEvent;

const char* ToString(LineageStage stage) {
  switch (stage) {
    case LineageStage::kEmitted: return "emitted";
    case LineageStage::kQuarantined: return "quarantined";
    case LineageStage::kArchived: return "archived";
    case LineageStage::kOutOfPanel: return "out_of_panel";
    case LineageStage::kDroppedSparsity: return "dropped_sparsity";
    case LineageStage::kAggregated: return "aggregated";
    case LineageStage::kDonor: return "donor";
    case LineageStage::kTreated: return "treated";
    case LineageStage::kShedOverload: return "shed_overload";
  }
  return "unknown";
}

std::string LineageIntentName(std::uint8_t code) {
  if (code < kLineageIntentNames.size()) return kLineageIntentNames[code];
  return "intent" + std::to_string(code);
}

IdRunSet IdRunSet::FromSorted(const std::vector<std::uint64_t>& sorted_ids) {
  IdRunSet out;
  std::uint64_t prev_end = 0;  // one past the previous run's last id
  std::size_t i = 0;
  while (i < sorted_ids.size()) {
    const std::uint64_t start = sorted_ids[i];
    std::uint64_t end = start + 1;
    ++i;
    while (i < sorted_ids.size() && sorted_ids[i] <= end) {
      if (sorted_ids[i] == end) ++end;  // duplicates collapse
      ++i;
    }
    out.encoded_.push_back(start - prev_end);
    out.encoded_.push_back(end - start);
    out.size_ += end - start;
    prev_end = end;
  }
  // Digest over the encoding bytes: equal sets hash equal; deterministic
  // on a fixed platform (byte order), which is all the artifact promises.
  out.digest_ = core::Fnv1a64(std::string_view(
      reinterpret_cast<const char*>(out.encoded_.data()),
      out.encoded_.size() * sizeof(std::uint64_t)));
  return out;
}

IdRunSet IdRunSet::FromEncoded(std::vector<std::uint64_t> encoded) {
  IdRunSet out;
  out.encoded_ = std::move(encoded);
  for (std::size_t i = 0; i + 1 < out.encoded_.size(); i += 2) {
    out.size_ += out.encoded_[i + 1];
  }
  out.digest_ = core::Fnv1a64(std::string_view(
      reinterpret_cast<const char*>(out.encoded_.data()),
      out.encoded_.size() * sizeof(std::uint64_t)));
  return out;
}

std::vector<std::uint64_t> IdRunSet::Expand() const {
  std::vector<std::uint64_t> out;
  out.reserve(size_);
  std::uint64_t cursor = 0;
  for (std::size_t i = 0; i + 1 < encoded_.size(); i += 2) {
    cursor += encoded_[i];
    for (std::uint64_t k = 0; k < encoded_[i + 1]; ++k) out.push_back(cursor++);
  }
  return out;
}

Lineage& Lineage::Global() {
  static Lineage lineage;
  return lineage;
}

void Lineage::Enable(bool on) { internal::g_lineage_enabled = on; }

void Lineage::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  runs_.clear();
}

Lineage::RunLedger& Lineage::CurrentRun() {
  if (runs_.empty()) runs_.emplace_back();
  return runs_.back();
}

Lineage::RecordEntry& Lineage::EntryFor(RunLedger& run, std::uint64_t id) {
  if (run.records.size() < id) run.records.resize(id);
  return run.records[id - 1];
}

void Lineage::Emit(LineageEvent&& event) {
  if (!enabled()) return;
  if (internal::t_lineage_buffer != nullptr) {
    internal::t_lineage_buffer->push_back(std::move(event));
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  Apply(event);
}

void Lineage::Replay(const std::vector<LineageEvent>& events) {
  if (events.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const LineageEvent& event : events) Apply(event);
}

void Lineage::Apply(const LineageEvent& event) {
  using Kind = LineageEvent::Kind;
  if (event.kind == Kind::kBeginRun) {
    if (!runs_.empty() && runs_.back().event_count == 0) {
      runs_.back().label = event.name;
    } else {
      runs_.emplace_back();
      runs_.back().label = event.name;
    }
    return;
  }
  RunLedger& run = CurrentRun();
  ++run.event_count;
  const auto upgrade = [](RecordEntry& entry, LineageStage stage) {
    if (entry.stage < stage) entry.stage = stage;
  };
  switch (event.kind) {
    case Kind::kBeginRun:
      break;  // handled above
    case Kind::kEmitted: {
      if (event.record.id == 0) break;  // hand-built record without an id
      RecordEntry& entry = EntryFor(run, event.record.id);
      entry.vantage = event.record.vantage;
      entry.intent = event.record.intent;
      entry.attempts = event.record.attempts;
      entry.fault_mask = event.record.fault_mask;
      entry.copies = event.record.copies;
      entry.seen = true;
      upgrade(entry, event.record.archived ? LineageStage::kArchived
                                           : LineageStage::kQuarantined);
      break;
    }
    case Kind::kShed: {
      if (event.record.id == 0) break;
      RecordEntry& entry = EntryFor(run, event.record.id);
      entry.vantage = event.record.vantage;
      entry.intent = event.record.intent;
      entry.attempts = event.record.attempts;
      entry.fault_mask = event.record.fault_mask;
      entry.copies = 0;  // never delivered; conservation stays exact
      entry.seen = true;
      upgrade(entry, LineageStage::kShedOverload);
      break;
    }
    case Kind::kProbeFailure:
      run.probe_failures[event.name] += event.count;
      break;
    case Kind::kOutOfPanel:
      if (event.id == 0) break;
      upgrade(EntryFor(run, event.id), LineageStage::kOutOfPanel);
      break;
    case Kind::kUnitEmpty:
      ++run.empty_units;
      break;
    case Kind::kUnitKept: {
      UnitLedger& unit = run.units[event.name];
      unit.dropped = false;
      unit.missing_fraction = event.number;
      unit.observed_cells = event.count;
      unit.masked_cells = event.count2;
      break;
    }
    case Kind::kUnitDropped: {
      UnitLedger& unit = run.units[event.name];
      unit.dropped = true;
      unit.missing_fraction = event.number;
      unit.observed_cells = event.count;
      unit.masked_cells = event.count2;
      unit.dropped_ids = event.ids;
      for (std::uint64_t id : event.ids.Expand()) {
        if (id == 0) continue;
        upgrade(EntryFor(run, id), LineageStage::kDroppedSparsity);
      }
      break;
    }
    case Kind::kCell: {
      UnitLedger& unit = run.units[event.name];
      unit.cells.push_back({event.period, event.ids});
      for (std::uint64_t id : event.ids.Expand()) {
        if (id == 0) continue;
        upgrade(EntryFor(run, id), LineageStage::kAggregated);
      }
      break;
    }
    case Kind::kMarkTreated: {
      const auto it = run.units.find(event.name);
      if (it != run.units.end() && !it->second.dropped) {
        it->second.used_treated = true;
      }
      break;
    }
    case Kind::kMarkDonor: {
      const auto it = run.units.find(event.name);
      if (it != run.units.end() && !it->second.dropped) {
        it->second.used_donor = true;
      }
      break;
    }
    case Kind::kEstimate:
      run.estimates.push_back(
          {event.name, event.unit, event.names, event.number, event.number2});
      break;
  }
}

void Lineage::BeginRun(std::string label) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kBeginRun;
  event.name = std::move(label);
  Emit(std::move(event));
}

void Lineage::RecordEmitted(const LineageRecordInfo& info) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kEmitted;
  event.record = info;
  Emit(std::move(event));
}

void Lineage::RecordShed(const LineageRecordInfo& info) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kShed;
  event.record = info;
  Emit(std::move(event));
}

void Lineage::RecordProbeFailure(std::string_view reason,
                                 std::uint64_t count) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kProbeFailure;
  event.name = std::string(reason);
  event.count = count;
  Emit(std::move(event));
}

void Lineage::RecordOutOfPanel(std::uint64_t id) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kOutOfPanel;
  event.id = id;
  Emit(std::move(event));
}

void Lineage::PanelUnitEmpty(std::string_view unit) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kUnitEmpty;
  event.name = std::string(unit);
  Emit(std::move(event));
}

void Lineage::PanelUnitKept(std::string_view unit, double missing_fraction,
                            std::uint64_t observed_cells,
                            std::uint64_t masked_cells) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kUnitKept;
  event.name = std::string(unit);
  event.number = missing_fraction;
  event.count = observed_cells;
  event.count2 = masked_cells;
  Emit(std::move(event));
}

void Lineage::PanelUnitDropped(std::string_view unit, double missing_fraction,
                               std::uint64_t observed_cells,
                               std::uint64_t masked_cells, IdRunSet ids) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kUnitDropped;
  event.name = std::string(unit);
  event.number = missing_fraction;
  event.count = observed_cells;
  event.count2 = masked_cells;
  event.ids = std::move(ids);
  Emit(std::move(event));
}

void Lineage::PanelCell(std::string_view unit, std::uint32_t period,
                        IdRunSet ids) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kCell;
  event.name = std::string(unit);
  event.period = period;
  event.ids = std::move(ids);
  Emit(std::move(event));
}

void Lineage::MarkTreated(std::string_view unit) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kMarkTreated;
  event.name = std::string(unit);
  Emit(std::move(event));
}

void Lineage::MarkDonor(std::string_view unit) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kMarkDonor;
  event.name = std::string(unit);
  Emit(std::move(event));
}

void Lineage::AddEstimate(std::string label, std::string treated_unit,
                          std::vector<std::string> donor_units, double effect,
                          double p_value) {
  LineageEvent event;
  event.kind = LineageEvent::Kind::kEstimate;
  event.name = std::move(label);
  event.unit = std::move(treated_unit);
  event.names = std::move(donor_units);
  event.number = effect;
  event.number2 = p_value;
  Emit(std::move(event));
}

std::vector<LineageStage> Lineage::ResolveStages(const RunLedger& run) {
  std::vector<LineageStage> stages;
  stages.reserve(run.records.size());
  for (const RecordEntry& entry : run.records) stages.push_back(entry.stage);
  for (const auto& [name, unit] : run.units) {
    if (unit.dropped || (!unit.used_treated && !unit.used_donor)) continue;
    const LineageStage mark =
        unit.used_treated ? LineageStage::kTreated : LineageStage::kDonor;
    for (const CellEntry& cell : unit.cells) {
      for (std::uint64_t id : cell.ids.Expand()) {
        if (id == 0 || id > stages.size()) continue;
        if (stages[id - 1] < mark) stages[id - 1] = mark;
      }
    }
  }
  return stages;
}

LineageWaterfall Lineage::Totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  LineageWaterfall total;
  for (const RunLedger& run : runs_) {
    const std::vector<LineageStage> stages = ResolveStages(run);
    for (std::size_t i = 0; i < run.records.size(); ++i) {
      const RecordEntry& entry = run.records[i];
      if (!entry.seen) {
        ++total.untracked;
        continue;
      }
      ++total.emitted;
      total.delivered += entry.copies;
      if (stages[i] == LineageStage::kQuarantined) {
        total.quarantined_copies += entry.copies;
      } else {
        total.archived_copies += entry.copies;
      }
      ++total.terminal[static_cast<std::size_t>(stages[i])];
    }
    for (const auto& [reason, count] : run.probe_failures) {
      total.probes_failed += count;
      total.failure_reasons[reason] += count;
    }
    total.units_empty += run.empty_units;
    for (const auto& [name, unit] : run.units) {
      if (unit.dropped) {
        ++total.units_dropped;
      } else {
        ++total.units_kept;
      }
      total.cells_observed += unit.observed_cells;
      total.cells_masked += unit.masked_cells;
    }
  }
  total.probes_attempted = total.emitted + total.probes_failed;
  return total;
}

std::size_t Lineage::run_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.size();
}

void Lineage::Save(core::binio::Writer& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  w.PutU64(runs_.size());
  for (const RunLedger& run : runs_) {
    w.PutString(run.label);
    w.PutU64(run.records.size());
    for (const RecordEntry& entry : run.records) {
      w.PutU32(entry.vantage);
      w.PutU8(entry.intent);
      w.PutU8(entry.attempts);
      w.PutU8(entry.fault_mask);
      w.PutU8(entry.copies);
      w.PutU8(static_cast<std::uint8_t>(entry.stage));
      w.PutBool(entry.seen);
    }
    w.PutU64(run.probe_failures.size());
    for (const auto& [reason, count] : run.probe_failures) {
      w.PutString(reason);
      w.PutU64(count);
    }
    w.PutU64(run.units.size());
    for (const auto& [name, unit] : run.units) {
      w.PutString(name);
      w.PutBool(unit.dropped);
      w.PutDouble(unit.missing_fraction);
      w.PutU64(unit.observed_cells);
      w.PutU64(unit.masked_cells);
      w.PutU64(unit.cells.size());
      for (const CellEntry& cell : unit.cells) {
        w.PutU32(cell.period);
        core::binio::PutU64Vector(w, cell.ids.encoded());
      }
      core::binio::PutU64Vector(w, unit.dropped_ids.encoded());
      w.PutBool(unit.used_treated);
      w.PutBool(unit.used_donor);
    }
    w.PutU64(run.estimates.size());
    for (const EstimateEntry& estimate : run.estimates) {
      w.PutString(estimate.label);
      w.PutString(estimate.treated);
      w.PutU64(estimate.donors.size());
      for (const std::string& donor : estimate.donors) w.PutString(donor);
      w.PutDouble(estimate.effect);
      w.PutDouble(estimate.p_value);
    }
    w.PutU64(run.empty_units);
    w.PutU64(run.event_count);
  }
}

bool Lineage::Load(core::binio::Reader& r) {
  std::vector<RunLedger> loaded;
  const std::uint64_t run_count = r.GetU64();
  for (std::uint64_t i = 0; i < run_count && r.ok(); ++i) {
    RunLedger run;
    run.label = r.GetString();
    const std::uint64_t record_count = r.GetU64();
    if (!r.ok() || record_count > r.remaining()) return false;
    run.records.reserve(static_cast<std::size_t>(record_count));
    for (std::uint64_t k = 0; k < record_count && r.ok(); ++k) {
      RecordEntry entry;
      entry.vantage = r.GetU32();
      entry.intent = r.GetU8();
      entry.attempts = r.GetU8();
      entry.fault_mask = r.GetU8();
      entry.copies = r.GetU8();
      entry.stage = static_cast<LineageStage>(r.GetU8());
      entry.seen = r.GetBool();
      run.records.push_back(entry);
    }
    const std::uint64_t failure_count = r.GetU64();
    for (std::uint64_t k = 0; k < failure_count && r.ok(); ++k) {
      const std::string reason = r.GetString();
      run.probe_failures[reason] = r.GetU64();
    }
    const std::uint64_t unit_count = r.GetU64();
    for (std::uint64_t k = 0; k < unit_count && r.ok(); ++k) {
      const std::string name = r.GetString();
      UnitLedger unit;
      unit.dropped = r.GetBool();
      unit.missing_fraction = r.GetDouble();
      unit.observed_cells = r.GetU64();
      unit.masked_cells = r.GetU64();
      const std::uint64_t cell_count = r.GetU64();
      if (!r.ok() || cell_count > r.remaining()) return false;
      unit.cells.reserve(static_cast<std::size_t>(cell_count));
      for (std::uint64_t c = 0; c < cell_count && r.ok(); ++c) {
        CellEntry cell;
        cell.period = r.GetU32();
        cell.ids = IdRunSet::FromEncoded(core::binio::GetU64Vector(r));
        unit.cells.push_back(std::move(cell));
      }
      unit.dropped_ids = IdRunSet::FromEncoded(core::binio::GetU64Vector(r));
      unit.used_treated = r.GetBool();
      unit.used_donor = r.GetBool();
      run.units.emplace(name, std::move(unit));
    }
    const std::uint64_t estimate_count = r.GetU64();
    for (std::uint64_t k = 0; k < estimate_count && r.ok(); ++k) {
      EstimateEntry estimate;
      estimate.label = r.GetString();
      estimate.treated = r.GetString();
      const std::uint64_t donor_count = r.GetU64();
      if (!r.ok() || donor_count > r.remaining()) return false;
      for (std::uint64_t d = 0; d < donor_count && r.ok(); ++d) {
        estimate.donors.push_back(r.GetString());
      }
      estimate.effect = r.GetDouble();
      estimate.p_value = r.GetDouble();
      run.estimates.push_back(std::move(estimate));
    }
    run.empty_units = r.GetU64();
    run.event_count = r.GetU64();
    loaded.push_back(std::move(run));
  }
  if (!r.ok()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  runs_ = std::move(loaded);
  return true;
}

namespace {

/// Record/intent/fault/vantage composition of a set of units' panel cells.
struct Composition {
  std::uint64_t records = 0;
  std::uint64_t cells = 0;
  std::uint64_t digest = 0;
  std::map<std::string, std::uint64_t> intents;
  std::map<std::string, std::uint64_t> faults;
  std::map<std::string, std::uint64_t> vantages;
};

void WriteCountMap(core::json::Writer& w, const char* key,
                   const std::map<std::string, std::uint64_t>& counts) {
  w.Key(key);
  w.BeginObject();
  for (const auto& [name, count] : counts) {
    w.Key(name);
    w.UInt(count);
  }
  w.EndObject();
}

std::string DigestHex(std::uint64_t digest) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buffer);
}

void WriteComposition(core::json::Writer& w, const char* prefix,
                      const Composition& comp) {
  w.Key(std::string(prefix) + "_records");
  w.UInt(comp.records);
  w.Key(std::string(prefix) + "_cells");
  w.UInt(comp.cells);
  w.Key(std::string(prefix) + "_digest");
  w.String(DigestHex(comp.digest));
  WriteCountMap(w, (std::string(prefix) + "_intents").c_str(), comp.intents);
  WriteCountMap(w, (std::string(prefix) + "_faults").c_str(), comp.faults);
  WriteCountMap(w, (std::string(prefix) + "_vantages").c_str(),
                comp.vantages);
}

}  // namespace

std::string Lineage::ToJson(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  core::json::Writer w(indent);
  w.BeginObject();
  w.Key("schema");
  w.String("sisyphus.lineage/1");
  w.Key("stages");
  w.BeginArray();
  for (std::size_t s = 0; s < kLineageStageCount; ++s) {
    w.String(ToString(static_cast<LineageStage>(s)));
  }
  w.EndArray();
  w.Key("fault_bits");
  w.BeginArray();
  for (const char* name : kLineageFaultNames) w.String(name);
  w.EndArray();
  w.Key("runs");
  w.BeginArray();
  for (const RunLedger& run : runs_) {
    const std::vector<LineageStage> stages = ResolveStages(run);

    // Compose the per-unit composition lookup once per run.
    const auto compose = [&](const std::vector<std::string>& units) {
      Composition comp;
      std::string digest_bytes;
      for (const std::string& unit_name : units) {
        const auto it = run.units.find(unit_name);
        if (it == run.units.end() || it->second.dropped) continue;
        for (const CellEntry& cell : it->second.cells) {
          ++comp.cells;
          const std::uint64_t cell_digest = cell.ids.digest();
          digest_bytes.append(
              reinterpret_cast<const char*>(&cell_digest),
              sizeof(cell_digest));
          for (std::uint64_t id : cell.ids.Expand()) {
            if (id == 0 || id > run.records.size()) continue;
            const RecordEntry& entry = run.records[id - 1];
            ++comp.records;
            if (!entry.seen) continue;
            ++comp.intents[LineageIntentName(entry.intent)];
            ++comp.vantages[std::to_string(entry.vantage)];
            for (std::size_t bit = 0; bit < kLineageFaultNames.size();
                 ++bit) {
              if (entry.fault_mask & (1u << bit)) {
                ++comp.faults[kLineageFaultNames[bit]];
              }
            }
          }
        }
      }
      comp.digest = core::Fnv1a64(digest_bytes);
      return comp;
    };

    w.BeginObject();
    w.Key("label");
    w.String(run.label);

    // -- waterfall accounting (the conservation surface) --
    std::uint64_t emitted = 0, delivered = 0, quarantined = 0, archived = 0,
                  untracked = 0, failed = 0;
    std::array<std::uint64_t, kLineageStageCount> terminal{};
    for (std::size_t i = 0; i < run.records.size(); ++i) {
      const RecordEntry& entry = run.records[i];
      if (!entry.seen) {
        ++untracked;
        continue;
      }
      ++emitted;
      delivered += entry.copies;
      if (stages[i] == LineageStage::kQuarantined) {
        quarantined += entry.copies;
      } else {
        archived += entry.copies;
      }
      ++terminal[static_cast<std::size_t>(stages[i])];
    }
    for (const auto& [reason, count] : run.probe_failures) failed += count;
    std::uint64_t units_kept = 0, units_dropped = 0, cells_observed = 0,
                  cells_masked = 0;
    for (const auto& [name, unit] : run.units) {
      if (unit.dropped) {
        ++units_dropped;
      } else {
        ++units_kept;
      }
      cells_observed += unit.observed_cells;
      cells_masked += unit.masked_cells;
    }
    w.Key("waterfall");
    w.BeginObject();
    w.Key("probes_attempted");
    w.UInt(emitted + failed);
    w.Key("probes_failed");
    w.UInt(failed);
    WriteCountMap(w, "failure_reasons", run.probe_failures);
    w.Key("emitted");
    w.UInt(emitted);
    w.Key("delivered");
    w.UInt(delivered);
    w.Key("quarantined_copies");
    w.UInt(quarantined);
    w.Key("archived_copies");
    w.UInt(archived);
    w.Key("untracked");
    w.UInt(untracked);
    w.Key("terminal");
    w.BeginObject();
    for (std::size_t s = 0; s < kLineageStageCount; ++s) {
      w.Key(ToString(static_cast<LineageStage>(s)));
      w.UInt(terminal[s]);
    }
    w.EndObject();
    w.Key("panel");
    w.BeginObject();
    w.Key("units_kept");
    w.UInt(units_kept);
    w.Key("units_dropped");
    w.UInt(units_dropped);
    w.Key("units_empty");
    w.UInt(run.empty_units);
    w.Key("cells_observed");
    w.UInt(cells_observed);
    w.Key("cells_masked");
    w.UInt(cells_masked);
    w.EndObject();
    w.EndObject();

    // -- columnar per-record arrays (index = id - 1) --
    w.Key("records");
    w.BeginObject();
    w.Key("count");
    w.UInt(run.records.size());
    const auto column = [&](const char* key, auto&& get) {
      w.Key(key);
      w.BeginArray();
      for (std::size_t i = 0; i < run.records.size(); ++i) {
        w.UInt(get(run.records[i], stages[i]));
      }
      w.EndArray();
    };
    column("vantage", [](const RecordEntry& r, LineageStage) {
      return static_cast<std::uint64_t>(r.vantage);
    });
    column("intent", [](const RecordEntry& r, LineageStage) {
      return static_cast<std::uint64_t>(r.intent);
    });
    column("attempts", [](const RecordEntry& r, LineageStage) {
      return static_cast<std::uint64_t>(r.attempts);
    });
    column("fault_mask", [](const RecordEntry& r, LineageStage) {
      return static_cast<std::uint64_t>(r.fault_mask);
    });
    column("copies", [](const RecordEntry& r, LineageStage) {
      return static_cast<std::uint64_t>(r.copies);
    });
    column("stage", [](const RecordEntry&, LineageStage stage) {
      return static_cast<std::uint64_t>(stage);
    });
    w.EndObject();

    // -- panel units with per-cell id sets --
    w.Key("panel_units");
    w.BeginObject();
    for (const auto& [name, unit] : run.units) {
      w.Key(name);
      w.BeginObject();
      w.Key("dropped");
      w.Bool(unit.dropped);
      w.Key("missing_fraction");
      w.Double(unit.missing_fraction);
      w.Key("observed_cells");
      w.UInt(unit.observed_cells);
      w.Key("masked_cells");
      w.UInt(unit.masked_cells);
      w.Key("used_treated");
      w.Bool(unit.used_treated);
      w.Key("used_donor");
      w.Bool(unit.used_donor);
      if (unit.dropped) {
        w.Key("dropped_ids");
        w.BeginArray();
        for (std::uint64_t v : unit.dropped_ids.encoded()) w.UInt(v);
        w.EndArray();
      }
      w.Key("cells");
      w.BeginArray();
      for (const CellEntry& cell : unit.cells) {
        w.BeginObject();
        w.Key("period");
        w.UInt(cell.period);
        w.Key("count");
        w.UInt(cell.ids.size());
        w.Key("digest");
        w.String(DigestHex(cell.ids.digest()));
        w.Key("runs");
        w.BeginArray();
        for (std::uint64_t v : cell.ids.encoded()) w.UInt(v);
        w.EndArray();
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndObject();

    // -- estimates with resolved compositions --
    w.Key("estimates");
    w.BeginArray();
    for (const EstimateEntry& estimate : run.estimates) {
      w.BeginObject();
      w.Key("label");
      w.String(estimate.label);
      w.Key("treated");
      w.String(estimate.treated);
      w.Key("donors");
      w.BeginArray();
      for (const std::string& donor : estimate.donors) w.String(donor);
      w.EndArray();
      w.Key("effect");
      w.Double(estimate.effect);
      w.Key("p_value");
      w.Double(estimate.p_value);  // NaN serializes as null
      const Composition treated = compose({estimate.treated});
      const Composition donors = compose(estimate.donors);
      WriteComposition(w, "treated", treated);
      WriteComposition(w, "donor", donors);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

}  // namespace sisyphus::obs
