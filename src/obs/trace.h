// Scoped spans and timers emitting a Chrome-trace-format event stream
// (chrome://tracing / Perfetto "traceEvents" JSON).
//
// Two clocks coexist:
//  - wall-clock spans (steady_clock, microseconds since the tracer was
//    enabled) for performance work — these are intentionally NOT part of
//    the deterministic metrics snapshot;
//  - sim-time spans (simulated minutes, rendered on their own track) for
//    campaign phases: vantage outage windows, treatment epochs, the
//    campaign span itself.
//
// Disabled (the default), a ScopedSpan costs one flag check; the library
// never records events unless a bench or test opts in.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/sim_time.h"

namespace sisyphus::obs {

/// One complete ("ph":"X") Chrome trace event.
struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;   ///< wall µs since enable, or sim minutes
  std::int64_t dur_us = 0;  ///< same unit as ts_us
  bool sim_clock = false;   ///< true = sim-time track (tid 1)
};

/// Collects trace events; renders Chrome trace JSON.
class Tracer {
 public:
  static Tracer& Global();

  /// Turning the tracer on stamps the wall-clock epoch; events record
  /// microseconds since that point.
  void Enable(bool on);
  bool enabled() const { return enabled_; }
  void Clear();

  /// Records a finished wall-clock span.
  void RecordWallSpan(std::string_view name, std::string_view category,
                      std::chrono::steady_clock::time_point start,
                      std::chrono::steady_clock::time_point end);

  /// Records a sim-time span [start, end) on the sim track, in minutes.
  void RecordSimSpan(std::string_view name, std::string_view category,
                     core::SimTime start, core::SimTime end);

  /// Records an instant sim-time marker (zero duration).
  void RecordSimInstant(std::string_view name, std::string_view category,
                        core::SimTime at);

  /// Recorded events. Only safe while no parallel region is in flight
  /// (the Record* methods are mutex-guarded for the per-task spans emitted
  /// from pool worker threads; this accessor is not).
  const std::vector<TraceEvent>& events() const { return events_; }

  /// {"traceEvents": [...]} — wall spans on tid 0, sim spans on tid 1
  /// (sim "µs" are simulated minutes; the two tracks are separate so the
  /// unit mismatch cannot mislead).
  std::string ToChromeTraceJson(int indent = 0) const;

 private:
  bool enabled_ = false;
  std::chrono::steady_clock::time_point epoch_{};
  mutable std::mutex mu_;  // guards events_ against worker-thread appends
  std::vector<TraceEvent> events_;
};

/// RAII wall-clock span recorded into Tracer::Global() on destruction.
/// `name` and `category` must outlive the scope (string literals).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = "perf")
      : name_(name), category_(category) {
    if (Tracer::Global().enabled()) {
      armed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedSpan() {
    if (armed_) {
      Tracer::Global().RecordWallSpan(name_, category_, start_,
                                      std::chrono::steady_clock::now());
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Wall time elapsed so far, in milliseconds (0 when tracing is off —
  /// callers that need timing regardless should keep their own clock).
  double ElapsedMs() const {
    if (!armed_) return 0.0;
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  const char* name_;
  const char* category_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace sisyphus::obs
