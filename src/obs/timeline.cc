#include "obs/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/error.h"
#include "core/hash.h"
#include "core/logging.h"

namespace sisyphus::obs {

namespace internal {
bool g_timeline_enabled = false;
}  // namespace internal

namespace {

void AppendRawU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendRawU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PadTo8(std::string& out) {
  while (out.size() % 8 != 0) out.push_back('\0');
}

std::uint64_t ZigZag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t UnZigZag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

void AppendVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool ReadVarint(const std::string& data, std::size_t& pos,
                std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (pos < data.size() && shift < 64) {
    const std::uint8_t byte = static_cast<std::uint8_t>(data[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

void AppendRawDouble(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendRawU64(out, bits);
}

double ReadRawDouble(const char* p) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, p, sizeof(bits));
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ReadRawU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint32_t ReadRawU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::uint64_t LevelShiftConfig::Fingerprint() const {
  char text[160];
  std::snprintf(text, sizeof(text),
                "cusum alpha=%.6f drift=%.6f threshold=%.6f min_samples=%llu",
                ewma_alpha, drift, threshold,
                static_cast<unsigned long long>(min_samples));
  return core::Fnv1a64(text);
}

std::uint64_t ChurnConfig::Fingerprint() const {
  char text[64];
  std::snprintf(text, sizeof(text), "churn min_delta=%llu",
                static_cast<unsigned long long>(min_delta));
  return core::Fnv1a64(text);
}

// ---------------------------------------------------------------------------
// Timeline

Timeline& Timeline::Global() {
  static Timeline timeline;
  return timeline;
}

void Timeline::Enable(bool on) { internal::g_timeline_enabled = on; }

void Timeline::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  by_name_.clear();
  pending_.clear();
  events_.clear();
  committed_step_ = 0;
  first_step_ = 0;
  step_offset_ = 0;
}

std::uint32_t Timeline::DeclareLocked(std::string_view name, SeriesKind kind,
                                      DetectorKind detector,
                                      const LevelShiftConfig* shift,
                                      const ChurnConfig* churn) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  Series series;
  series.name = std::string(name);
  series.kind = kind;
  series.detector = detector;
  if (detector == DetectorKind::kLevelShift && shift != nullptr) {
    series.shift = *shift;
    series.fingerprint = series.shift.Fingerprint();
  } else if (detector == DetectorKind::kChurn && churn != nullptr) {
    series.churn = *churn;
    series.fingerprint = series.churn.Fingerprint();
  }
  const auto id = static_cast<std::uint32_t>(series_.size());
  by_name_.emplace(series.name, id);
  series_.push_back(std::move(series));
  return id;
}

std::uint32_t Timeline::DeclareCounter(std::string_view name,
                                       const ChurnConfig* churn) {
  std::lock_guard<std::mutex> lock(mu_);
  return DeclareLocked(name, SeriesKind::kCounter,
                       churn != nullptr ? DetectorKind::kChurn
                                        : DetectorKind::kNone,
                       nullptr, churn);
}

std::uint32_t Timeline::DeclareGauge(std::string_view name,
                                     const LevelShiftConfig* shift) {
  std::lock_guard<std::mutex> lock(mu_);
  return DeclareLocked(name, SeriesKind::kGauge,
                       shift != nullptr ? DetectorKind::kLevelShift
                                        : DetectorKind::kNone,
                       shift, nullptr);
}

std::uint32_t Timeline::DeclareRunningMean(std::string_view name,
                                           const LevelShiftConfig* shift) {
  std::lock_guard<std::mutex> lock(mu_);
  return DeclareLocked(name, SeriesKind::kRunningMean,
                       shift != nullptr ? DetectorKind::kLevelShift
                                        : DetectorKind::kNone,
                       shift, nullptr);
}

std::uint64_t Timeline::AbsoluteStepLocked(std::uint64_t step) {
  std::uint64_t abs = step + step_offset_;
  if (abs <= committed_step_ && pending_.empty()) {
    // A step at or below the last commit with nothing in flight means a
    // new campaign started in this process: offset it to stay monotone.
    step_offset_ = committed_step_ - step + 1;
    abs = step + step_offset_;
  }
  return abs;
}

Timeline::PendingStep& Timeline::PendingLocked(std::uint64_t abs_step) {
  return pending_[abs_step];
}

void Timeline::SampleCounter(std::uint64_t step, std::uint32_t series,
                             std::uint64_t value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t abs = AbsoluteStepLocked(step);
  if (abs <= committed_step_ || series >= series_.size()) return;
  PendingLocked(abs).samples[series] = SampleValue{value, 0.0};
}

void Timeline::SampleGauge(std::uint64_t step, std::uint32_t series,
                           double value) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t abs = AbsoluteStepLocked(step);
  if (abs <= committed_step_ || series >= series_.size()) return;
  PendingLocked(abs).samples[series] = SampleValue{0, value};
}

void Timeline::SampleRunningMean(std::uint64_t step, std::uint32_t series,
                                 std::uint64_t count, double sum) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t abs = AbsoluteStepLocked(step);
  if (abs <= committed_step_ || series >= series_.size()) return;
  PendingLocked(abs).samples[series] = SampleValue{count, sum};
}

void Timeline::ClosePhase(std::uint64_t step, Phase phase) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t abs = AbsoluteStepLocked(step);
  if (abs <= committed_step_) return;
  PendingStep& pending = PendingLocked(abs);
  if (phase == Phase::kProduce) {
    pending.produce_closed = true;
  } else {
    pending.ingest_closed = true;
  }
  CommitReadyLocked();
}

void Timeline::CommitReadyLocked() {
  while (!pending_.empty()) {
    auto front = pending_.begin();
    if (!front->second.produce_closed || !front->second.ingest_closed) {
      return;
    }
    // Steps arrive sequentially, so the smallest both-phases-closed entry
    // is always the next step in order.
    SISYPHUS_REQUIRE(
        committed_step_ == 0 || front->first == committed_step_ + 1,
        "Timeline: non-contiguous step commit");
    CommitStepLocked(front->first, front->second);
    pending_.erase(front);
  }
}

void Timeline::RunLevelShiftLocked(std::uint64_t abs_step, std::uint32_t id,
                                   Series& series, double x) {
  const LevelShiftConfig& config = series.shift;
  if (!series.det_armed) {
    series.det_armed = true;
    series.det_mu = x;
    series.det_n = 1;
    series.det_s_pos = 0.0;
    series.det_s_neg = 0.0;
    return;
  }
  if (series.det_n >= config.min_samples) {
    series.det_s_pos =
        std::max(0.0, series.det_s_pos + (x - series.det_mu) - config.drift);
    series.det_s_neg =
        std::max(0.0, series.det_s_neg + (series.det_mu - x) - config.drift);
    if (series.det_s_pos > config.threshold ||
        series.det_s_neg > config.threshold) {
      DetectionEvent event;
      event.step = abs_step;
      event.series = id;
      event.direction = series.det_s_pos > config.threshold ? 1 : -1;
      event.magnitude = std::abs(x - series.det_mu);
      event.fingerprint = series.fingerprint;
      events_.push_back(event);
      // Re-center on the new level and restart accumulation.
      series.det_mu = x;
      series.det_n = 1;
      series.det_s_pos = 0.0;
      series.det_s_neg = 0.0;
      return;
    }
  }
  series.det_mu += config.ewma_alpha * (x - series.det_mu);
  ++series.det_n;
}

void Timeline::CommitStepLocked(std::uint64_t abs_step, PendingStep& pending) {
  // samples is an ordered map, so detector evaluation (and therefore event
  // order within the step) is by ascending series id.
  for (const auto& [id, sample] : pending.samples) {
    Series& series = series_[id];
    if (series.first_step == 0) series.first_step = abs_step;
    switch (series.kind) {
      case SeriesKind::kCounter: {
        const std::uint64_t value = sample.u;
        AppendVarint(series.data,
                     ZigZag(static_cast<std::int64_t>(value) -
                            static_cast<std::int64_t>(series.last_counter)));
        series.last_counter = value;
        ++series.sample_count;
        if (series.detector == DetectorKind::kChurn) {
          const std::uint64_t delta =
              value >= series.prev_value ? value - series.prev_value : 0;
          if (delta >= series.churn.min_delta) {
            DetectionEvent event;
            event.step = abs_step;
            event.series = id;
            event.direction = 1;
            event.magnitude = static_cast<double>(delta);
            event.fingerprint = series.fingerprint;
            events_.push_back(event);
          }
          series.prev_value = value;
        }
        break;
      }
      case SeriesKind::kGauge: {
        AppendRawDouble(series.data, sample.d);
        series.last_gauge = sample.d;
        ++series.sample_count;
        if (series.detector == DetectorKind::kLevelShift) {
          RunLevelShiftLocked(abs_step, id, series, sample.d);
        }
        break;
      }
      case SeriesKind::kRunningMean: {
        const std::uint64_t count = sample.u;
        const double sum = sample.d;
        const double mean =
            count > 0 ? sum / static_cast<double>(count) : 0.0;
        AppendRawDouble(series.data, mean);
        series.last_gauge = mean;
        ++series.sample_count;
        if (series.detector == DetectorKind::kLevelShift &&
            count > series.prev_count) {
          const double increment =
              (sum - series.prev_sum) /
              static_cast<double>(count - series.prev_count);
          RunLevelShiftLocked(abs_step, id, series, increment);
        }
        series.prev_count = count;
        series.prev_sum = sum;
        break;
      }
    }
  }
  // Dense fill: a declared series with no sample this step repeats its
  // last value (counters: zero delta) so step attribution stays implicit
  // (first_step + index) for every series.
  for (std::size_t id = 0; id < series_.size(); ++id) {
    Series& series = series_[id];
    if (series.first_step == 0) continue;
    if (pending.samples.count(static_cast<std::uint32_t>(id)) != 0) continue;
    if (series.kind == SeriesKind::kCounter) {
      AppendVarint(series.data, ZigZag(0));
    } else {
      AppendRawDouble(series.data, series.last_gauge);
    }
    ++series.sample_count;
  }
  if (first_step_ == 0) first_step_ = abs_step;
  committed_step_ = abs_step;
}

Timeline::Summary Timeline::GetSummary() const {
  std::lock_guard<std::mutex> lock(mu_);
  Summary summary;
  summary.steps =
      committed_step_ == 0 ? 0 : committed_step_ - first_step_ + 1;
  summary.first_step = first_step_;
  summary.last_step = committed_step_;
  summary.series = series_.size();
  for (const Series& series : series_) {
    summary.samples += series.sample_count;
  }
  summary.events = events_.size();
  for (const DetectionEvent& event : events_) {
    const Series& series = series_[event.series];
    if (series.detector == DetectorKind::kLevelShift) {
      ++summary.level_shift_events;
    } else if (series.detector == DetectorKind::kChurn) {
      ++summary.churn_events;
    }
  }
  return summary;
}

std::vector<DetectionEvent> Timeline::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Timeline::BuildArtifact() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string file(kTimelineHeaderSize, '\0');
  struct Entry {
    std::uint64_t kind, run, offset, size, checksum;
  };
  std::vector<Entry> table;
  const auto add_section = [&](TimelineSectionKind kind, std::uint64_t run,
                               const std::string& payload) {
    PadTo8(file);
    Entry entry;
    entry.kind = static_cast<std::uint64_t>(kind);
    entry.run = run;
    entry.offset = file.size();
    entry.size = payload.size();
    entry.checksum = core::Fnv1a64(payload);
    table.push_back(entry);
    file += payload;
  };

  {
    core::binio::Writer meta;
    meta.PutString(kTimelineSchema);
    meta.PutU64(committed_step_ == 0 ? 0
                                     : committed_step_ - first_step_ + 1);
    meta.PutU64(first_step_);
    meta.PutU64(committed_step_);
    meta.PutU64(series_.size());
    meta.PutU64(events_.size());
    for (const Series& series : series_) {
      meta.PutString(series.name);
      meta.PutU8(static_cast<std::uint8_t>(series.kind));
      meta.PutU8(static_cast<std::uint8_t>(series.detector));
      meta.PutU64(series.fingerprint);
      meta.PutU64(series.first_step);
      meta.PutU64(series.sample_count);
      if (series.detector == DetectorKind::kLevelShift) {
        meta.PutDouble(series.shift.ewma_alpha);
        meta.PutDouble(series.shift.drift);
        meta.PutDouble(series.shift.threshold);
        meta.PutU64(series.shift.min_samples);
      } else if (series.detector == DetectorKind::kChurn) {
        meta.PutU64(series.churn.min_delta);
      }
    }
    add_section(TimelineSectionKind::kMeta, kTimelineGlobalRun,
                std::move(meta).Take());
  }
  for (std::size_t id = 0; id < series_.size(); ++id) {
    add_section(TimelineSectionKind::kSeries, id, series_[id].data);
  }
  {
    core::binio::Writer events;
    events.PutU64(events_.size());
    for (const DetectionEvent& event : events_) {
      events.PutU64(event.step);
      events.PutU32(event.series);
      events.PutI64(event.direction);
      events.PutDouble(event.magnitude);
      events.PutU64(event.fingerprint);
    }
    add_section(TimelineSectionKind::kEvents, kTimelineGlobalRun,
                std::move(events).Take());
  }

  PadTo8(file);
  const std::uint64_t table_offset = file.size();
  std::string table_bytes;
  table_bytes.reserve(table.size() * kTimelineTableEntrySize);
  for (const Entry& entry : table) {
    AppendRawU64(table_bytes, entry.kind);
    AppendRawU64(table_bytes, entry.run);
    AppendRawU64(table_bytes, entry.offset);
    AppendRawU64(table_bytes, entry.size);
    AppendRawU64(table_bytes, entry.checksum);
  }
  file += table_bytes;
  AppendRawU64(file, core::Fnv1a64(table_bytes));

  std::string header;
  header.append(kTimelineMagic, sizeof(kTimelineMagic));
  AppendRawU32(header, kTimelineVersion);
  AppendRawU32(header, 0);  // flags
  AppendRawU64(header, table.size());
  AppendRawU64(header, table_offset);
  AppendRawU64(header, file.size());
  AppendRawU64(header, core::Fnv1a64(header));
  std::memcpy(file.data(), header.data(), header.size());
  return file;
}

void Timeline::Save(core::binio::Writer& w) const {
  std::lock_guard<std::mutex> lock(mu_);
  SISYPHUS_REQUIRE(pending_.empty(),
                   "Timeline::Save: partial step in flight at snapshot");
  w.PutU64(committed_step_);
  w.PutU64(first_step_);
  w.PutU64(step_offset_);
  w.PutU64(series_.size());
  for (const Series& series : series_) {
    w.PutString(series.name);
    w.PutU8(static_cast<std::uint8_t>(series.kind));
    w.PutU8(static_cast<std::uint8_t>(series.detector));
    w.PutDouble(series.shift.ewma_alpha);
    w.PutDouble(series.shift.drift);
    w.PutDouble(series.shift.threshold);
    w.PutU64(series.shift.min_samples);
    w.PutU64(series.churn.min_delta);
    w.PutU64(series.fingerprint);
    w.PutU64(series.first_step);
    w.PutU64(series.sample_count);
    w.PutString(series.data);
    w.PutU64(series.last_counter);
    w.PutDouble(series.last_gauge);
    w.PutU64(series.prev_count);
    w.PutDouble(series.prev_sum);
    w.PutBool(series.det_armed);
    w.PutDouble(series.det_mu);
    w.PutDouble(series.det_s_pos);
    w.PutDouble(series.det_s_neg);
    w.PutU64(series.det_n);
    w.PutU64(series.prev_value);
  }
  w.PutU64(events_.size());
  for (const DetectionEvent& event : events_) {
    w.PutU64(event.step);
    w.PutU32(event.series);
    w.PutI64(event.direction);
    w.PutDouble(event.magnitude);
    w.PutU64(event.fingerprint);
  }
}

bool Timeline::Load(core::binio::Reader& r) {
  std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
  by_name_.clear();
  pending_.clear();
  events_.clear();
  committed_step_ = r.GetU64();
  first_step_ = r.GetU64();
  step_offset_ = r.GetU64();
  const std::uint64_t series_count = r.GetU64();
  for (std::uint64_t i = 0; i < series_count && r.ok(); ++i) {
    Series series;
    series.name = r.GetString();
    series.kind = static_cast<SeriesKind>(r.GetU8());
    series.detector = static_cast<DetectorKind>(r.GetU8());
    series.shift.ewma_alpha = r.GetDouble();
    series.shift.drift = r.GetDouble();
    series.shift.threshold = r.GetDouble();
    series.shift.min_samples = r.GetU64();
    series.churn.min_delta = r.GetU64();
    series.fingerprint = r.GetU64();
    series.first_step = r.GetU64();
    series.sample_count = r.GetU64();
    series.data = r.GetString();
    series.last_counter = r.GetU64();
    series.last_gauge = r.GetDouble();
    series.prev_count = r.GetU64();
    series.prev_sum = r.GetDouble();
    series.det_armed = r.GetBool();
    series.det_mu = r.GetDouble();
    series.det_s_pos = r.GetDouble();
    series.det_s_neg = r.GetDouble();
    series.det_n = r.GetU64();
    series.prev_value = r.GetU64();
    if (!r.ok()) return false;
    by_name_.emplace(series.name, static_cast<std::uint32_t>(series_.size()));
    series_.push_back(std::move(series));
  }
  const std::uint64_t event_count = r.GetU64();
  if (!r.ok() || event_count > r.remaining() / 36) return false;
  events_.reserve(event_count);
  for (std::uint64_t i = 0; i < event_count && r.ok(); ++i) {
    DetectionEvent event;
    event.step = r.GetU64();
    event.series = r.GetU32();
    event.direction = static_cast<std::int32_t>(r.GetI64());
    event.magnitude = r.GetDouble();
    event.fingerprint = r.GetU64();
    events_.push_back(event);
  }
  return r.ok();
}

// ---------------------------------------------------------------------------
// TimelineReader

bool TimelineReader::Parse(std::string bytes, std::string* error) {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  bytes_ = std::move(bytes);
  if (bytes_.size() < kTimelineHeaderSize) return fail("file too small");
  if (std::memcmp(bytes_.data(), kTimelineMagic, sizeof(kTimelineMagic)) !=
      0) {
    return fail("bad magic (not a timeline.bin)");
  }
  const char* header = bytes_.data();
  const std::uint32_t version = ReadRawU32(header + 8);
  if (version != kTimelineVersion) {
    return fail("unsupported version " + std::to_string(version));
  }
  const std::uint64_t section_count = ReadRawU64(header + 16);
  const std::uint64_t table_offset = ReadRawU64(header + 24);
  const std::uint64_t file_size = ReadRawU64(header + 32);
  const std::uint64_t header_checksum = ReadRawU64(header + 40);
  if (core::Fnv1a64(std::string_view(header, 40)) != header_checksum) {
    return fail("header checksum mismatch");
  }
  if (file_size != bytes_.size()) {
    return fail("file size mismatch (truncated or padded)");
  }
  const std::uint64_t table_bytes =
      section_count * kTimelineTableEntrySize;
  if (table_offset + table_bytes + 8 != bytes_.size()) {
    return fail("section table does not close the file");
  }
  const std::string_view table(bytes_.data() + table_offset, table_bytes);
  if (core::Fnv1a64(table) != ReadRawU64(bytes_.data() + table_offset +
                                         table_bytes)) {
    return fail("table checksum mismatch");
  }

  std::uint64_t meta_offset = 0;
  std::uint64_t meta_size = 0;
  std::uint64_t events_offset = 0;
  std::uint64_t events_size = 0;
  bool have_meta = false;
  bool have_events = false;
  std::vector<std::pair<std::uint64_t, std::pair<std::uint64_t,
                                                 std::uint64_t>>>
      series_sections;  // (run, (offset, size))
  for (std::uint64_t i = 0; i < section_count; ++i) {
    const char* entry =
        bytes_.data() + table_offset + i * kTimelineTableEntrySize;
    const std::uint64_t kind = ReadRawU64(entry);
    const std::uint64_t run = ReadRawU64(entry + 8);
    const std::uint64_t offset = ReadRawU64(entry + 16);
    const std::uint64_t size = ReadRawU64(entry + 24);
    const std::uint64_t checksum = ReadRawU64(entry + 32);
    if (offset + size > table_offset) {
      return fail("section " + std::to_string(i) + " overruns the table");
    }
    if (core::Fnv1a64(std::string_view(bytes_.data() + offset, size)) !=
        checksum) {
      return fail("section " + std::to_string(i) + " checksum mismatch");
    }
    switch (static_cast<TimelineSectionKind>(kind)) {
      case TimelineSectionKind::kMeta:
        have_meta = true;
        meta_offset = offset;
        meta_size = size;
        break;
      case TimelineSectionKind::kSeries:
        series_sections.push_back({run, {offset, size}});
        break;
      case TimelineSectionKind::kEvents:
        have_events = true;
        events_offset = offset;
        events_size = size;
        break;
      default:
        break;  // unknown kinds are skipped (forward compatibility)
    }
  }
  if (!have_meta) return fail("missing meta section");
  if (!have_events) return fail("missing events section");

  core::binio::Reader meta(
      std::string_view(bytes_.data() + meta_offset, meta_size));
  const std::string schema = meta.GetString();
  if (schema != kTimelineSchema) return fail("bad schema '" + schema + "'");
  steps_ = meta.GetU64();
  first_step_ = meta.GetU64();
  last_step_ = meta.GetU64();
  const std::uint64_t series_count = meta.GetU64();
  const std::uint64_t event_count = meta.GetU64();
  if (!meta.ok()) return fail("meta section truncated");
  if (steps_ != (last_step_ == 0 ? 0 : last_step_ - first_step_ + 1)) {
    return fail("meta step range inconsistent with step count");
  }
  series_.clear();
  for (std::uint64_t i = 0; i < series_count; ++i) {
    TimelineSeriesView view;
    view.id = static_cast<std::uint32_t>(i);
    view.name = meta.GetString();
    view.kind = static_cast<SeriesKind>(meta.GetU8());
    view.detector = static_cast<DetectorKind>(meta.GetU8());
    view.fingerprint = meta.GetU64();
    view.first_step = meta.GetU64();
    view.sample_count = meta.GetU64();
    if (view.detector == DetectorKind::kLevelShift) {
      view.shift.ewma_alpha = meta.GetDouble();
      view.shift.drift = meta.GetDouble();
      view.shift.threshold = meta.GetDouble();
      view.shift.min_samples = meta.GetU64();
    } else if (view.detector == DetectorKind::kChurn) {
      view.churn.min_delta = meta.GetU64();
    }
    if (!meta.ok()) return fail("meta series table truncated");
    // Sampled series must be dense through the last committed step.
    if (view.first_step != 0 &&
        view.first_step + view.sample_count - 1 != last_step_) {
      return fail("series '" + view.name + "' is not dense to the last step");
    }
    series_.push_back(std::move(view));
  }
  if (series_sections.size() != series_.size()) {
    return fail("series section count disagrees with meta");
  }
  series_payload_.assign(series_.size(), {0, 0});
  std::vector<bool> seen(series_.size(), false);
  for (const auto& [run, span] : series_sections) {
    if (run >= series_.size() || seen[run]) {
      return fail("series section run id invalid or duplicated");
    }
    seen[run] = true;
    series_payload_[run] = span;
  }

  core::binio::Reader ev(
      std::string_view(bytes_.data() + events_offset, events_size));
  const std::uint64_t declared_events = ev.GetU64();
  if (!ev.ok() || declared_events != event_count) {
    return fail("events section count disagrees with meta");
  }
  events_.clear();
  std::uint64_t prev_step = 0;
  for (std::uint64_t i = 0; i < declared_events; ++i) {
    DetectionEvent event;
    event.step = ev.GetU64();
    event.series = ev.GetU32();
    event.direction = static_cast<std::int32_t>(ev.GetI64());
    event.magnitude = ev.GetDouble();
    event.fingerprint = ev.GetU64();
    if (!ev.ok()) return fail("events section truncated");
    if (event.step < prev_step) return fail("events not step-ordered");
    prev_step = event.step;
    if (event.series >= series_.size()) {
      return fail("event references unknown series " +
                  std::to_string(event.series));
    }
    const TimelineSeriesView& owner = series_[event.series];
    if (event.fingerprint != owner.fingerprint) {
      return fail("event fingerprint disagrees with series '" + owner.name +
                  "'");
    }
    if (event.step < owner.first_step || event.step > last_step_) {
      return fail("event step outside series '" + owner.name + "' range");
    }
    events_.push_back(event);
  }
  if (ev.remaining() != 0) return fail("trailing bytes in events section");
  return true;
}

bool TimelineReader::OpenFile(const std::string& path, std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::string bytes;
  char buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    bytes.append(buffer, n);
  }
  const bool read_ok = std::ferror(file) == 0;
  std::fclose(file);
  if (!read_ok) {
    if (error != nullptr) *error = "read error on " + path;
    return false;
  }
  return Parse(std::move(bytes), error);
}

const TimelineSeriesView* TimelineReader::FindSeries(
    std::string_view name) const {
  for (const TimelineSeriesView& view : series_) {
    if (view.name == name) return &view;
  }
  return nullptr;
}

bool TimelineReader::SeriesValues(std::uint32_t id, std::vector<double>* out,
                                  std::string* error) const {
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what;
    return false;
  };
  if (id >= series_.size()) return fail("no series " + std::to_string(id));
  const TimelineSeriesView& view = series_[id];
  const auto [offset, size] = series_payload_[id];
  out->clear();
  out->reserve(view.sample_count);
  if (view.kind == SeriesKind::kCounter) {
    const std::string data(bytes_.data() + offset, size);
    std::size_t pos = 0;
    std::int64_t value = 0;
    for (std::uint64_t i = 0; i < view.sample_count; ++i) {
      std::uint64_t raw = 0;
      if (!ReadVarint(data, pos, &raw)) {
        return fail("series '" + view.name + "' delta stream truncated");
      }
      value += UnZigZag(raw);
      out->push_back(static_cast<double>(value));
    }
    if (pos != data.size()) {
      return fail("series '" + view.name + "' has trailing bytes");
    }
  } else {
    if (size != view.sample_count * 8) {
      return fail("series '" + view.name + "' payload size mismatch");
    }
    for (std::uint64_t i = 0; i < view.sample_count; ++i) {
      out->push_back(ReadRawDouble(bytes_.data() + offset + i * 8));
    }
  }
  return true;
}

bool TimelineReader::ValuesAt(
    std::uint64_t step, std::vector<std::pair<std::uint32_t, double>>* out,
    std::string* error) const {
  out->clear();
  for (const TimelineSeriesView& view : series_) {
    if (view.first_step == 0 || step < view.first_step || step > last_step_) {
      continue;
    }
    std::vector<double> values;
    if (!SeriesValues(view.id, &values, error)) return false;
    out->push_back({view.id, values[step - view.first_step]});
  }
  return true;
}

// ---------------------------------------------------------------------------

bool WriteTimelineArtifact(const std::string& dir) {
  namespace fs = std::filesystem;
  const std::string bytes = Timeline::Global().BuildArtifact();
  const fs::path path = fs::path(dir) / "timeline.bin";
  const fs::path tmp = fs::path(dir) / "timeline.bin.tmp";
  std::FILE* file = std::fopen(tmp.string().c_str(), "wb");
  if (file == nullptr) {
    core::LogLine(core::LogLevel::kWarn, "timeline: cannot open for write",
                  {{"path", tmp.string()}});
    return false;
  }
  const std::size_t written =
      std::fwrite(bytes.data(), 1, bytes.size(), file);
  const bool ok = written == bytes.size() && std::fclose(file) == 0;
  if (!ok) {
    core::LogLine(core::LogLevel::kWarn, "timeline: short write",
                  {{"path", tmp.string()}});
    return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    core::LogLine(core::LogLevel::kWarn, "timeline: rename failed",
                  {{"path", path.string()}, {"why", ec.message()}});
    return false;
  }
  return true;
}

}  // namespace sisyphus::obs
