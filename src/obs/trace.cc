#include "obs/trace.h"

#include "core/json.h"

namespace sisyphus::obs {

Tracer& Tracer::Global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Enable(bool on) {
  if (on && !enabled_) epoch_ = std::chrono::steady_clock::now();
  enabled_ = on;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void Tracer::RecordWallSpan(std::string_view name, std::string_view category,
                            std::chrono::steady_clock::time_point start,
                            std::chrono::steady_clock::time_point end) {
  if (!enabled_) return;
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.ts_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    start - epoch_)
                    .count();
  event.dur_us =
      std::chrono::duration_cast<std::chrono::microseconds>(end - start)
          .count();
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::RecordSimSpan(std::string_view name, std::string_view category,
                           core::SimTime start, core::SimTime end) {
  if (!enabled_) return;
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.ts_us = start.minutes();
  event.dur_us = (end - start).minutes();
  event.sim_clock = true;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::RecordSimInstant(std::string_view name,
                              std::string_view category, core::SimTime at) {
  RecordSimSpan(name, category, at, at);
}

std::string Tracer::ToChromeTraceJson(int indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  core::json::Writer w(indent);
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (const TraceEvent& event : events_) {
    w.BeginObject();
    w.Key("name");
    w.String(event.name);
    w.Key("cat");
    w.String(event.category);
    w.Key("ph");
    w.String("X");
    w.Key("ts");
    w.Int(event.ts_us);
    w.Key("dur");
    w.Int(event.dur_us);
    w.Key("pid");
    w.Int(0);
    // tid 1 = sim-time track (ts in simulated minutes), tid 0 = wall µs.
    w.Key("tid");
    w.Int(event.sim_clock ? 1 : 0);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

}  // namespace sisyphus::obs
