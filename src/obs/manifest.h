// RunManifest: machine-readable provenance for one experiment run —
// seeds, config hashes, option key/values, per-phase timings, and the
// final metric snapshot — written as manifest.json next to metrics.json
// and trace.json (the `--obs-out <dir>` artifact trio).
//
// The manifest is the *non*-deterministic artifact (it carries wall-clock
// phase timings); metrics.json is the deterministic one. obscheck and the
// schema test validate both (schema sisyphus.run_manifest/1).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/result.h"
#include "obs/lineage.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sisyphus::obs {

/// One named phase of a run with wall-clock duration and (optionally) the
/// simulated time span it covered. sim_start/end < 0 = no sim span.
struct PhaseTiming {
  std::string name;
  double wall_ms = 0.0;
  std::int64_t sim_start_min = -1;
  std::int64_t sim_end_min = -1;
};

/// Checkpoint/journal provenance for a durable streaming run (DESIGN.md
/// §11). Serialized as the manifest's "durable" object when enabled;
/// obscheck validates the invariants (journal_high_water >= snapshot_seq).
struct DurableInfo {
  bool enabled = false;
  bool resumed = false;   ///< run restored from a snapshot + journal tail
  bool partial = false;   ///< interrupted (SIGINT/SIGTERM) before completion
  std::uint64_t snapshot_seq = 0;        ///< last snapshot's step number
  std::uint64_t journal_high_water = 0;  ///< last journaled step number
  std::uint64_t journal_entries = 0;     ///< frames appended this process
  std::uint64_t shed_records = 0;        ///< records shed on overload
};

/// Telemetry-timeline rollup (DESIGN.md §15). Serialized as the
/// manifest's "timeline" object when enabled; the full per-step record is
/// timeline.bin, this block is the at-a-glance trigger summary the
/// conditional-activation control plane (ROADMAP item 2) reads first.
struct TimelineInfo {
  bool enabled = false;
  std::uint64_t steps = 0;
  std::uint64_t first_step = 0;
  std::uint64_t last_step = 0;
  std::uint64_t series = 0;
  std::uint64_t samples = 0;
  std::uint64_t events = 0;
  std::uint64_t level_shift_events = 0;
  std::uint64_t churn_events = 0;
};

struct RunManifest {
  std::string tool;    ///< binary/experiment name, e.g. "table1_ixp_synth_control"
  std::string schema = "sisyphus.run_manifest/1";
  std::uint64_t seed = 0;
  /// FNV-1a fingerprints of the run's configuration (empty = not
  /// applicable); see core::Fnv1a64Hex.
  std::string scenario_hash;
  std::string fault_plan_hash;
  /// Flat key/value option dump (platform options, CLI flags...),
  /// serialized in insertion order.
  std::vector<std::pair<std::string, std::string>> options;
  std::vector<PhaseTiming> phases;
  DurableInfo durable;    ///< serialized only when durable.enabled
  TimelineInfo timeline;  ///< serialized only when timeline.enabled

  void AddOption(std::string key, std::string value) {
    options.emplace_back(std::move(key), std::move(value));
  }
  void AddPhase(std::string name, double wall_ms,
                std::int64_t sim_start_min = -1,
                std::int64_t sim_end_min = -1) {
    phases.push_back({std::move(name), wall_ms, sim_start_min, sim_end_min});
  }

  /// Manifest JSON including the registry's metric snapshot under
  /// "metrics" (so the manifest alone is a complete run record).
  std::string ToJson(const Registry& metrics, int indent = 2) const;
};

/// RAII phase timer: measures wall time from construction to Stop() (or
/// destruction), appends a PhaseTiming to the manifest, and mirrors the
/// span into the tracer. Independent of Tracer::enabled() — manifests
/// always carry phase timings.
class ScopedPhase {
 public:
  ScopedPhase(RunManifest& manifest, std::string name);
  ~ScopedPhase();
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  /// Attaches the simulated time span this phase covered.
  void SetSimSpan(core::SimTime start, core::SimTime end);

  /// Finishes the phase early (idempotent).
  void Stop();

 private:
  RunManifest& manifest_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::int64_t sim_start_min_ = -1;
  std::int64_t sim_end_min_ = -1;
  bool stopped_ = false;
};

/// Writes the artifact trio — manifest.json, metrics.json, trace.json —
/// into `directory` (which must exist). kInvalidArgument when a file
/// cannot be opened.
core::Status WriteRunArtifacts(const std::string& directory,
                               const RunManifest& manifest,
                               const Registry& metrics, const Tracer& tracer);

/// Quartet overload: additionally writes lineage.json (the fourth,
/// deterministic artifact; byte-identical at any SISYPHUS_THREADS).
core::Status WriteRunArtifacts(const std::string& directory,
                               const RunManifest& manifest,
                               const Registry& metrics, const Tracer& tracer,
                               const Lineage& lineage);

}  // namespace sisyphus::obs
