// Deterministic per-step telemetry timeline with online change-point
// detection (DESIGN.md §15). Where metrics.json is a campaign-final
// snapshot, the timeline records the run as a *process*: at every committed
// step boundary a declared set of series — stream gauges, `netsim.bgp.*`
// reconvergence counters, per-unit RTT running means from the incremental
// panel builder — is sampled into columnar series buffers that are a pure
// function of committed state, so `timeline.bin` is byte-identical at any
// SISYPHUS_THREADS and across a kill/resume (timeline state rides in the
// durable snapshot like the registry and the ledger).
//
// On top of the series run online detectors: an EWMA-referenced CUSUM
// level-shift detector (per-unit RTT means) and a route-churn detector
// (per-step deltas of BGP invalidation counters). Each firing appends a
// DetectionEvent — step, series, direction, magnitude, and the FNV-1a
// fingerprint of the detector config that fired — which is exactly the
// trigger input the conditional-activation control plane (ROADMAP item 2)
// consumes.
//
// Layering: like the lineage ledger, the timeline speaks in primitives
// (names, counters, gauges, running sums); the sampling glue that knows
// about platforms and panel builders lives in src/measure.
//
// Threading: samples for one step may arrive from two threads (the
// pipelined durable loop generates on the producer and ingests on a
// consumer), so a step commits in two phases — kProduce (counters/gauges
// read at the generation boundary) and kIngest (panel-builder reads after
// the step's batch landed). All state is mutex-guarded; steps commit in
// order once both phases close, so series contents and detector decisions
// never depend on thread interleaving.
#ifndef SISYPHUS_OBS_TIMELINE_H_
#define SISYPHUS_OBS_TIMELINE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/binio.h"

namespace sisyphus::obs {

namespace internal {
extern bool g_timeline_enabled;
}  // namespace internal

// ---------------------------------------------------------------------------
// Detector configs. Fingerprint() is an FNV-1a digest of the canonical
// parameter rendering; it is stamped into every event the detector emits so
// a consumer can tell which configuration produced a trigger.

/// EWMA-referenced two-sided CUSUM: the reference mean `mu` adapts with
/// rate `ewma_alpha`; each input x accumulates S+ = max(0, S+ + (x - mu) -
/// drift) and S- symmetrically; when either side exceeds `threshold` the
/// detector fires (direction = sign), re-centers mu on x, and resets both
/// sides. The first `min_samples` inputs only warm the reference.
struct LevelShiftConfig {
  double ewma_alpha = 0.05;
  double drift = 1.0;       ///< per-sample slack, in value units
  double threshold = 8.0;   ///< CUSUM firing bar, in value units
  std::uint64_t min_samples = 8;
  std::uint64_t Fingerprint() const;
};

/// Route-churn detector on a monotone counter series: fires whenever the
/// per-step delta reaches `min_delta` (magnitude = the delta).
struct ChurnConfig {
  std::uint64_t min_delta = 1;
  std::uint64_t Fingerprint() const;
};

enum class SeriesKind : std::uint8_t {
  kCounter = 0,      ///< monotone u64, stored as zigzag-varint deltas
  kGauge = 1,        ///< double, stored raw
  kRunningMean = 2,  ///< double mean of a growing sample; stored raw.
                     ///< The detector watches the per-step increment mean.
};

enum class DetectorKind : std::uint8_t {
  kNone = 0,
  kLevelShift = 1,
  kChurn = 2,
};

/// One detector firing. `direction` is +1 (up-shift / churn) or -1
/// (down-shift); `magnitude` is the estimated level change (level-shift)
/// or the counter delta (churn); `fingerprint` identifies the config.
struct DetectionEvent {
  std::uint64_t step = 0;
  std::uint32_t series = 0;
  std::int32_t direction = 0;
  double magnitude = 0.0;
  std::uint64_t fingerprint = 0;
};

// ---------------------------------------------------------------------------
// Artifact constants (timeline.bin) — same framing as audit.bin
// (src/audit/format.h): 48-byte header, 8-byte-aligned FNV-1a-checksummed
// sections, 40-byte table entries, trailing table checksum.

inline constexpr char kTimelineMagic[8] = {'S', 'I', 'S', 'Y',
                                          'T', 'M', 'L', '1'};
inline constexpr std::uint32_t kTimelineVersion = 1;
inline constexpr std::size_t kTimelineHeaderSize = 48;
inline constexpr std::size_t kTimelineTableEntrySize = 40;
inline constexpr std::uint64_t kTimelineGlobalRun = ~std::uint64_t{0};
inline constexpr std::string_view kTimelineSchema = "sisyphus.timeline/1";

enum class TimelineSectionKind : std::uint32_t {
  kMeta = 1,    ///< schema, step range, series descriptors (global)
  kSeries = 2,  ///< one per series; the entry's `run` field = series id
  kEvents = 3,  ///< detection events, step-ordered (global)
};

// ---------------------------------------------------------------------------

/// The process-wide timeline recorder. Declaration is idempotent by name
/// and hands back a stable series id; sampling is keyed by (step, id).
class Timeline {
 public:
  static Timeline& Global();

  /// Collection on/off switch (off by default; ObsRun enables it). When
  /// off, every entry point is a cheap flag check.
  static void Enable(bool on);
  static bool enabled() {
#if defined(SISYPHUS_OBS_DISABLED)
    return false;
#else
    return internal::g_timeline_enabled;
#endif
  }

  /// Drops all series, samples, events, and detector state.
  void Reset();

  // -- declaration (idempotent; config is consulted on first declaration) --
  std::uint32_t DeclareCounter(std::string_view name,
                               const ChurnConfig* churn = nullptr);
  std::uint32_t DeclareGauge(std::string_view name,
                             const LevelShiftConfig* shift = nullptr);
  std::uint32_t DeclareRunningMean(std::string_view name,
                                   const LevelShiftConfig* shift = nullptr);

  // -- per-step sampling ---------------------------------------------------
  // Steps are 1-based and must arrive in order. A step commits once both
  // phases are closed; commit encodes the step's samples in series-id
  // order, runs detectors, and appends any events — all under the mutex,
  // so the outcome is independent of which thread closes last. A series
  // not sampled for a committed step repeats its previous value (counters:
  // zero delta), keeping every series dense from its first step.
  //
  // If a step number at or below the last committed step arrives with no
  // step in flight, a new epoch is assumed (a second campaign in the same
  // process) and subsequent steps are offset to stay globally monotone.
  enum class Phase : std::uint8_t { kProduce = 0, kIngest = 1 };

  void SampleCounter(std::uint64_t step, std::uint32_t series,
                     std::uint64_t value);
  void SampleGauge(std::uint64_t step, std::uint32_t series, double value);
  /// `count`/`sum` are the running totals; the stored sample is sum/count
  /// (0 when empty) and the detector input is the increment mean since the
  /// previous sample, when `count` grew.
  void SampleRunningMean(std::uint64_t step, std::uint32_t series,
                         std::uint64_t count, double sum);
  void ClosePhase(std::uint64_t step, Phase phase);

  // -- introspection -------------------------------------------------------
  struct Summary {
    std::uint64_t steps = 0;        ///< committed steps
    std::uint64_t first_step = 0;   ///< 0 when empty
    std::uint64_t last_step = 0;
    std::uint64_t series = 0;
    std::uint64_t samples = 0;
    std::uint64_t events = 0;
    std::uint64_t level_shift_events = 0;
    std::uint64_t churn_events = 0;
  };
  Summary GetSummary() const;
  std::vector<DetectionEvent> Events() const;

  /// Serializes the full timeline.bin byte string — a pure function of
  /// committed state (pending partial steps are excluded, and are empty at
  /// every artifact-writing point by construction).
  std::string BuildArtifact() const;

  // -- durable snapshot capture/restore ------------------------------------
  void Save(core::binio::Writer& w) const;
  bool Load(core::binio::Reader& r);

 private:
  struct Series {
    std::string name;
    SeriesKind kind = SeriesKind::kGauge;
    DetectorKind detector = DetectorKind::kNone;
    LevelShiftConfig shift;
    ChurnConfig churn;
    std::uint64_t fingerprint = 0;
    std::uint64_t first_step = 0;  ///< 0 until the first sample commits
    std::uint64_t sample_count = 0;
    std::string data;  ///< encoded samples (see SeriesKind)

    // encoder + repeat-last state
    std::uint64_t last_counter = 0;
    double last_gauge = 0.0;

    // running-mean increment state
    std::uint64_t prev_count = 0;
    double prev_sum = 0.0;

    // detector state
    bool det_armed = false;  ///< reference initialized
    double det_mu = 0.0;
    double det_s_pos = 0.0;
    double det_s_neg = 0.0;
    std::uint64_t det_n = 0;       ///< inputs since (re-)centering
    std::uint64_t prev_value = 0;  ///< churn: previous counter value
  };

  struct SampleValue {
    std::uint64_t u = 0;  // counter value / running count
    double d = 0.0;       // gauge value / running sum
  };

  struct PendingStep {
    bool produce_closed = false;
    bool ingest_closed = false;
    std::map<std::uint32_t, SampleValue> samples;
  };

  std::uint32_t DeclareLocked(std::string_view name, SeriesKind kind,
                              DetectorKind detector,
                              const LevelShiftConfig* shift,
                              const ChurnConfig* churn);
  std::uint64_t AbsoluteStepLocked(std::uint64_t step);
  PendingStep& PendingLocked(std::uint64_t step);
  void CommitReadyLocked();
  void CommitStepLocked(std::uint64_t abs_step, PendingStep& pending);
  void RunLevelShiftLocked(std::uint64_t abs_step, std::uint32_t id,
                           Series& series, double x);

  mutable std::mutex mu_;
  std::vector<Series> series_;
  std::map<std::string, std::uint32_t, std::less<>> by_name_;
  std::map<std::uint64_t, PendingStep> pending_;  ///< keyed by absolute step
  std::vector<DetectionEvent> events_;
  std::uint64_t committed_step_ = 0;  ///< absolute; 0 = nothing committed
  std::uint64_t first_step_ = 0;
  std::uint64_t step_offset_ = 0;  ///< epoch offset (multi-campaign runs)
};

// ---------------------------------------------------------------------------
// Reader — parses and verifies a timeline.bin byte string or file. The
// whole artifact is loaded and checksum-verified up front (timeline files
// are small: KBs to a few MB), so every query is an in-memory decode.

struct TimelineSeriesView {
  std::uint32_t id = 0;
  std::string name;
  SeriesKind kind = SeriesKind::kGauge;
  DetectorKind detector = DetectorKind::kNone;
  std::uint64_t fingerprint = 0;
  std::uint64_t first_step = 0;
  std::uint64_t sample_count = 0;
  LevelShiftConfig shift;  ///< valid when detector == kLevelShift
  ChurnConfig churn;       ///< valid when detector == kChurn
};

class TimelineReader {
 public:
  /// Parses + fully verifies (header, table, section checksums, meta/event
  /// invariants). On failure returns false and sets *error.
  bool Parse(std::string bytes, std::string* error);
  bool OpenFile(const std::string& path, std::string* error);

  std::uint64_t steps() const { return steps_; }
  std::uint64_t first_step() const { return first_step_; }
  std::uint64_t last_step() const { return last_step_; }
  const std::vector<TimelineSeriesView>& series() const { return series_; }
  const std::vector<DetectionEvent>& events() const { return events_; }
  const TimelineSeriesView* FindSeries(std::string_view name) const;

  /// Decoded sample values for one series (counters are re-accumulated
  /// from their deltas into absolute values). values[i] belongs to step
  /// series().first_step + i. Returns false on a malformed section.
  bool SeriesValues(std::uint32_t id, std::vector<double>* out,
                    std::string* error) const;

  /// The value of every series at `step` (series without a sample at that
  /// step — declared later, or out of range — are skipped). Pairs of
  /// (series id, value).
  bool ValuesAt(std::uint64_t step,
                std::vector<std::pair<std::uint32_t, double>>* out,
                std::string* error) const;

 private:
  std::string bytes_;
  std::uint64_t steps_ = 0;
  std::uint64_t first_step_ = 0;
  std::uint64_t last_step_ = 0;
  std::vector<TimelineSeriesView> series_;
  std::vector<DetectionEvent> events_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>>
      series_payload_;  ///< (offset, size) into bytes_, indexed by id
};

/// Builds the current global timeline artifact and writes it to
/// `<dir>/timeline.bin` (atomic tmp+rename so a live reader never sees a
/// torn file). Returns false (with a log line) on I/O failure.
bool WriteTimelineArtifact(const std::string& dir);

}  // namespace sisyphus::obs

#endif  // SISYPHUS_OBS_TIMELINE_H_
