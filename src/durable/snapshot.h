// Checksummed, atomically-replaced snapshot files for the durable
// streaming service.
//
// A snapshot file holds one framed payload:
//
//   [u64 magic][u64 payload_len][payload bytes][u64 fnv]
//
// written to `<path>.tmp`, fsynced, then renamed into place — so a crash
// mid-write leaves either the previous snapshot or a `.tmp` orphan, never
// a half-written `snap-*.bin`. A flipped byte anywhere in the file fails
// the FNV-1a check on read, and recovery falls back to the previous
// snapshot (DESIGN.md §11).
//
// Snapshots are named `snap-<seq, zero-padded>.bin` so a lexicographic
// directory listing is also seq-ordered.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sisyphus::durable {

inline constexpr std::uint64_t kSnapshotMagic = 0x50414e5359534953ull;  // "SISYSNAP"

/// `<dir>/snap-00000000000000000042.bin`.
std::string SnapshotPath(const std::string& dir, std::uint64_t seq);

/// Frames `payload`, writes `<path>.tmp`, fsyncs, renames into place.
/// False (with diagnostic) on any I/O failure; the destination is left
/// untouched in that case.
bool WriteSnapshotFile(const std::string& path, std::string_view payload,
                       std::string* error = nullptr);

struct SnapshotRead {
  bool ok = false;
  std::string payload;
  std::string diagnostic;  ///< why the read failed (torn, checksum, I/O)
};

/// Reads and verifies one snapshot file.
SnapshotRead ReadSnapshotFile(const std::string& path);

struct SnapshotEntry {
  std::uint64_t seq = 0;
  std::string path;
};

/// All `snap-*.bin` files in `dir`, ascending by seq. Missing directory
/// yields an empty list.
std::vector<SnapshotEntry> ListSnapshots(const std::string& dir);

/// Deletes all but the newest `keep` snapshots in `dir`.
void PruneSnapshots(const std::string& dir, std::size_t keep);

}  // namespace sisyphus::durable
