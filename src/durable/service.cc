#include "durable/service.h"

#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/binio.h"
#include "core/error.h"
#include "core/hash.h"
#include "core/logging.h"
#include "durable/journal.h"
#include "durable/snapshot.h"
#include "obs/lineage.h"
#include "obs/metrics.h"
#include "obs/timeline.h"

namespace sisyphus::durable {

namespace binio = core::binio;
namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Signals

namespace {
volatile std::sig_atomic_t g_interrupted = 0;
void HandleInterrupt(int) { g_interrupted = 1; }
}  // namespace

void InstallSignalHandlers() {
  std::signal(SIGINT, HandleInterrupt);
  std::signal(SIGTERM, HandleInterrupt);
}

bool InterruptRequested() { return g_interrupted != 0; }

void ClearInterruptFlag() { g_interrupted = 0; }

// ---------------------------------------------------------------------------
// Chaos spec

core::Result<ChaosOptions> ParseChaosSpec(std::string_view spec) {
  ChaosOptions chaos;
  chaos.enabled = true;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view part =
        spec.substr(pos, comma == std::string_view::npos ? spec.size() - pos
                                                         : comma - pos);
    pos = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (part.empty()) continue;
    const std::size_t eq = part.find('=');
    const std::string_view key = part.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view() : part.substr(eq + 1);
    const auto parse_u64 = [](std::string_view v,
                              std::uint64_t* out) -> bool {
      if (v.empty()) return false;
      std::uint64_t n = 0;
      for (char c : v) {
        if (c < '0' || c > '9') return false;
        n = n * 10 + static_cast<std::uint64_t>(c - '0');
      }
      *out = n;
      return true;
    };
    if (key == "kill-after") {
      if (!parse_u64(value, &chaos.kill_after_steps)) {
        return core::Error(core::ErrorCode::kParseError,
                           "chaos: bad kill-after value");
      }
    } else if (key == "seed") {
      if (!parse_u64(value, &chaos.seed)) {
        return core::Error(core::ErrorCode::kParseError,
                           "chaos: bad seed value");
      }
    } else if (key == "mid-write") {
      chaos.mid_write = true;
    } else if (key == "corrupt") {
      if (value == "snapshot") {
        chaos.corrupt = ChaosOptions::CorruptTarget::kSnapshot;
      } else if (value == "journal") {
        chaos.corrupt = ChaosOptions::CorruptTarget::kJournal;
      } else {
        return core::Error(core::ErrorCode::kParseError,
                           "chaos: corrupt target must be snapshot|journal");
      }
    } else {
      return core::Error(
          core::ErrorCode::kParseError,
          "chaos: unknown key '" + std::string(key) +
              "' (expected kill-after/mid-write/corrupt/seed)");
    }
  }
  if (chaos.kill_after_steps == 0 && chaos.seed == 0) {
    return core::Error(core::ErrorCode::kParseError,
                       "chaos: kill-after=N or seed=S required");
  }
  return chaos;
}

// ---------------------------------------------------------------------------
// Step / snapshot serialization

std::string EncodeStep(const measure::StepOutput& step,
                       std::uint64_t next_record_id_after) {
  binio::Writer w;
  w.PutI64(step.step_end.minutes());
  w.PutU64(next_record_id_after);
  w.PutU64(step.records.size());
  for (const measure::PendingRecord& pending : step.records) {
    const measure::SpeedTestRecord& r = pending.record;
    w.PutU64(r.id.value());
    w.PutI64(r.time.minutes());
    w.PutU32(r.asn.value());
    w.PutString(r.city);
    w.PutU32(r.vantage_pop);
    w.PutU32(r.server_pop);
    w.PutDouble(r.rtt_ms);
    w.PutDouble(r.loss_rate);
    w.PutDouble(r.throughput_mbps);
    w.PutU8(static_cast<std::uint8_t>(r.intent));
    w.PutU32(r.attempts);
    w.PutBool(pending.duplicate);
    w.PutU8(pending.fault_mask);
  }
  w.PutU64(step.failures.size());
  for (const measure::ProbeFailure& f : step.failures) {
    w.PutI64(f.time.minutes());
    w.PutU32(f.vantage);
    w.PutU8(static_cast<std::uint8_t>(f.intent));
    w.PutU8(static_cast<std::uint8_t>(f.reason));
    w.PutU32(f.attempts);
  }
  return std::move(w).Take();
}

namespace {

void EncodeFailures(binio::Writer& w,
                    const std::vector<measure::ProbeFailure>& failures) {
  w.PutU64(failures.size());
  for (const measure::ProbeFailure& f : failures) {
    w.PutI64(f.time.minutes());
    w.PutU32(f.vantage);
    w.PutU8(static_cast<std::uint8_t>(f.intent));
    w.PutU8(static_cast<std::uint8_t>(f.reason));
    w.PutU32(f.attempts);
  }
}

bool DecodeFailures(binio::Reader& r,
                    std::vector<measure::ProbeFailure>* failures) {
  const std::uint64_t count = r.GetU64();
  if (!r.ok() || count > r.remaining() / 18) return false;
  failures->clear();
  failures->reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    measure::ProbeFailure f;
    f.time = core::SimTime(r.GetI64());
    f.vantage = r.GetU32();
    f.intent = static_cast<measure::Intent>(r.GetU8());
    f.reason = static_cast<measure::ProbeFault>(r.GetU8());
    f.attempts = r.GetU32();
    failures->push_back(f);
  }
  return r.ok();
}

std::string EncodeSnapshotPayload(std::uint64_t seq, const core::Rng& rng,
                                  const measure::Platform& platform,
                                  const measure::StreamingCampaign& campaign) {
  binio::Writer w;
  w.PutU64(seq);
  const core::Rng::State rng_state = rng.SaveState();
  for (std::uint64_t word : rng_state.s) w.PutU64(word);
  w.PutBool(rng_state.has_cached_gaussian);
  w.PutDouble(rng_state.cached_gaussian);
  const measure::Platform::StreamState stream = platform.CaptureStreamState();
  w.PutU64(stream.next_record_id);
  w.PutU64(stream.route_change_cursor);
  binio::PutDoubleVector(w, stream.ewma_rtt);
  EncodeFailures(w, stream.failures);
  obs::Registry::Global().Save(w);
  obs::Lineage::Global().Save(w);
  campaign.Save(w);
  obs::Timeline::Global().Save(w);
  return std::move(w).Take();
}

/// The part of a snapshot that must be parsed BEFORE the fast-forward
/// (seq, RNG, platform state); `tail` holds the registry/lineage/campaign
/// bytes applied after it.
struct SnapshotHead {
  std::uint64_t seq = 0;
  core::Rng::State rng;
  measure::Platform::StreamState stream;
  std::string tail;
};

bool DecodeSnapshotHead(const std::string& payload, SnapshotHead* head) {
  binio::Reader r(payload);
  head->seq = r.GetU64();
  for (std::uint64_t& word : head->rng.s) word = r.GetU64();
  head->rng.has_cached_gaussian = r.GetBool();
  head->rng.cached_gaussian = r.GetDouble();
  head->stream.next_record_id = r.GetU64();
  head->stream.route_change_cursor = r.GetU64();
  head->stream.ewma_rtt = binio::GetDoubleVector(r);
  if (!DecodeFailures(r, &head->stream.failures)) return false;
  if (!r.ok()) return false;
  head->tail = payload.substr(payload.size() - r.remaining());
  return true;
}

// ---------------------------------------------------------------------------
// Pipelined ingest queue + supervisor

/// Thrown by Push/Drain when the consumer failed: the error deterministically
/// names the step whose ingest raised, regardless of how far ahead the
/// producer ran.
class IngestFailedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class StepQueue {
 public:
  struct Item {
    std::uint64_t seq = 0;
    measure::StepOutput step;
  };

  explicit StepQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Producer. Blocks while the queue is full (backpressure: timing only —
  /// batch content is fixed before Push). Throws if the consumer failed.
  void Push(Item item) {
    std::unique_lock<std::mutex> lock(mu_);
    space_.wait(lock,
                [&] { return failed_ || items_.size() < capacity_; });
    ThrowIfFailedLocked();
    items_.push_back(std::move(item));
    ready_.notify_one();
  }

  /// Consumer. False once closed and empty.
  bool Pop(Item* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    busy_ = true;
    space_.notify_all();
    return true;
  }

  /// Consumer, after each successful ingest.
  void ItemDone() {
    std::lock_guard<std::mutex> lock(mu_);
    busy_ = false;
    space_.notify_all();
  }

  /// Consumer, on ingest exception: records which step failed; further
  /// Push/Drain calls throw.
  void Fail(std::uint64_t seq, std::string what) {
    std::lock_guard<std::mutex> lock(mu_);
    failed_ = true;
    failed_seq_ = seq;
    failure_ = std::move(what);
    busy_ = false;
    items_.clear();
    space_.notify_all();
    ready_.notify_all();
  }

  /// Producer. Waits until every queued batch is fully ingested (snapshots
  /// and shutdown quiesce through this). Throws if the consumer failed.
  void Drain() {
    std::unique_lock<std::mutex> lock(mu_);
    space_.wait(lock, [&] { return failed_ || (items_.empty() && !busy_); });
    ThrowIfFailedLocked();
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    ready_.notify_all();
  }

  /// Producer-side backlog snapshot (log-line telemetry only — never a
  /// gauge input; depth depends on consumer timing).
  std::size_t Depth() {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size() + (busy_ ? 1 : 0);
  }

 private:
  void ThrowIfFailedLocked() {
    if (failed_) {
      throw IngestFailedError("streaming ingest failed at step " +
                              std::to_string(failed_seq_) + ": " + failure_);
    }
  }

  std::mutex mu_;
  std::condition_variable ready_, space_;
  std::deque<Item> items_;
  std::size_t capacity_;
  bool closed_ = false;
  bool busy_ = false;
  bool failed_ = false;
  std::uint64_t failed_seq_ = 0;
  std::string failure_;
};

/// Joins the consumer on every exit path (including exceptions).
struct ConsumerGuard {
  StepQueue* queue = nullptr;
  std::thread thread;
  ~ConsumerGuard() {
    if (queue != nullptr) queue->Close();
    if (thread.joinable()) thread.join();
  }
};

bool FlipByte(const std::string& path, std::size_t offset) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) return false;
  bool ok = std::fseek(file, static_cast<long>(offset), SEEK_SET) == 0;
  int byte = ok ? std::fgetc(file) : EOF;
  ok = ok && byte != EOF;
  ok = ok &&
       std::fseek(file, static_cast<long>(offset), SEEK_SET) == 0;
  ok = ok && std::fputc((byte ^ 0xff) & 0xff, file) != EOF;
  std::fclose(file);
  return ok;
}

/// Restores the obs enable flags fast-forward turned off, even if the
/// forward throws.
struct TelemetryPause {
  bool registry_enabled;
  bool lineage_enabled;
  bool timeline_enabled;
  TelemetryPause()
      : registry_enabled(obs::Registry::enabled()),
        lineage_enabled(obs::Lineage::enabled()),
        timeline_enabled(obs::Timeline::enabled()) {
    obs::Registry::Enable(false);
    obs::Lineage::Enable(false);
    obs::Timeline::Enable(false);
  }
  ~TelemetryPause() {
    obs::Registry::Enable(registry_enabled);
    obs::Lineage::Enable(lineage_enabled);
    obs::Timeline::Enable(timeline_enabled);
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Service

DurableStreamingService::DurableStreamingService(
    measure::Platform& platform, measure::StreamingCampaign& campaign,
    DurableOptions options)
    : platform_(platform), campaign_(campaign), options_(std::move(options)) {}

core::Result<RunStats> DurableStreamingService::Run(core::SimTime until,
                                                    core::Rng& rng) {
  return RunInternal(until, rng, /*resume=*/false);
}

core::Result<RunStats> DurableStreamingService::Resume(core::SimTime until,
                                                       core::Rng& rng) {
  return RunInternal(until, rng, /*resume=*/true);
}

core::Result<RunStats> DurableStreamingService::RunInternal(core::SimTime until,
                                                            core::Rng& rng,
                                                            bool resume) {
  if (options_.dir.empty()) {
    return core::Error(core::ErrorCode::kInvalidArgument,
                       "durable: options.dir is required");
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    return core::Error(core::ErrorCode::kInvalidArgument,
                       "durable: cannot create " + options_.dir + ": " +
                           ec.message());
  }
  const std::string journal_path =
      (fs::path(options_.dir) / "journal.bin").string();

  RunStats stats;
  stats.resumed = resume;

  // -- recovery: pick the snapshot to restore -----------------------------
  SnapshotHead head;
  bool restored = false;
  if (!resume) {
    // Fresh run: stale durable state would otherwise be mistaken for a
    // previous incarnation of this campaign.
    fs::remove(journal_path, ec);
    for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("snap-", 0) == 0 ||
          (name.size() > 4 &&
           name.substr(name.size() - 4) == ".tmp")) {
        fs::remove(entry.path(), ec);
      }
    }
  } else {
    const std::vector<SnapshotEntry> snaps = ListSnapshots(options_.dir);
    std::string diagnostics;
    for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
      SnapshotRead read = ReadSnapshotFile(it->path);
      if (!read.ok) {
        core::LogLine(core::LogLevel::kWarn,
                      "durable: snapshot invalid, falling back",
                      {{"path", it->path}, {"why", read.diagnostic}});
        diagnostics += (diagnostics.empty() ? "" : "; ") + read.diagnostic;
        continue;
      }
      if (!DecodeSnapshotHead(read.payload, &head) || head.seq != it->seq) {
        core::LogLine(core::LogLevel::kWarn,
                      "durable: snapshot undecodable, falling back",
                      {{"path", it->path}});
        diagnostics += (diagnostics.empty() ? "" : "; ") + it->path +
                       ": undecodable";
        continue;
      }
      restored = true;
      break;
    }
    if (!restored && !snaps.empty()) {
      return core::Error(core::ErrorCode::kParseError,
                         "durable resume: no valid snapshot among " +
                             std::to_string(snaps.size()) +
                             " candidates (" + diagnostics + ")");
    }
    // No snapshot files at all: cold resume from step 0 (journal, if any,
    // still verifies the re-execution).
  }
  const std::uint64_t start_seq = restored ? head.seq : 0;

  // -- journal scan -------------------------------------------------------
  JournalScan scan = ScanJournal(journal_path);
  if (scan.corrupt) {
    return core::Error(core::ErrorCode::kParseError,
                       "durable resume: journal corrupt: " + scan.diagnostic);
  }
  std::uint64_t high_water = scan.frames.size();
  if (high_water < start_seq) {
    // The protocol flushes the journal before every snapshot, so a valid
    // snapshot at seq k implies journaled frames through k.
    return core::Error(core::ErrorCode::kParseError,
                       "durable resume: journal high-water " +
                           std::to_string(high_water) +
                           " behind snapshot seq " +
                           std::to_string(start_seq));
  }
  stats.journal_high_water = high_water;

  // -- fast-forward + state restore ---------------------------------------
  if (restored) {
    {
      // Re-executing the skipped steps' clock/route-cache effects must not
      // re-count telemetry: the restored registry/lineage state already
      // contains those steps.
      TelemetryPause pause;
      for (std::uint64_t i = 0; i < start_seq; ++i) platform_.SkipStep(until);
    }
    binio::Reader tail(head.tail);
    if (!obs::Registry::Global().Load(tail) ||
        !obs::Lineage::Global().Load(tail) || !campaign_.Load(tail) ||
        !obs::Timeline::Global().Load(tail) || tail.remaining() != 0) {
      return core::Error(core::ErrorCode::kParseError,
                         "durable resume: snapshot state failed to load "
                         "(checksum passed but decoding diverged)");
    }
    platform_.RestoreStreamState(head.stream);
    rng.RestoreState(head.rng);
    core::LogLine(core::LogLevel::kInfo, "durable: resumed from snapshot",
                  {{"seq", start_seq}, {"journal_high_water", high_water}});
  }

  // -- journal writer ------------------------------------------------------
  Journal journal;
  std::string journal_error;
  if (!journal.Open(journal_path, scan.valid_bytes, options_.fsync_every,
                    &journal_error)) {
    return core::Error(core::ErrorCode::kInvalidArgument,
                       "durable: " + journal_error);
  }

  // -- chaos arming --------------------------------------------------------
  std::uint64_t chaos_kill_seq = 0;
  if (options_.chaos.enabled) {
    chaos_kill_seq = options_.chaos.kill_after_steps;
    if (chaos_kill_seq == 0) {
      const std::uint64_t h = core::Fnv1a64(
          "chaos-" + std::to_string(options_.chaos.seed));
      chaos_kill_seq = 1 + h % 24;
    }
  }

  // Pin the fixed produce-phase series ids before the consumer thread can
  // declare its first rtt.mean.* series (idempotent after a resume — the
  // restored timeline already holds them).
  measure::DeclareStreamTelemetrySeries();

  // -- pipelined consumer ---------------------------------------------------
  StepQueue queue(options_.queue_capacity);
  ConsumerGuard consumer;
  if (options_.pipelined) {
    consumer.queue = &queue;
    consumer.thread = std::thread([this, &queue] {
      StepQueue::Item item;
      while (queue.Pop(&item)) {
        try {
          if (options_.ingest_fault) options_.ingest_fault(item.seq);
          campaign_.IngestBatchSerial(item.step.records);
          platform_.CommitFailures(item.step.failures);
          // Ingest-phase timeline sample, before ItemDone so quiesce
          // points (snapshots, chaos kills) never see a half-sampled step.
          measure::SampleTimelineIngest(item.seq, campaign_);
          queue.ItemDone();
        } catch (const std::exception& e) {
          queue.Fail(item.seq, e.what());
          return;
        }
      }
    });
  }

  const auto quiesce = [&] {
    if (options_.pipelined) queue.Drain();
  };
  std::uint64_t last_snapshot_seq = start_seq;
  const auto write_snapshot = [&](std::uint64_t seq) -> core::Result<bool> {
    quiesce();
    journal.Flush();
    const std::string payload =
        EncodeSnapshotPayload(seq, rng, platform_, campaign_);
    std::string error;
    if (!WriteSnapshotFile(SnapshotPath(options_.dir, seq), payload,
                           &error)) {
      return core::Error(core::ErrorCode::kInvalidArgument,
                         "durable: " + error);
    }
    PruneSnapshots(options_.dir, options_.keep_snapshots);
    // Refresh the live timeline artifact next to the snapshots so
    // `timelineq --follow` can tail a running campaign; like the gauges,
    // its content is a pure function of the committed step stream.
    if (obs::Timeline::enabled()) obs::WriteTimelineArtifact(options_.dir);
    last_snapshot_seq = seq;
    return true;
  };

  // -- the step loop --------------------------------------------------------
  std::uint64_t seq = start_seq;
  // Committed-record total for the heartbeat gauges. Tracked locally
  // (campaign_.ingested() lags the producer in pipelined mode); seeded
  // from the restored snapshot so a resumed run's gauge stream continues
  // exactly where the killed run's left off.
  std::uint64_t committed_records = campaign_.ingested();
  std::uint64_t next_record_id_after = restored ? head.stream.next_record_id : 1;
  stats.outcome = RunOutcome::kCompleted;
  try {
    while (platform_.Now() < until) {
      if (InterruptRequested()) {
        stats.outcome = RunOutcome::kInterrupted;
        break;
      }
      measure::StepOutput step = platform_.GenerateStep(until, rng);
      ++seq;
      if (!step.records.empty()) {
        next_record_id_after = step.records.back().record.id.value() + 1;
      }
      const std::string payload = EncodeStep(step, next_record_id_after);

      if (seq <= high_water) {
        // Verified re-execution: the regenerated step must match the
        // journaled frame byte-for-byte, or the restored state diverged
        // from the original run.
        const JournalFrame& frame = scan.frames[seq - 1];
        if (frame.payload != payload) {
          return core::Error(
              core::ErrorCode::kInvalidArgument,
              "durable resume: journal verification failed at step " +
                  std::to_string(seq) +
                  " (regenerated step diverges from journaled frame)");
        }
        ++stats.replayed_steps;
      } else {
        if (!journal.Append(seq, payload)) {
          return core::Error(core::ErrorCode::kInvalidArgument,
                             "durable: journal append failed at step " +
                                 std::to_string(seq));
        }
        stats.journal_high_water = seq;
      }

      // Shed-on-overload: deterministic per-step cap, applied AFTER the
      // journal append (the journal witnesses the pre-shed batch) and
      // BEFORE ingest. Dropped records terminate in lineage as
      // shed_overload with zero delivered copies.
      if (options_.max_step_records > 0 &&
          step.records.size() > options_.max_step_records) {
        const std::uint64_t shed =
            step.records.size() - options_.max_step_records;
        if (obs::Lineage::enabled()) {
          for (std::size_t i = options_.max_step_records;
               i < step.records.size(); ++i) {
            const measure::PendingRecord& pending = step.records[i];
            obs::LineageRecordInfo info;
            info.id = pending.record.id.value();
            info.vantage = pending.record.vantage_pop;
            info.intent = static_cast<std::uint8_t>(pending.record.intent);
            info.attempts = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(pending.record.attempts, 255));
            info.fault_mask = pending.fault_mask;
            info.copies = pending.duplicate ? 2 : 1;
            obs::Lineage::Global().RecordShed(info);
          }
        }
        SISYPHUS_METRIC_COUNT("measure.stream.shed_overload", shed);
        step.records.resize(options_.max_step_records);
        stats.shed_records += shed;
      }

      const std::uint64_t step_records = step.records.size();
      if (options_.pipelined) {
        StepQueue::Item item;
        item.seq = seq;
        item.step = std::move(step);
        queue.Push(std::move(item));
      } else {
        try {
          if (options_.ingest_fault) options_.ingest_fault(seq);
          campaign_.IngestBatch(step.records);
          platform_.CommitFailures(step.failures);
        } catch (const IngestFailedError&) {
          throw;
        } catch (const std::exception& e) {
          throw IngestFailedError("streaming ingest failed at step " +
                                  std::to_string(seq) + ": " + e.what());
        }
      }
      ++stats.steps;
      committed_records += step_records;
      measure::EmitStepTelemetry(
          seq, committed_records, options_.pipelined ? queue.Depth() : 0,
          platform_.options().heartbeat_every_steps, &campaign_,
          /*ingest_sampled_elsewhere=*/options_.pipelined);

      // Chaos: die at this step boundary, optionally corrupting state
      // first, exactly as a crash would — _exit, no unwinding.
      if (chaos_kill_seq != 0 && seq == chaos_kill_seq) {
        quiesce();
        journal.Flush();
        if (options_.chaos.corrupt == ChaosOptions::CorruptTarget::kSnapshot) {
          auto written = write_snapshot(seq);
          if (written.ok()) {
            FlipByte(SnapshotPath(options_.dir, seq), 20);
          }
        }
        if (options_.chaos.mid_write) {
          journal.AppendTorn(seq + 1, payload, 13);
        }
        if (options_.chaos.corrupt == ChaosOptions::CorruptTarget::kJournal) {
          // Offset 26 lands inside the FIRST frame's payload, so the
          // damage is before the journal tail and must be detected (use
          // kill-after >= 2 so the frame is not the last one).
          FlipByte(journal_path, 26);
        }
        std::printf("chaos: killed after step %llu\n",
                    static_cast<unsigned long long>(seq));
        std::fflush(stdout);
        std::_Exit(137);
      }

      if (options_.snapshot_every > 0 &&
          seq % options_.snapshot_every == 0 && platform_.Now() < until) {
        auto written = write_snapshot(seq);
        if (!written.ok()) return written.error();
      }

      if (options_.stop_after_steps > 0 &&
          stats.steps >= options_.stop_after_steps &&
          platform_.Now() < until) {
        stats.outcome = RunOutcome::kStopped;
        break;
      }
    }

    // -- shutdown -----------------------------------------------------------
    quiesce();
    journal.Flush();
    if (stats.outcome != RunOutcome::kStopped) {
      // Completed or interrupted: leave a snapshot at the boundary so a
      // later resume (or a post-interrupt restart) fast-forwards instead
      // of replaying the whole journal. kStopped emulates a crash, so it
      // deliberately leaves only the journal.
      auto written = write_snapshot(seq);
      if (!written.ok()) return written.error();
    }
  } catch (const IngestFailedError& e) {
    return core::Error(core::ErrorCode::kInvalidArgument, e.what());
  }

  stats.snapshot_seq = last_snapshot_seq;
  stats.journal_entries = journal.appended();
  if (stats.outcome == RunOutcome::kInterrupted) {
    core::LogLine(core::LogLevel::kWarn,
                  "durable: interrupted, state flushed",
                  {{"seq", seq}, {"snapshot_seq", last_snapshot_seq}});
  }
  return stats;
}

}  // namespace sisyphus::durable
