// Durable streaming service: crash-tolerant driver for a streaming
// measurement campaign (DESIGN.md §11).
//
// The service owns the durability protocol around Platform's
// step-at-a-time API:
//
//   1. GenerateStep — pure generation from (RNG, simulator, EWMA) state;
//   2. journal — the serialized StepOutput is appended to a checksummed
//      write-ahead journal BEFORE it is applied;
//   3. shed — an optional deterministic per-step record cap; dropped
//      records terminate in lineage as shed_overload with zero delivered
//      copies (conservation stays exact);
//   4. ingest — StreamingCampaign::IngestBatch (or, pipelined, a bounded
//      queue feeding a consumer thread running the serial ingest path);
//   5. snapshot — every `snapshot_every` steps, the full mutable state
//      (RNG, platform stream state, metrics registry, lineage ledger,
//      store arenas, panel aggregates) is written atomically.
//
// Recovery = snapshot restore + deterministic VERIFIED RE-EXECUTION: the
// journal is an integrity witness, not the source of truth. Resume loads
// the newest valid snapshot (seq k), fast-forwards the simulator k steps
// with telemetry disabled, restores the saved state, then re-enters the
// normal step loop. Steps whose seq is covered by the journal are
// re-generated live and their serialized form compared byte-for-byte
// against the journaled frame — any divergence fails the resume loudly.
// Because every artifact byte is a pure function of the restored state,
// a killed-and-resumed run produces panel.csv/metrics.json/lineage.json
// byte-identical to an uninterrupted one, at any SISYPHUS_THREADS.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "core/result.h"
#include "core/rng.h"
#include "core/sim_time.h"
#include "measure/platform.h"

namespace sisyphus::durable {

/// Fault-injection harness for kill/resume drills (`--chaos` on the
/// table1 bench). The kill fires at a step boundary, after the step's
/// journal append + ingest (and after the forced snapshot when the
/// corruption target is the snapshot), via _exit — no destructors, no
/// flushes beyond what the protocol already guarantees.
struct ChaosOptions {
  bool enabled = false;
  /// Kill after completing this step (1-based). 0 with seed!=0: derived
  /// pseudo-randomly from the seed.
  std::uint64_t kill_after_steps = 0;
  /// Before dying, write a partial journal frame (simulates a crash
  /// mid-append; recovery must treat it as a benign torn tail).
  bool mid_write = false;
  enum class CorruptTarget { kNone, kSnapshot, kJournal };
  /// Before dying, flip one byte in the target file (recovery must detect
  /// the checksum mismatch: snapshot -> fall back, journal -> fail loud).
  CorruptTarget corrupt = CorruptTarget::kNone;
  std::uint64_t seed = 0;
};

/// Parses "kill-after=N[,mid-write][,corrupt=snapshot|journal][,seed=S]".
core::Result<ChaosOptions> ParseChaosSpec(std::string_view spec);

struct DurableOptions {
  /// Directory holding journal.bin and snap-*.bin. Required.
  std::string dir;
  /// Steps between periodic snapshots (0 = final snapshot only).
  std::uint64_t snapshot_every = 16;
  /// Journal frames between fsyncs (also fsynced at snapshots/shutdown).
  std::uint64_t fsync_every = 8;
  /// Shed-on-overload: per-step record cap, keeping the first N in merge
  /// order (0 = unbounded). Deterministic — a pure function of the batch,
  /// never of queue depth or wall-clock — so replays shed identically.
  std::uint64_t max_step_records = 0;
  /// Snapshots retained (older ones pruned).
  std::size_t keep_snapshots = 3;
  /// Pipelined mode: generation and ingest overlap via a bounded queue
  /// (backpressure changes timing only, never artifact content).
  bool pipelined = false;
  std::size_t queue_capacity = 4;
  // Heartbeat cadence comes from PlatformOptions::heartbeat_every_steps —
  // one source of truth, so the durable loop's gauge/log stream (and the
  // timeline sampler riding the same hook) is identical to the plain
  // streaming loop's by construction.
  /// Test hook: stop cleanly after N live steps WITHOUT a final snapshot —
  /// emulates a crash whose journal survived (the crash-at-every-step
  /// property test drives this).
  std::uint64_t stop_after_steps = 0;
  /// Test hook: called with each step's seq on the ingest path before the
  /// batch is applied; a throw exercises the supervisor (the step fails
  /// deterministically, naming the step).
  std::function<void(std::uint64_t)> ingest_fault;
  ChaosOptions chaos;
};

enum class RunOutcome {
  kCompleted,    ///< reached `until`
  kInterrupted,  ///< SIGINT/SIGTERM: journal flushed + final snapshot
  kStopped,      ///< stop_after_steps hook fired
};

struct RunStats {
  RunOutcome outcome = RunOutcome::kCompleted;
  bool resumed = false;
  std::uint64_t steps = 0;           ///< live steps executed this process
  std::uint64_t replayed_steps = 0;  ///< steps re-executed under journal verification
  std::uint64_t snapshot_seq = 0;    ///< seq of the last snapshot written
  std::uint64_t journal_high_water = 0;  ///< highest journaled seq
  std::uint64_t journal_entries = 0;     ///< frames appended this process
  std::uint64_t shed_records = 0;        ///< records shed this process
};

/// SIGINT/SIGTERM -> an async-signal-safe flag the step loop polls at
/// step boundaries; the run then flushes, snapshots, and returns
/// kInterrupted so the caller can write valid (partial-run-marked)
/// artifacts instead of torn files.
void InstallSignalHandlers();
bool InterruptRequested();
void ClearInterruptFlag();  ///< tests

/// Serialized journal payload of one step: step_end, next-record-id
/// watermark, then the merge-ordered records and failures. Byte-stable
/// across thread counts and platforms (little-endian, no padding).
std::string EncodeStep(const measure::StepOutput& step,
                       std::uint64_t next_record_id_after);

class DurableStreamingService {
 public:
  /// The platform and campaign must outlive the service. The campaign
  /// must be freshly constructed (Run) or reconstructed identically to
  /// the original run (Resume) — lineage enablement included, since
  /// IncrementalPanelBuilder snapshots the flag at construction.
  DurableStreamingService(measure::Platform& platform,
                          measure::StreamingCampaign& campaign,
                          DurableOptions options);

  /// Fresh durable run from the platform's current time to `until`.
  /// Clears stale journal/snapshot state in the directory first.
  core::Result<RunStats> Run(core::SimTime until, core::Rng& rng);

  /// Crash-tolerant resume: newest valid snapshot + verified
  /// re-execution of the journal tail, then normal operation to `until`.
  /// Corrupt snapshots fall back to the previous one (loud failure when
  /// none is valid but some exist); journal corruption before the tail
  /// fails loudly. With no snapshot and no journal this degrades to a
  /// cold Run without clearing the directory.
  core::Result<RunStats> Resume(core::SimTime until, core::Rng& rng);

 private:
  core::Result<RunStats> RunInternal(core::SimTime until, core::Rng& rng,
                                     bool resume);

  measure::Platform& platform_;
  measure::StreamingCampaign& campaign_;
  DurableOptions options_;
};

}  // namespace sisyphus::durable
