#include "durable/snapshot.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/binio.h"
#include "core/hash.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define SISYPHUS_HAVE_FSYNC 1
#endif

namespace sisyphus::durable {

namespace binio = core::binio;
namespace fs = std::filesystem;

std::string SnapshotPath(const std::string& dir, std::uint64_t seq) {
  char name[48];
  std::snprintf(name, sizeof(name), "snap-%020llu.bin",
                static_cast<unsigned long long>(seq));
  return (fs::path(dir) / name).string();
}

bool WriteSnapshotFile(const std::string& path, std::string_view payload,
                       std::string* error) {
  binio::Writer w;
  w.PutU64(kSnapshotMagic);
  w.PutString(payload);
  w.PutU64(core::Fnv1a64(payload));
  const std::string framed = std::move(w).Take();

  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = "snapshot open failed: " + tmp + ": " + std::strerror(errno);
    }
    return false;
  }
  bool ok = std::fwrite(framed.data(), 1, framed.size(), file) ==
            framed.size();
  ok = std::fflush(file) == 0 && ok;
#if defined(SISYPHUS_HAVE_FSYNC)
  ok = fsync(fileno(file)) == 0 && ok;
#endif
  std::fclose(file);
  if (!ok) {
    if (error != nullptr) *error = "snapshot write failed: " + tmp;
    std::error_code ec;
    fs::remove(tmp, ec);
    return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "snapshot rename failed: " + path + ": " + ec.message();
    }
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

SnapshotRead ReadSnapshotFile(const std::string& path) {
  SnapshotRead result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.diagnostic = "snapshot unreadable: " + path;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  binio::Reader r(bytes);
  const std::uint64_t magic = r.GetU64();
  std::string payload = r.GetString();
  const std::uint64_t checksum = r.GetU64();
  if (!r.ok() || r.remaining() != 0) {
    result.diagnostic = "snapshot torn or truncated: " + path;
    return result;
  }
  if (magic != kSnapshotMagic) {
    result.diagnostic = "snapshot bad magic: " + path;
    return result;
  }
  if (checksum != core::Fnv1a64(payload)) {
    result.diagnostic = "snapshot checksum mismatch: " + path;
    return result;
  }
  result.ok = true;
  result.payload = std::move(payload);
  return result;
}

std::vector<SnapshotEntry> ListSnapshots(const std::string& dir) {
  std::vector<SnapshotEntry> entries;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0) continue;
    if (name.size() < 10 || name.substr(name.size() - 4) != ".bin") continue;
    const std::string digits = name.substr(5, name.size() - 9);
    std::uint64_t seq = 0;
    bool numeric = !digits.empty();
    for (char c : digits) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (!numeric) continue;
    entries.push_back(SnapshotEntry{seq, entry.path().string()});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.seq < b.seq;
            });
  return entries;
}

void PruneSnapshots(const std::string& dir, std::size_t keep) {
  std::vector<SnapshotEntry> entries = ListSnapshots(dir);
  if (entries.size() <= keep) return;
  std::error_code ec;
  for (std::size_t i = 0; i + keep < entries.size(); ++i) {
    fs::remove(entries[i].path, ec);
  }
}

}  // namespace sisyphus::durable
