// Write-ahead batch journal for the durable streaming service.
//
// One frame per platform step, appended BEFORE the step's batch is applied
// to the campaign sink:
//
//   [u64 magic][u64 seq][u64 payload_len][payload bytes][u64 fnv]
//
// All integers little-endian; `fnv` is 64-bit FNV-1a over the 8 seq bytes
// followed by the payload bytes. Appends are buffered and fsynced every
// `fsync_every` frames (and on Flush), so a crash loses at most the
// un-synced tail — which recovery simply regenerates, because the journal
// is an integrity *witness*, not the source of truth: resumed steps are
// re-executed from the restored RNG/simulator state and the regenerated
// payload is compared byte-for-byte against the journaled frame
// (DESIGN.md §11).
//
// Scan semantics: a torn or checksum-bad frame at the TAIL of the file is
// benign (the valid prefix is kept, the tail truncated on reopen); a bad
// frame with more data after it is corruption and must fail the resume
// loudly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace sisyphus::durable {

inline constexpr std::uint64_t kJournalMagic = 0x4c4e524a59534953ull;  // "SISYJRNL"

/// FNV-1a over the frame's seq (8 LE bytes) + payload — the checksum
/// stored in the frame trailer.
std::uint64_t FrameChecksum(std::uint64_t seq, std::string_view payload);

struct JournalFrame {
  std::uint64_t seq = 0;
  std::string payload;
};

/// Result of scanning a journal file front to back.
struct JournalScan {
  std::vector<JournalFrame> frames;  ///< the valid prefix, seq-ascending
  std::uint64_t valid_bytes = 0;     ///< file offset where the prefix ends
  bool torn_tail = false;            ///< benign: incomplete/bad final frame
  bool corrupt = false;              ///< bad frame with data after it
  std::string diagnostic;            ///< human-readable cause when corrupt
};

/// Scans `path`. A missing file yields an empty, non-corrupt scan. Frames
/// must carry consecutive seq numbers starting at `first_seq`; a gap or
/// regression is corruption.
JournalScan ScanJournal(const std::string& path, std::uint64_t first_seq = 1);

/// Append-only journal writer. Opens the file for appending after
/// truncating it to `valid_bytes` (dropping any torn tail found by
/// ScanJournal). Frames are fsynced every `fsync_every` appends and on
/// Flush()/destruction.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// False (with errno-derived diagnostic in `error`) when the file cannot
  /// be opened or truncated.
  bool Open(const std::string& path, std::uint64_t valid_bytes,
            std::uint64_t fsync_every, std::string* error = nullptr);

  bool is_open() const { return file_ != nullptr; }

  /// Appends one frame; fsyncs when the unsynced count reaches
  /// `fsync_every`. Returns false on write failure.
  bool Append(std::uint64_t seq, std::string_view payload);

  /// Flushes userspace buffers and fsyncs. Idempotent.
  bool Flush();

  /// Frames appended through this writer (not counting pre-existing ones).
  std::uint64_t appended() const { return appended_; }

  /// Writes `n` bytes of a frame header and dies-worth of partial payload
  /// WITHOUT the trailer — the chaos harness uses this to fake a crash
  /// mid-write. Flushes (so the torn bytes hit the disk) but does not
  /// fsync-count it.
  bool AppendTorn(std::uint64_t seq, std::string_view payload,
                  std::size_t keep_bytes);

  void Close();

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t fsync_every_ = 8;
  std::uint64_t unsynced_ = 0;
  std::uint64_t appended_ = 0;
};

}  // namespace sisyphus::durable
