#include "durable/journal.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/binio.h"
#include "core/hash.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define SISYPHUS_HAVE_FSYNC 1
#endif

namespace sisyphus::durable {

namespace binio = core::binio;

std::uint64_t FrameChecksum(std::uint64_t seq, std::string_view payload) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  const auto mix = [&hash](std::uint8_t byte) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  };
  for (int shift = 0; shift < 64; shift += 8) {
    mix(static_cast<std::uint8_t>(seq >> shift));
  }
  for (char c : payload) mix(static_cast<std::uint8_t>(c));
  return hash;
}

namespace {

std::string EncodeFrame(std::uint64_t seq, std::string_view payload) {
  binio::Writer w;
  w.PutU64(kJournalMagic);
  w.PutU64(seq);
  w.PutString(payload);
  w.PutU64(FrameChecksum(seq, payload));
  return std::move(w).Take();
}

bool SyncFile(std::FILE* file) {
  if (std::fflush(file) != 0) return false;
#if defined(SISYPHUS_HAVE_FSYNC)
  if (fsync(fileno(file)) != 0) return false;
#endif
  return true;
}

}  // namespace

JournalScan ScanJournal(const std::string& path, std::uint64_t first_seq) {
  JournalScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) return scan;  // no journal yet: empty, valid
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();

  std::uint64_t expected_seq = first_seq;
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    binio::Reader r(std::string_view(bytes).substr(offset));
    const std::uint64_t magic = r.GetU64();
    const std::uint64_t seq = r.GetU64();
    const std::string payload = r.GetString();
    const std::uint64_t checksum = r.GetU64();

    std::string what;
    if (!r.ok()) {
      what = "incomplete frame";
    } else if (magic != kJournalMagic) {
      what = "bad frame magic";
    } else if (checksum != FrameChecksum(seq, payload)) {
      what = "frame checksum mismatch";
    } else if (seq != expected_seq) {
      what = "non-consecutive frame seq";
    }
    if (!what.empty()) {
      // A bad FINAL frame (its declared extent reaches end of file, or the
      // file simply ran out) is a torn tail from a crash mid-write —
      // benign. A bad frame with data beyond it means the middle of the
      // journal was damaged.
      const std::size_t consumed =
          bytes.size() - offset - static_cast<std::size_t>(r.remaining());
      const bool reaches_eof = !r.ok() || offset + consumed >= bytes.size();
      if (reaches_eof) {
        scan.torn_tail = true;
      } else {
        scan.corrupt = true;
        scan.diagnostic = what + " at journal offset " +
                          std::to_string(offset) + " (seq " +
                          std::to_string(expected_seq) + " expected)";
      }
      break;
    }
    const std::size_t consumed =
        bytes.size() - offset - static_cast<std::size_t>(r.remaining());
    offset += consumed;
    scan.valid_bytes = offset;
    scan.frames.push_back(JournalFrame{seq, payload});
    ++expected_seq;
  }
  return scan;
}

Journal::~Journal() { Close(); }

Journal::Journal(Journal&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      fsync_every_(other.fsync_every_),
      unsynced_(other.unsynced_),
      appended_(other.appended_) {}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = std::exchange(other.file_, nullptr);
    fsync_every_ = other.fsync_every_;
    unsynced_ = other.unsynced_;
    appended_ = other.appended_;
  }
  return *this;
}

bool Journal::Open(const std::string& path, std::uint64_t valid_bytes,
                   std::uint64_t fsync_every, std::string* error) {
  Close();
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    std::filesystem::resize_file(path, valid_bytes, ec);
    if (ec) {
      if (error != nullptr) {
        *error = "journal truncate failed: " + ec.message();
      }
      return false;
    }
  }
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    if (error != nullptr) {
      *error = std::string("journal open failed: ") + std::strerror(errno);
    }
    return false;
  }
  fsync_every_ = fsync_every == 0 ? 1 : fsync_every;
  unsynced_ = 0;
  appended_ = 0;
  return true;
}

bool Journal::Append(std::uint64_t seq, std::string_view payload) {
  if (file_ == nullptr) return false;
  const std::string frame = EncodeFrame(seq, payload);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return false;
  }
  ++appended_;
  if (++unsynced_ >= fsync_every_) return Flush();
  return true;
}

bool Journal::Flush() {
  if (file_ == nullptr) return true;
  unsynced_ = 0;
  return SyncFile(file_);
}

bool Journal::AppendTorn(std::uint64_t seq, std::string_view payload,
                         std::size_t keep_bytes) {
  if (file_ == nullptr) return false;
  const std::string frame = EncodeFrame(seq, payload);
  const std::size_t n = std::min(keep_bytes, frame.size() - 1);
  if (std::fwrite(frame.data(), 1, n, file_) != n) return false;
  return SyncFile(file_);
}

void Journal::Close() {
  if (file_ != nullptr) {
    Flush();
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace sisyphus::durable
