// dagcheck — dagitty-style command-line checker for causal DAGs.
//
// The paper (§4): "Before collecting data, one should be able to define a
// causal question, specify the relevant variables, and assess whether the
// planned setup can identify the desired effect." This tool is that
// pre-registration step as a shell command:
//
//   dagcheck "C -> R; C -> L; R -> L" --treatment R --outcome L
//   dagcheck "Z -> T; T -> Y; T <-> Y" -t T -y Y --dot
//   dagcheck model.dag -t IxpMember -y RttMs --data panel.csv
//
// Prints: identification strategy (+ adjustment sets / mediators /
// instruments, including conditional ones), open backdoor paths, the
// DAG's testable implications (tested against --data when given), and
// optionally Graphviz output.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "causal/csv.h"
#include "causal/dag_parser.h"
#include "causal/dseparation.h"
#include "causal/identification.h"
#include "causal/implications.h"

namespace {

using namespace sisyphus;

void PrintUsage() {
  std::printf(
      "usage: dagcheck <dag-dsl-or-file> --treatment NAME --outcome NAME\n"
      "                [--data file.csv] [--alpha 0.01] [--dot]\n"
      "\n"
      "DSL: 'A -> B; B -> C; X <-> Y; H [latent]' (chains allowed). If the\n"
      "argument names a readable file, the DSL is read from it.\n"
      "\n"
      "  --treatment/-t  treatment variable\n"
      "  --outcome/-y    outcome variable\n"
      "  --data          CSV with numeric columns named like DAG variables;\n"
      "                  testable implications are checked against it\n"
      "  --alpha         rejection level for implication tests (default 0.01)\n"
      "  --dot           print Graphviz instead of the report\n");
}

std::string LoadDagText(const std::string& argument) {
  std::ifstream file(argument);
  if (!file) return argument;  // treat as inline DSL
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  std::string dag_argument, treatment, outcome, data_path;
  double alpha = 0.01;
  bool dot = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dagcheck: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--treatment" || arg == "-t") {
      treatment = next("--treatment");
    } else if (arg == "--outcome" || arg == "-y") {
      outcome = next("--outcome");
    } else if (arg == "--data") {
      data_path = next("--data");
    } else if (arg == "--alpha") {
      alpha = std::atof(next("--alpha"));
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (dag_argument.empty()) {
      dag_argument = arg;
    } else {
      std::fprintf(stderr, "dagcheck: unexpected argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (dag_argument.empty()) {
    PrintUsage();
    return 2;
  }

  auto dag = causal::ParseDag(LoadDagText(dag_argument));
  if (!dag.ok()) {
    std::fprintf(stderr, "dagcheck: %s\n", dag.error().ToText().c_str());
    return 1;
  }

  if (dot) {
    std::optional<causal::NodeId> t, y;
    if (!treatment.empty()) {
      if (auto id = dag.value().Node(treatment); id.ok()) t = id.value();
    }
    if (!outcome.empty()) {
      if (auto id = dag.value().Node(outcome); id.ok()) y = id.value();
    }
    std::printf("%s", dag.value().ToDot(t, y).c_str());
    return 0;
  }

  std::printf("model: %s\n", dag.value().ToText().c_str());
  std::printf("nodes: %zu (%zu observed), edges: %zu\n\n",
              dag.value().NodeCount(), dag.value().ObservedNodes().size(),
              dag.value().EdgeCount());

  // ---- Identification report ----
  if (!treatment.empty() && !outcome.empty()) {
    auto how = causal::Identify(dag.value(), treatment, outcome);
    if (!how.ok()) {
      std::fprintf(stderr, "dagcheck: %s\n", how.error().ToText().c_str());
      return 1;
    }
    std::printf("effect of %s on %s: %s\n", treatment.c_str(),
                outcome.c_str(), causal::ToString(how.value().strategy));
    std::printf("  %s\n", how.value().explanation.c_str());

    const auto t_id = dag.value().Node(treatment).value();
    const auto y_id = dag.value().Node(outcome).value();
    const auto sets = causal::MinimalAdjustmentSets(dag.value(), t_id, y_id);
    if (!sets.empty()) {
      std::printf("  minimal adjustment sets:\n");
      for (const auto& set : sets) {
        std::printf("    {");
        bool first = true;
        for (auto id : set) {
          std::printf("%s%s", first ? "" : ", ",
                      dag.value().Name(id).c_str());
          first = false;
        }
        std::printf("}\n");
      }
    }
    const auto instruments =
        causal::FindConditionalInstruments(dag.value(), t_id, y_id);
    if (!instruments.empty()) {
      std::printf("  instruments:\n");
      for (const auto& ci : instruments) {
        std::printf("    %s", dag.value().Name(ci.instrument).c_str());
        if (!ci.conditioning.empty()) {
          std::printf(" given {");
          bool first = true;
          for (auto id : ci.conditioning) {
            std::printf("%s%s", first ? "" : ", ",
                        dag.value().Name(id).c_str());
            first = false;
          }
          std::printf("}");
        }
        std::printf("\n");
      }
    }
    const auto open =
        causal::OpenBackdoorPaths(dag.value(), t_id, y_id, {});
    if (!open.empty()) {
      std::printf("  open backdoor paths (unadjusted):\n");
      for (const auto& path : open) {
        std::printf("    %s\n", path.ToText(dag.value()).c_str());
      }
    }
    std::printf("\n");
  }

  // ---- Testable implications ----
  const auto implications = causal::ImpliedIndependencies(dag.value());
  std::printf("testable implications (%zu):\n", implications.size());
  if (data_path.empty()) {
    for (const auto& implication : implications) {
      std::printf("  %s\n", implication.ToText(dag.value()).c_str());
    }
  } else {
    auto data = causal::ReadCsvDataset(data_path);
    if (!data.ok()) {
      std::fprintf(stderr, "dagcheck: %s\n", data.error().ToText().c_str());
      return 1;
    }
    std::size_t skipped = 0;
    auto results = causal::TestImpliedIndependencies(
        dag.value(), data.value(), alpha, &skipped);
    if (!results.ok()) {
      std::fprintf(stderr, "dagcheck: %s\n",
                   results.error().ToText().c_str());
      return 1;
    }
    std::size_t rejected = 0;
    for (const auto& result : results.value()) {
      std::printf("  %-40s pcor=%+.3f p=%.4f %s\n",
                  result.implication.ToText(dag.value()).c_str(),
                  result.test.partial_correlation, result.test.p_value,
                  result.rejected ? "REJECTED" : "ok");
      if (result.rejected) ++rejected;
    }
    if (skipped > 0) {
      std::printf("  (%zu implications skipped: variables not in the "
                  "data)\n",
                  skipped);
    }
    std::printf("verdict: %zu/%zu implications rejected at alpha=%.3g — "
                "%s\n",
                rejected, results.value().size(), alpha,
                rejected == 0 ? "the data do not refute this model"
                              : "the model is inconsistent with the data");
    return rejected == 0 ? 0 : 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
