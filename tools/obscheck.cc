// obscheck — schema validator for the --obs-out artifact set.
//
//   obscheck <dir>            validates <dir>/{manifest,metrics,trace}.json
//                             plus lineage.json, the indexed audit.bin,
//                             and the telemetry timeline timeline.bin
//   obscheck --manifest FILE  validates a single artifact by role
//   obscheck --metrics FILE
//   obscheck --trace FILE
//   obscheck --lineage FILE
//   obscheck --audit FILE
//   obscheck --timeline FILE
//
// Checks that each file parses as JSON (core::json::Parse, no third-party
// dependency) and conforms to its schema: sisyphus.run_manifest/1 for the
// manifest (tool, seed, options, phases, headline metric rollup, optional
// thread-pool stats), sisyphus.metrics/1 for the metric snapshot
// (counters / gauges / histograms with consistent bucket shapes), Chrome
// trace format for trace.json, and sisyphus.lineage/1 for the lineage
// ledger (per-run waterfall whose terminal stages partition the emitted
// records — deep reconciliation against metrics.json lives in lineageq
// --check). The binary audit index (sisyphus.audit/1, audit.bin) is
// opened with the mmap reader, every section checksum is verified, and
// its run headers are cross-checked against lineage.json — the index
// must describe the same campaign as the JSON it summarizes. The
// telemetry timeline (sisyphus.timeline/1, timeline.bin, DESIGN.md §15)
// is fully re-parsed — section checksums, monotone event steps, series
// density, event/series cross-references all live in the reader — and
// its step/series/event counts are cross-checked against manifest.json's
// "timeline" summary block. Exit 0 = all good; 1 = any violation (each
// printed with its JSON path). CI runs this after the table1 --obs-out
// smoke run, and a tier-1 ctest runs it against a real campaign's
// artifacts.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "artifact_io.h"
#include "audit/reader.h"
#include "core/json.h"
#include "obs/timeline.h"

namespace {

using sisyphus::core::json::Value;

int g_errors = 0;

void Fail(const std::string& where, const std::string& what) {
  std::printf("FAIL %s: %s\n", where.c_str(), what.c_str());
  ++g_errors;
}

/// Fetches `key` from `parent` (path `where`), requiring `kind`; nullptr
/// (and one recorded failure) when missing or mistyped.
const Value* Require(const Value& parent, const std::string& where,
                     const std::string& key, Value::Kind kind) {
  const Value* found = parent.Find(key);
  if (found == nullptr) {
    Fail(where + "." + key, "missing");
    return nullptr;
  }
  if (found->kind != kind) {
    Fail(where + "." + key, "wrong type");
    return nullptr;
  }
  return found;
}

void CheckMetricsObject(const Value& metrics, const std::string& where) {
  if (const Value* schema =
          Require(metrics, where, "schema", Value::Kind::kString);
      schema != nullptr && schema->string != "sisyphus.metrics/1") {
    Fail(where + ".schema", "expected sisyphus.metrics/1, got '" +
                                schema->string + "'");
  }
}

void CheckManifest(const Value& root) {
  const std::string where = "manifest";
  if (!root.is_object()) {
    Fail(where, "root is not an object");
    return;
  }
  if (const Value* schema =
          Require(root, where, "schema", Value::Kind::kString);
      schema != nullptr && schema->string != "sisyphus.run_manifest/1") {
    Fail(where + ".schema", "expected sisyphus.run_manifest/1, got '" +
                                schema->string + "'");
  }
  if (const Value* tool = Require(root, where, "tool", Value::Kind::kString);
      tool != nullptr && tool->string.empty()) {
    Fail(where + ".tool", "empty");
  }
  (void)Require(root, where, "seed", Value::Kind::kNumber);
  (void)Require(root, where, "options", Value::Kind::kObject);
  if (const Value* phases =
          Require(root, where, "phases", Value::Kind::kArray);
      phases != nullptr) {
    for (std::size_t i = 0; i < phases->array.size(); ++i) {
      const std::string phase_where =
          where + ".phases[" + std::to_string(i) + "]";
      const Value& phase = phases->array[i];
      if (!phase.is_object()) {
        Fail(phase_where, "not an object");
        continue;
      }
      (void)Require(phase, phase_where, "name", Value::Kind::kString);
      (void)Require(phase, phase_where, "wall_ms", Value::Kind::kNumber);
    }
  }
  if (const Value* metrics =
          Require(root, where, "metrics", Value::Kind::kObject);
      metrics != nullptr) {
    CheckMetricsObject(*metrics, where + ".metrics");
    // The headline counts the acceptance criteria name explicitly.
    for (const char* key :
         {"measure.probes.attempted", "measure.store.quarantined",
          "measure.panel.cells_masked", "causal.placebo.runs"}) {
      (void)Require(*metrics, where + ".metrics", key,
                    Value::Kind::kNumber);
    }
  }
  // Thread-pool stats are optional (absent from pre-lineage manifests and
  // compiled-out builds) but must be well-formed when present.
  if (const Value* pool = root.Find("pool"); pool != nullptr) {
    const std::string pool_where = where + ".pool";
    if (!pool->is_object()) {
      Fail(pool_where, "not an object");
    } else {
      (void)Require(*pool, pool_where, "regions", Value::Kind::kNumber);
      (void)Require(*pool, pool_where, "tasks", Value::Kind::kNumber);
      (void)Require(*pool, pool_where, "max_lanes_engaged",
                    Value::Kind::kNumber);
      for (const char* accum : {"queue_wait_us", "task_us", "region_span_us",
                                "lane_utilization"}) {
        const Value* stats =
            Require(*pool, pool_where, accum, Value::Kind::kObject);
        if (stats == nullptr) continue;
        for (const char* key : {"count", "mean", "min", "max"}) {
          (void)Require(*stats, pool_where + "." + accum, key,
                        Value::Kind::kNumber);
        }
      }
    }
  }

  // Durable checkpoint/journal metadata is optional (only campaigns run
  // under the DurableStreamingService write it), but when present it must
  // be internally consistent: the journal high-water mark can never trail
  // the snapshot it is supposed to cover (the service flushes the journal
  // before every snapshot write).
  if (const Value* durable = root.Find("durable"); durable != nullptr) {
    const std::string durable_where = where + ".durable";
    if (!durable->is_object()) {
      Fail(durable_where, "not an object");
    } else {
      for (const char* key : {"resumed", "partial"}) {
        (void)Require(*durable, durable_where, key, Value::Kind::kBool);
      }
      const Value* snapshot_seq = Require(*durable, durable_where,
                                          "snapshot_seq", Value::Kind::kNumber);
      const Value* high_water = Require(
          *durable, durable_where, "journal_high_water", Value::Kind::kNumber);
      (void)Require(*durable, durable_where, "journal_entries",
                    Value::Kind::kNumber);
      (void)Require(*durable, durable_where, "shed_records",
                    Value::Kind::kNumber);
      if (snapshot_seq != nullptr && high_water != nullptr &&
          high_water->number < snapshot_seq->number) {
        Fail(durable_where,
             "journal_high_water " +
                 std::to_string(
                     static_cast<std::uint64_t>(high_water->number)) +
                 " behind snapshot_seq " +
                 std::to_string(
                     static_cast<std::uint64_t>(snapshot_seq->number)));
      }
    }
  }
}

void CheckMetrics(const Value& root) {
  const std::string where = "metrics";
  if (!root.is_object()) {
    Fail(where, "root is not an object");
    return;
  }
  CheckMetricsObject(root, where);
  const Value* counters =
      Require(root, where, "counters", Value::Kind::kObject);
  if (counters != nullptr) {
    if (counters->object.empty()) {
      // A snapshot with zero counters means the registry was never enabled
      // (or the write was truncated mid-document) — validating the empty
      // shell would pass trivially and defeat the smoke check.
      Fail(where + ".counters",
           "empty — registry disabled in the producing run, or truncated "
           "artifact");
    }
    for (const auto& [name, value] : counters->object) {
      if (!value.is_number()) Fail(where + ".counters." + name, "not a number");
    }
  }
  (void)Require(root, where, "gauges", Value::Kind::kObject);
  const Value* histograms =
      Require(root, where, "histograms", Value::Kind::kObject);
  if (histograms != nullptr) {
    for (const auto& [name, histogram] : histograms->object) {
      const std::string h_where = where + ".histograms." + name;
      if (!histogram.is_object()) {
        Fail(h_where, "not an object");
        continue;
      }
      (void)Require(histogram, h_where, "count", Value::Kind::kNumber);
      (void)Require(histogram, h_where, "sum", Value::Kind::kNumber);
      const Value* bounds =
          Require(histogram, h_where, "upper_bounds", Value::Kind::kArray);
      const Value* buckets =
          Require(histogram, h_where, "bucket_counts", Value::Kind::kArray);
      if (bounds != nullptr && buckets != nullptr &&
          buckets->array.size() != bounds->array.size() + 1) {
        Fail(h_where, "bucket_counts must have upper_bounds + 1 entries");
      }
    }
  }
}

void CheckTrace(const Value& root) {
  const std::string where = "trace";
  if (!root.is_object()) {
    Fail(where, "root is not an object");
    return;
  }
  const Value* events =
      Require(root, where, "traceEvents", Value::Kind::kArray);
  if (events == nullptr) return;
  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const std::string event_where =
        where + ".traceEvents[" + std::to_string(i) + "]";
    const Value& event = events->array[i];
    if (!event.is_object()) {
      Fail(event_where, "not an object");
      continue;
    }
    (void)Require(event, event_where, "name", Value::Kind::kString);
    if (const Value* ph =
            Require(event, event_where, "ph", Value::Kind::kString);
        ph != nullptr && ph->string != "X") {
      Fail(event_where + ".ph", "expected complete event 'X'");
    }
    (void)Require(event, event_where, "ts", Value::Kind::kNumber);
    (void)Require(event, event_where, "dur", Value::Kind::kNumber);
    (void)Require(event, event_where, "tid", Value::Kind::kNumber);
  }
}

void CheckLineage(const Value& root) {
  const std::string where = "lineage";
  if (!root.is_object()) {
    Fail(where, "root is not an object");
    return;
  }
  if (const Value* schema =
          Require(root, where, "schema", Value::Kind::kString);
      schema != nullptr && schema->string != "sisyphus.lineage/1") {
    Fail(where + ".schema", "expected sisyphus.lineage/1, got '" +
                                schema->string + "'");
  }
  const Value* stages = Require(root, where, "stages", Value::Kind::kArray);
  const std::size_t stage_count =
      stages != nullptr ? stages->array.size() : 0;
  (void)Require(root, where, "fault_bits", Value::Kind::kArray);
  const Value* runs = Require(root, where, "runs", Value::Kind::kArray);
  if (runs == nullptr) return;
  if (runs->array.empty()) {
    Fail(where + ".runs",
         "no runs recorded — artifact truncated, or the producing binary "
         "ran with lineage disabled");
    return;
  }
  for (std::size_t i = 0; i < runs->array.size(); ++i) {
    const std::string run_where = where + ".runs[" + std::to_string(i) + "]";
    const Value& run = runs->array[i];
    if (!run.is_object()) {
      Fail(run_where, "not an object");
      continue;
    }
    (void)Require(run, run_where, "label", Value::Kind::kString);
    const Value* waterfall =
        Require(run, run_where, "waterfall", Value::Kind::kObject);
    double emitted = 0.0;
    if (waterfall != nullptr) {
      for (const char* key :
           {"probes_attempted", "probes_failed", "emitted", "delivered",
            "quarantined_copies", "archived_copies", "untracked"}) {
        (void)Require(*waterfall, run_where + ".waterfall", key,
                      Value::Kind::kNumber);
      }
      if (const Value* e = waterfall->Find("emitted");
          e != nullptr && e->is_number()) {
        emitted = e->number;
      }
      // Terminal stages must cover the legend and partition the emitted
      // records: every record ends in exactly one stage.
      if (const Value* terminal = Require(*waterfall, run_where + ".waterfall",
                                          "terminal", Value::Kind::kObject);
          terminal != nullptr) {
        if (stage_count != 0 && terminal->object.size() != stage_count) {
          Fail(run_where + ".waterfall.terminal",
               "expected one entry per legend stage");
        }
        double sum = 0.0;
        for (const auto& [_, count] : terminal->object) sum += count.number;
        if (sum != emitted) {
          Fail(run_where + ".waterfall.terminal",
               "stage counts do not sum to emitted");
        }
      }
      (void)Require(*waterfall, run_where + ".waterfall", "panel",
                    Value::Kind::kObject);
    }
    if (const Value* records =
            Require(run, run_where, "records", Value::Kind::kObject);
        records != nullptr) {
      const Value* count =
          Require(*records, run_where + ".records", "count",
                  Value::Kind::kNumber);
      if (count != nullptr && count->number != emitted) {
        Fail(run_where + ".records.count", "!= waterfall.emitted");
      }
      for (const char* column :
           {"vantage", "intent", "attempts", "fault_mask", "copies",
            "stage"}) {
        const Value* array = Require(*records, run_where + ".records", column,
                                     Value::Kind::kArray);
        if (array != nullptr && count != nullptr &&
            array->array.size() != static_cast<std::size_t>(count->number)) {
          Fail(run_where + ".records." + column, "wrong length");
        }
        if (array != nullptr && std::strcmp(column, "stage") == 0 &&
            stage_count != 0) {
          for (const Value& stage : array->array) {
            if (!stage.is_number() || stage.number < 0 ||
                stage.number >= static_cast<double>(stage_count)) {
              Fail(run_where + ".records.stage", "stage code out of range");
              break;
            }
          }
        }
      }
    }
    (void)Require(run, run_where, "panel_units", Value::Kind::kObject);
    (void)Require(run, run_where, "estimates", Value::Kind::kArray);
  }
}

/// Validates the binary audit index: structural integrity (every section
/// checksum) plus agreement with the lineage JSON when available — run
/// count, labels, and emitted totals must match, or the index was
/// written from a different campaign than the JSON sitting next to it.
void CheckAuditFile(const std::string& path, const Value* lineage_root) {
  sisyphus::audit::AuditReader reader;
  if (const auto status = reader.Open(path); !status.ok()) {
    Fail(path, status.error().message());
    return;
  }
  std::printf("check %s\n", path.c_str());
  const std::string where = "audit";
  if (const auto status = reader.VerifyAll(); !status.ok()) {
    Fail(path, status.error().message());
    return;
  }
  if (reader.run_count() == 0) {
    Fail(where + ".runs",
         "no runs recorded — artifact truncated, or the producing binary "
         "ran with lineage disabled");
    return;
  }
  for (std::size_t i = 0; i < reader.run_count(); ++i) {
    const sisyphus::audit::RunSummary& run = reader.run(i);
    const std::string run_where = where + ".runs[" + std::to_string(i) + "]";
    std::uint64_t terminal_sum = 0;
    for (std::uint64_t count : run.waterfall.terminal) terminal_sum += count;
    if (terminal_sum != run.waterfall.emitted) {
      Fail(run_where + ".terminal", "stage counts do not sum to emitted");
    }
    if (run.record_rows != run.waterfall.emitted) {
      Fail(run_where + ".records", "row count != waterfall.emitted");
    }
  }
  if (lineage_root == nullptr) return;
  const Value* runs = lineage_root->Find("runs");
  if (runs == nullptr || !runs->is_array()) return;  // reported by CheckLineage
  if (runs->array.size() != reader.run_count()) {
    Fail(where + ".runs",
         "index has " + std::to_string(reader.run_count()) +
             " run(s), lineage.json has " + std::to_string(runs->array.size()));
    return;
  }
  for (std::size_t i = 0; i < runs->array.size(); ++i) {
    const std::string run_where = where + ".runs[" + std::to_string(i) + "]";
    const Value& json_run = runs->array[i];
    if (const Value* label = json_run.Find("label");
        label != nullptr && label->is_string() &&
        label->string != reader.run(i).label) {
      Fail(run_where + ".label", "index says '" + reader.run(i).label +
                                     "', lineage.json says '" + label->string +
                                     "'");
    }
    const Value* waterfall = json_run.Find("waterfall");
    const Value* emitted =
        waterfall != nullptr ? waterfall->Find("emitted") : nullptr;
    if (emitted != nullptr && emitted->is_number() &&
        static_cast<std::uint64_t>(emitted->number) !=
            reader.run(i).waterfall.emitted) {
      Fail(run_where + ".emitted",
           "index says " + std::to_string(reader.run(i).waterfall.emitted) +
               ", lineage.json says " +
               std::to_string(static_cast<std::uint64_t>(emitted->number)));
    }
  }
}

/// Validates the telemetry timeline: the reader's Parse() already
/// verifies framing (magic, version, every section checksum, table
/// closure), series density, event step-ordering, and event/series
/// cross-references, so structural failure is a single loud error here.
/// On top of that the summary block the manifest carries (written from
/// the in-memory Timeline before the artifact) must agree with the
/// artifact's own counts — a mismatch means manifest.json and
/// timeline.bin came from different runs.
void CheckTimelineFile(const std::string& path, const Value* manifest_root) {
  sisyphus::obs::TimelineReader reader;
  std::string error;
  if (!reader.OpenFile(path, &error)) {
    Fail(path, error);
    return;
  }
  std::printf("check %s\n", path.c_str());
  const std::string where = "timeline";
  std::uint64_t samples = 0;
  for (const sisyphus::obs::TimelineSeriesView& series : reader.series()) {
    samples += series.sample_count;
  }
  std::uint64_t level_shift = 0;
  std::uint64_t churn = 0;
  for (std::size_t i = 0; i < reader.events().size(); ++i) {
    const sisyphus::obs::DetectionEvent& event = reader.events()[i];
    switch (reader.series()[event.series].detector) {
      case sisyphus::obs::DetectorKind::kLevelShift:
        ++level_shift;
        break;
      case sisyphus::obs::DetectorKind::kChurn:
        ++churn;
        break;
      case sisyphus::obs::DetectorKind::kNone:
        Fail(where + ".events[" + std::to_string(i) + "]",
             "event on a series with no detector");
        break;
    }
  }
  if (manifest_root == nullptr) return;
  const Value* timeline = manifest_root->Find("timeline");
  if (timeline == nullptr || !timeline->is_object()) {
    Fail("manifest.timeline",
         "missing — manifest written without a timeline summary, or from "
         "a different run than timeline.bin");
    return;
  }
  const auto cross_check = [&](const char* key, std::uint64_t artifact) {
    const Value* json =
        Require(*timeline, "manifest.timeline", key, Value::Kind::kNumber);
    if (json != nullptr &&
        static_cast<std::uint64_t>(json->number) != artifact) {
      Fail(std::string("manifest.timeline.") + key,
           "manifest says " +
               std::to_string(static_cast<std::uint64_t>(json->number)) +
               ", timeline.bin says " + std::to_string(artifact));
    }
  };
  cross_check("steps", reader.steps());
  cross_check("first_step", reader.first_step());
  cross_check("last_step", reader.last_step());
  cross_check("series", reader.series().size());
  cross_check("samples", samples);
  cross_check("events", reader.events().size());
  cross_check("level_shift_events", level_shift);
  cross_check("churn_events", churn);
}

/// Loads one JSON artifact (shared loader, exact legacy diagnostics),
/// prints the "check <path>" breadcrumb, and runs its schema check.
/// `keep` (optional) receives the parsed root for cross-file checks.
bool LoadAndCheck(const std::string& path, void (*check)(const Value&),
                  Value* keep = nullptr) {
  Value local;
  Value& root = keep != nullptr ? *keep : local;
  if (!sisyphus::tools::LoadJsonArtifact(path, root, /*required=*/true,
                                         Fail)) {
    return false;
  }
  std::printf("check %s\n", path.c_str());
  check(root);
  return true;
}

void PrintUsage() {
  std::printf(
      "usage: obscheck <obs-out-dir>\n"
      "       obscheck --manifest FILE | --metrics FILE | --trace FILE |"
      " --lineage FILE | --audit FILE | --timeline FILE\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  if (std::strcmp(argv[1], "--manifest") == 0 && argc > 2) {
    LoadAndCheck(argv[2], CheckManifest);
  } else if (std::strcmp(argv[1], "--metrics") == 0 && argc > 2) {
    LoadAndCheck(argv[2], CheckMetrics);
  } else if (std::strcmp(argv[1], "--trace") == 0 && argc > 2) {
    LoadAndCheck(argv[2], CheckTrace);
  } else if (std::strcmp(argv[1], "--lineage") == 0 && argc > 2) {
    LoadAndCheck(argv[2], CheckLineage);
  } else if (std::strcmp(argv[1], "--audit") == 0 && argc > 2) {
    CheckAuditFile(argv[2], nullptr);
  } else if (std::strcmp(argv[1], "--timeline") == 0 && argc > 2) {
    CheckTimelineFile(argv[2], nullptr);
  } else if (argv[1][0] == '-') {
    PrintUsage();
    return 1;
  } else {
    const std::string dir = argv[1];
    Value manifest_root;
    const bool have_manifest =
        LoadAndCheck(dir + "/manifest.json", CheckManifest, &manifest_root);
    LoadAndCheck(dir + "/metrics.json", CheckMetrics);
    LoadAndCheck(dir + "/trace.json", CheckTrace);
    // The writer emits the full artifact set, so a missing lineage.json,
    // audit.bin, or timeline.bin means the run died mid-write or the dir
    // predates the schema — either way "skip silently" would let a
    // broken producer pass CI. Use --lineage / --audit / --timeline on a
    // single file to validate legacy dirs piecemeal.
    Value lineage_root;
    const bool have_lineage =
        LoadAndCheck(dir + "/lineage.json", CheckLineage, &lineage_root);
    CheckAuditFile(dir + "/" + sisyphus::audit::kAuditFileName,
                   have_lineage ? &lineage_root : nullptr);
    CheckTimelineFile(dir + "/timeline.bin",
                      have_manifest ? &manifest_root : nullptr);
  }
  if (g_errors > 0) {
    std::printf("obscheck: %d violation(s)\n", g_errors);
    return 1;
  }
  std::printf("obscheck: OK\n");
  return 0;
}
