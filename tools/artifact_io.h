// Shared artifact loading for the audit CLIs (lineageq, obscheck).
//
// Both tools historically carried identical copies of the
// read-whole-file + parse + diagnose logic; the exact failure wording
// and exit behavior (empty file, truncated JSON, missing file) is load
// bearing — ctest fixtures and CI greps rely on it — so the single
// implementation lives here and both binaries report through their own
// Fail counter via the callback.
#pragma once

#include <functional>
#include <string>

#include "core/json.h"

namespace sisyphus::tools {

/// Reports one validation failure: (where, what) — the caller prints
/// "FAIL <where>: <what>" and bumps its error counter.
using FailFn =
    std::function<void(const std::string&, const std::string&)>;

/// Reads and parses one JSON artifact into `out`. Returns false after
/// reporting through `fail` when the file is missing (only if
/// `required`), empty ("empty file — artifact truncated or never
/// written"), or unparseable ("unparseable (truncated?): ...").
bool LoadJsonArtifact(const std::string& path, core::json::Value& out,
                      bool required, const FailFn& fail);

}  // namespace sisyphus::tools
