// timelineq — query CLI over the deterministic telemetry timeline
// (timeline.bin, DESIGN.md §15).
//
//   timelineq <path>                       summary (default)
//   timelineq <path> --summary             step range, series, event counts
//   timelineq <path> --series              list every series
//   timelineq <path> --series NAME         dump one series' per-step values
//   timelineq <path> --at STEP             every series' value at a step
//   timelineq <path> --events              detection events, step-ordered
//   timelineq <path> --follow [--until-step N]
//                                          tail a live durable run: re-read
//                                          the artifact as snapshots refresh
//                                          it, printing newly committed
//                                          steps and events
//
// <path> is a timeline.bin file or a directory containing one (an
// --obs-out dir or a live durable run's state dir). The whole artifact is
// checksum-verified on every open — a torn or corrupt file is a loud
// error, and --follow simply retries on the next poll (the durable
// service replaces the file atomically, so a reader never sees a partial
// write).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeline.h"

namespace {

using sisyphus::obs::DetectionEvent;
using sisyphus::obs::DetectorKind;
using sisyphus::obs::SeriesKind;
using sisyphus::obs::TimelineReader;
using sisyphus::obs::TimelineSeriesView;

const char* KindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter: return "counter";
    case SeriesKind::kGauge: return "gauge";
    case SeriesKind::kRunningMean: return "running_mean";
  }
  return "?";
}

const char* DetectorName(DetectorKind kind) {
  switch (kind) {
    case DetectorKind::kNone: return "-";
    case DetectorKind::kLevelShift: return "level_shift";
    case DetectorKind::kChurn: return "churn";
  }
  return "?";
}

std::string ResolvePath(const std::string& arg) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::is_directory(arg, ec)) {
    return (fs::path(arg) / "timeline.bin").string();
  }
  return arg;
}

void PrintSummary(const TimelineReader& reader) {
  std::printf("timeline: steps %llu (first %llu, last %llu)\n",
              static_cast<unsigned long long>(reader.steps()),
              static_cast<unsigned long long>(reader.first_step()),
              static_cast<unsigned long long>(reader.last_step()));
  std::uint64_t samples = 0;
  std::uint64_t detectors = 0;
  for (const TimelineSeriesView& series : reader.series()) {
    samples += series.sample_count;
    if (series.detector != DetectorKind::kNone) ++detectors;
  }
  std::printf("series: %zu (%llu detector-armed), samples %llu\n",
              reader.series().size(),
              static_cast<unsigned long long>(detectors),
              static_cast<unsigned long long>(samples));
  std::uint64_t level_shift = 0;
  std::uint64_t churn = 0;
  for (const DetectionEvent& event : reader.events()) {
    const DetectorKind kind = reader.series()[event.series].detector;
    if (kind == DetectorKind::kLevelShift) ++level_shift;
    if (kind == DetectorKind::kChurn) ++churn;
  }
  std::printf("events: %zu (level_shift %llu, churn %llu)\n",
              reader.events().size(),
              static_cast<unsigned long long>(level_shift),
              static_cast<unsigned long long>(churn));
}

void PrintSeriesList(const TimelineReader& reader) {
  std::printf("%4s  %-12s  %-11s  %10s  %8s  %s\n", "id", "kind", "detector",
              "first_step", "samples", "name");
  for (const TimelineSeriesView& series : reader.series()) {
    std::printf("%4u  %-12s  %-11s  %10llu  %8llu  %s\n", series.id,
                KindName(series.kind), DetectorName(series.detector),
                static_cast<unsigned long long>(series.first_step),
                static_cast<unsigned long long>(series.sample_count),
                series.name.c_str());
  }
}

int PrintOneSeries(const TimelineReader& reader, const std::string& name) {
  const TimelineSeriesView* series = reader.FindSeries(name);
  if (series == nullptr) {
    std::printf("FAIL: no series named '%s' (try --series for the list)\n",
                name.c_str());
    return 1;
  }
  std::string error;
  std::vector<double> values;
  if (!reader.SeriesValues(series->id, &values, &error)) {
    std::printf("FAIL: %s\n", error.c_str());
    return 1;
  }
  std::printf("# %s (%s, detector %s, fingerprint %016llx)\n",
              series->name.c_str(), KindName(series->kind),
              DetectorName(series->detector),
              static_cast<unsigned long long>(series->fingerprint));
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::printf("%llu %.17g\n",
                static_cast<unsigned long long>(series->first_step + i),
                values[i]);
  }
  return 0;
}

int PrintAt(const TimelineReader& reader, std::uint64_t step) {
  if (step < reader.first_step() || step > reader.last_step()) {
    std::printf("FAIL: step %llu outside [%llu, %llu]\n",
                static_cast<unsigned long long>(step),
                static_cast<unsigned long long>(reader.first_step()),
                static_cast<unsigned long long>(reader.last_step()));
    return 1;
  }
  std::string error;
  std::vector<std::pair<std::uint32_t, double>> values;
  if (!reader.ValuesAt(step, &values, &error)) {
    std::printf("FAIL: %s\n", error.c_str());
    return 1;
  }
  std::printf("step %llu:\n", static_cast<unsigned long long>(step));
  for (const auto& [id, value] : values) {
    std::printf("  %-40s %.17g\n", reader.series()[id].name.c_str(), value);
  }
  return 0;
}

void PrintEvent(const TimelineReader& reader, const DetectionEvent& event) {
  const TimelineSeriesView& series = reader.series()[event.series];
  std::printf("step %6llu  %-11s  %s%.6g  %-40s  config %016llx\n",
              static_cast<unsigned long long>(event.step),
              DetectorName(series.detector),
              event.direction >= 0 ? "+" : "-", event.magnitude,
              series.name.c_str(),
              static_cast<unsigned long long>(event.fingerprint));
}

void PrintEvents(const TimelineReader& reader) {
  if (reader.events().empty()) {
    std::printf("no detection events\n");
    return;
  }
  for (const DetectionEvent& event : reader.events()) {
    PrintEvent(reader, event);
  }
}

/// Polls the artifact as the durable service refreshes it at snapshot
/// points, printing the step high-water and any new events. Exits 0 once
/// `until_step` is committed (0 = follow forever).
int Follow(const std::string& path, std::uint64_t until_step) {
  std::uint64_t seen_step = 0;
  std::size_t seen_events = 0;
  bool opened = false;
  for (;;) {
    TimelineReader reader;
    std::string error;
    if (reader.OpenFile(path, &error)) {
      if (!opened) {
        opened = true;
        PrintSummary(reader);
      }
      if (reader.last_step() > seen_step) {
        seen_step = reader.last_step();
        std::printf("committed through step %llu\n",
                    static_cast<unsigned long long>(seen_step));
        std::fflush(stdout);
      }
      for (std::size_t i = seen_events; i < reader.events().size(); ++i) {
        PrintEvent(reader, reader.events()[i]);
      }
      if (reader.events().size() > seen_events) {
        seen_events = reader.events().size();
        std::fflush(stdout);
      }
      if (until_step > 0 && reader.last_step() >= until_step) return 0;
    }
    // Not-yet-written or mid-replace files simply retry; the service
    // renames the artifact into place atomically.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
}

int Usage() {
  std::printf(
      "usage: timelineq <timeline.bin | dir> "
      "[--summary | --series [NAME] | --at STEP | --events | "
      "--follow [--until-step N]]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string path = ResolvePath(argv[1]);

  std::string mode = "--summary";
  std::string series_name;
  std::uint64_t at_step = 0;
  std::uint64_t until_step = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--summary" || arg == "--series" || arg == "--events" ||
        arg == "--follow") {
      mode = arg;
      if (arg == "--series" && i + 1 < argc && argv[i + 1][0] != '-') {
        series_name = argv[++i];
      }
    } else if (arg == "--at" && i + 1 < argc) {
      mode = arg;
      at_step = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--until-step" && i + 1 < argc) {
      until_step = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }

  if (mode == "--follow") return Follow(path, until_step);

  TimelineReader reader;
  std::string error;
  if (!reader.OpenFile(path, &error)) {
    std::printf("FAIL %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  if (mode == "--summary") {
    PrintSummary(reader);
    return 0;
  }
  if (mode == "--series") {
    if (series_name.empty()) {
      PrintSeriesList(reader);
      return 0;
    }
    return PrintOneSeries(reader, series_name);
  }
  if (mode == "--at") return PrintAt(reader, at_step);
  if (mode == "--events") {
    PrintEvents(reader);
    return 0;
  }
  return Usage();
}
