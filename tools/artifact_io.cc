#include "artifact_io.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace sisyphus::tools {

bool LoadJsonArtifact(const std::string& path, core::json::Value& out,
                      bool required, const FailFn& fail) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (required) fail(path, "cannot open");
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  if (text.empty()) {
    fail(path, "empty file — artifact truncated or never written");
    return false;
  }
  auto parsed = core::json::Parse(text);
  if (!parsed.ok()) {
    fail(path, "unparseable (truncated?): " + parsed.error().ToText());
    return false;
  }
  out = std::move(parsed).value();
  return true;
}

}  // namespace sisyphus::tools
