// lineageq — audit CLI over the --obs-out lineage artifact.
//
//   lineageq <obs-dir> [--run LABEL]          waterfall totals per stage
//   lineageq <obs-dir> --unit "ASN / City"    records behind a unit's series
//   lineageq <obs-dir> --estimate LABEL       treated vs donor composition
//   lineageq <obs-dir> --check                conservation audit
//
// The default mode prints, for each run in lineage.json, the terminal-state
// waterfall: every emitted record lands in exactly one stage (quarantined,
// out_of_panel, dropped_sparsity, aggregated, donor, treated, ...), so the
// stage counts partition the emitted total. `--check` verifies that
// partition per run and then reconciles the summed waterfall against the
// probe / store / panel counters in the sibling metrics.json — any mismatch
// means a record was double-counted or lost between layers, and the tool
// exits 1. Built on core::json::Parse only; no third-party dependency.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/json.h"

namespace {

using sisyphus::core::json::Parse;
using sisyphus::core::json::Value;

int g_errors = 0;

void Fail(const std::string& where, const std::string& what) {
  std::printf("FAIL %s: %s\n", where.c_str(), what.c_str());
  ++g_errors;
}

/// Reads `key` as an integer count; 0 when absent (pre-lineage artifacts and
/// compiled-out builds simply have nothing to reconcile).
std::uint64_t Count(const Value& parent, const std::string& key) {
  const Value* found = parent.Find(key);
  if (found == nullptr || !found->is_number()) return 0;
  return static_cast<std::uint64_t>(found->number);
}

std::uint64_t SumObject(const Value* object) {
  std::uint64_t total = 0;
  if (object == nullptr || !object->is_object()) return total;
  for (const auto& [_, value] : object->object) {
    if (value.is_number()) total += static_cast<std::uint64_t>(value.number);
  }
  return total;
}

bool LoadJson(const std::string& path, Value& out, bool required) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    if (required) Fail(path, "cannot open");
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  if (buffer.str().empty()) {
    Fail(path, "empty file — artifact truncated or never written");
    return false;
  }
  auto parsed = Parse(buffer.str());
  if (!parsed.ok()) {
    Fail(path, "unparseable (truncated?): " + parsed.error().ToText());
    return false;
  }
  out = std::move(parsed).value();
  return true;
}

/// Prints `count` padded plus its share of `total` ("  1234   3.2%").
void PrintShare(std::uint64_t count, std::uint64_t total) {
  const double pct =
      total > 0 ? 100.0 * static_cast<double>(count) / static_cast<double>(total)
                : 0.0;
  std::printf("%10llu  %5.1f%%\n", static_cast<unsigned long long>(count), pct);
}

// ---------------------------------------------------------------------------
// Waterfall mode (default)

void PrintWaterfall(const Value& run) {
  const Value* waterfall = run.Find("waterfall");
  if (waterfall == nullptr || !waterfall->is_object()) {
    Fail("run.waterfall", "missing");
    return;
  }
  const std::uint64_t emitted = Count(*waterfall, "emitted");
  std::printf("probes attempted %llu  failed %llu  emitted %llu  "
              "delivered copies %llu\n",
              static_cast<unsigned long long>(Count(*waterfall,
                                                    "probes_attempted")),
              static_cast<unsigned long long>(Count(*waterfall,
                                                    "probes_failed")),
              static_cast<unsigned long long>(emitted),
              static_cast<unsigned long long>(Count(*waterfall, "delivered")));
  if (const Value* reasons = waterfall->Find("failure_reasons");
      reasons != nullptr && !reasons->object.empty()) {
    for (const auto& [reason, count] : reasons->object) {
      std::printf("  failure %-24s %10llu\n", reason.c_str(),
                  static_cast<unsigned long long>(count.number));
    }
  }
  const Value* terminal = waterfall->Find("terminal");
  if (terminal != nullptr && terminal->is_object()) {
    std::printf("  %-18s %10s  %6s\n", "terminal stage", "records", "share");
    for (const auto& [stage, count] : terminal->object) {
      const auto n = static_cast<std::uint64_t>(count.number);
      if (n == 0) continue;
      std::printf("  %-18s ", stage.c_str());
      PrintShare(n, emitted);
    }
  }
  if (const Value* panel = waterfall->Find("panel");
      panel != nullptr && panel->is_object()) {
    std::printf("panel: units kept %llu  dropped %llu  empty %llu  "
                "cells observed %llu  masked %llu\n",
                static_cast<unsigned long long>(Count(*panel, "units_kept")),
                static_cast<unsigned long long>(Count(*panel, "units_dropped")),
                static_cast<unsigned long long>(Count(*panel, "units_empty")),
                static_cast<unsigned long long>(Count(*panel,
                                                      "cells_observed")),
                static_cast<unsigned long long>(Count(*panel,
                                                      "cells_masked")));
  }
}

// ---------------------------------------------------------------------------
// --unit mode

void PrintUnit(const Value& run, const std::string& unit) {
  const Value* units = run.Find("panel_units");
  const Value* ledger = units != nullptr ? units->Find(unit) : nullptr;
  if (ledger == nullptr) {
    Fail("--unit", "'" + unit + "' is not in this run's panel ledger");
    return;
  }
  const Value* dropped = ledger->Find("dropped");
  const bool was_dropped = dropped != nullptr && dropped->boolean;
  const Value* missing = ledger->Find("missing_fraction");
  std::printf("unit '%s': %s  missing_fraction %.3f  observed cells %llu  "
              "masked %llu\n",
              unit.c_str(), was_dropped ? "DROPPED (sparsity)" : "kept",
              missing != nullptr ? missing->number : 0.0,
              static_cast<unsigned long long>(Count(*ledger, "observed_cells")),
              static_cast<unsigned long long>(Count(*ledger, "masked_cells")));
  const Value* used_treated = ledger->Find("used_treated");
  const Value* used_donor = ledger->Find("used_donor");
  std::printf("used as: treated=%s donor=%s\n",
              used_treated != nullptr && used_treated->boolean ? "yes" : "no",
              used_donor != nullptr && used_donor->boolean ? "yes" : "no");
  const Value* cells = ledger->Find("cells");
  if (cells == nullptr || !cells->is_array()) return;
  std::uint64_t records = 0;
  for (const Value& cell : cells->array) records += Count(cell, "count");
  std::printf("%llu records across %zu non-empty cells\n",
              static_cast<unsigned long long>(records), cells->array.size());
  std::printf("  %-8s %8s  %s\n", "period", "records", "digest");
  for (const Value& cell : cells->array) {
    const Value* digest = cell.Find("digest");
    std::printf("  %-8llu %8llu  %s\n",
                static_cast<unsigned long long>(Count(cell, "period")),
                static_cast<unsigned long long>(Count(cell, "count")),
                digest != nullptr ? digest->string.c_str() : "?");
  }
}

// ---------------------------------------------------------------------------
// --estimate mode

void PrintComposition(const Value& estimate, const std::string& prefix) {
  const Value* digest = estimate.Find(prefix + "_digest");
  std::printf("  %-7s pool: %llu records in %llu cells  digest %s\n",
              prefix.c_str(),
              static_cast<unsigned long long>(
                  Count(estimate, prefix + "_records")),
              static_cast<unsigned long long>(
                  Count(estimate, prefix + "_cells")),
              digest != nullptr ? digest->string.c_str() : "?");
  for (const char* facet : {"intents", "faults", "vantages"}) {
    const Value* breakdown = estimate.Find(prefix + "_" + facet);
    if (breakdown == nullptr || breakdown->object.empty()) continue;
    std::printf("    %s:", facet);
    std::size_t shown = 0;
    for (const auto& [name, count] : breakdown->object) {
      if (++shown > 8) {
        std::printf("  ... (%zu more)", breakdown->object.size() - 8);
        break;
      }
      std::printf("  %s=%llu", name.c_str(),
                  static_cast<unsigned long long>(count.number));
    }
    std::printf("\n");
  }
}

void PrintEstimate(const Value& run, const std::string& label) {
  const Value* estimates = run.Find("estimates");
  if (estimates == nullptr || !estimates->is_array()) {
    Fail("--estimate", "this run recorded no estimates");
    return;
  }
  for (const Value& estimate : estimates->array) {
    const Value* found = estimate.Find("label");
    if (found == nullptr || found->string != label) continue;
    const Value* treated = estimate.Find("treated");
    const Value* effect = estimate.Find("effect");
    const Value* p_value = estimate.Find("p_value");
    const Value* donors = estimate.Find("donors");
    std::printf("estimate '%s': treated '%s'  effect %.4f", label.c_str(),
                treated != nullptr ? treated->string.c_str() : "",
                effect != nullptr ? effect->number : 0.0);
    if (p_value != nullptr && p_value->is_number()) {
      std::printf("  p=%.4f", p_value->number);
    }
    std::printf("  donors %zu\n",
                donors != nullptr ? donors->array.size() : 0);
    PrintComposition(estimate, "treated");
    PrintComposition(estimate, "donor");
    return;
  }
  Fail("--estimate", "'" + label + "' not found in this run");
}

// ---------------------------------------------------------------------------
// --check mode

/// Summed-across-runs waterfall, reconciled against metrics.json at the end.
struct CheckTotals {
  std::uint64_t attempted = 0, failed = 0, emitted = 0;
  std::uint64_t archived = 0, quarantined = 0;
  std::uint64_t shed = 0;
  std::uint64_t units_kept = 0, units_dropped = 0, units_empty = 0;
  std::uint64_t cells_observed = 0, cells_masked = 0;
};

void CheckRun(const Value& run, const std::string& where, CheckTotals& sums) {
  const Value* waterfall = run.Find("waterfall");
  if (waterfall == nullptr || !waterfall->is_object()) {
    Fail(where + ".waterfall", "missing");
    return;
  }
  const std::uint64_t attempted = Count(*waterfall, "probes_attempted");
  const std::uint64_t failed = Count(*waterfall, "probes_failed");
  const std::uint64_t emitted = Count(*waterfall, "emitted");
  const std::uint64_t delivered = Count(*waterfall, "delivered");
  const std::uint64_t quarantined = Count(*waterfall, "quarantined_copies");
  const std::uint64_t archived = Count(*waterfall, "archived_copies");

  // Conservation within the run: stages partition the emitted records.
  if (attempted != emitted + failed) {
    Fail(where, "probes_attempted " + std::to_string(attempted) +
                    " != emitted + failed " + std::to_string(emitted + failed));
  }
  if (SumObject(waterfall->Find("failure_reasons")) != failed) {
    Fail(where, "failure_reasons do not sum to probes_failed");
  }
  if (const std::uint64_t untracked = Count(*waterfall, "untracked");
      untracked != 0) {
    Fail(where, std::to_string(untracked) +
                    " record(s) never reached a terminal state");
  }
  const Value* terminal = waterfall->Find("terminal");
  if (const std::uint64_t terminal_sum = SumObject(terminal);
      terminal_sum != emitted) {
    Fail(where, "terminal stages sum to " + std::to_string(terminal_sum) +
                    ", emitted is " + std::to_string(emitted));
  }
  if (archived + quarantined != delivered) {
    Fail(where, "archived + quarantined copies != delivered");
  }

  // The columnar per-record dump must agree with the rollup: recompute the
  // stage histogram and the copy total from the arrays themselves.
  const Value* records = run.Find("records");
  if (records != nullptr && records->is_object()) {
    const std::uint64_t count = Count(*records, "count");
    if (count != emitted) {
      Fail(where + ".records", "count " + std::to_string(count) +
                                   " != waterfall.emitted " +
                                   std::to_string(emitted));
    }
    const Value* stage = records->Find("stage");
    const Value* copies = records->Find("copies");
    for (const char* column :
         {"vantage", "intent", "attempts", "fault_mask", "copies", "stage"}) {
      const Value* array = records->Find(column);
      if (array == nullptr || !array->is_array() ||
          array->array.size() != count) {
        Fail(where + ".records." + column, "missing or wrong length");
      }
    }
    if (stage != nullptr && stage->is_array() && terminal != nullptr) {
      std::map<std::size_t, std::uint64_t> histogram;
      for (const Value& s : stage->array) {
        ++histogram[static_cast<std::size_t>(s.number)];
      }
      std::size_t index = 0;
      for (const auto& [name, stage_count] : terminal->object) {
        const auto expected = static_cast<std::uint64_t>(stage_count.number);
        const std::uint64_t actual =
            histogram.count(index) ? histogram[index] : 0;
        if (expected != actual) {
          Fail(where + ".terminal." + name,
               "rollup says " + std::to_string(expected) +
                   ", per-record stages say " + std::to_string(actual));
        }
        ++index;
      }
    }
    if (copies != nullptr && copies->is_array()) {
      std::uint64_t copy_sum = 0;
      for (const Value& c : copies->array) {
        copy_sum += static_cast<std::uint64_t>(c.number);
      }
      if (copy_sum != delivered) {
        Fail(where + ".records.copies",
             "sum " + std::to_string(copy_sum) + " != waterfall.delivered " +
                 std::to_string(delivered));
      }
    }
  }

  sums.attempted += attempted;
  sums.failed += failed;
  sums.emitted += emitted;
  sums.archived += archived;
  sums.quarantined += quarantined;
  // Records dropped by the streaming overload-shed policy terminate in
  // shed_overload with zero delivered copies, so they count toward
  // emitted but not toward archived/quarantined — reconciled against the
  // measure.stream.shed_overload counter below.
  if (terminal != nullptr && terminal->is_object()) {
    sums.shed += Count(*terminal, "shed_overload");
  }
  if (const Value* panel = waterfall->Find("panel");
      panel != nullptr && panel->is_object()) {
    sums.units_kept += Count(*panel, "units_kept");
    sums.units_dropped += Count(*panel, "units_dropped");
    sums.units_empty += Count(*panel, "units_empty");
    sums.cells_observed += Count(*panel, "cells_observed");
    sums.cells_masked += Count(*panel, "cells_masked");
  }
}

void Reconcile(const CheckTotals& sums, const Value& metrics) {
  const Value* counters = metrics.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    Fail("metrics.counters", "missing");
    return;
  }
  const auto expect = [&](const char* counter, std::uint64_t lineage_total) {
    const std::uint64_t metric = Count(*counters, counter);
    if (metric != lineage_total) {
      Fail(std::string("reconcile.") + counter,
           "metrics.json says " + std::to_string(metric) +
               ", lineage waterfall sums to " + std::to_string(lineage_total));
    }
  };
  expect("measure.probes.attempted", sums.attempted);
  expect("measure.probes.failed", sums.failed);
  expect("measure.probes.succeeded", sums.emitted);
  expect("measure.store.archived", sums.archived);
  expect("measure.store.quarantined", sums.quarantined);
  expect("measure.stream.shed_overload", sums.shed);
  expect("measure.panel.units_kept", sums.units_kept);
  expect("measure.panel.units_dropped", sums.units_dropped);
  expect("measure.panel.units_empty", sums.units_empty);
  expect("measure.panel.cells_observed", sums.cells_observed);
  expect("measure.panel.cells_masked", sums.cells_masked);
}

void PrintUsage() {
  std::printf(
      "usage: lineageq <obs-out-dir> [--run LABEL] [--unit \"ASN / City\"]\n"
      "                [--estimate LABEL] [--check]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || argv[1][0] == '-') {
    PrintUsage();
    return 1;
  }
  const std::string dir = argv[1];
  std::string run_filter, unit, estimate;
  bool check = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--run") == 0 && i + 1 < argc) {
      run_filter = argv[++i];
    } else if (std::strcmp(argv[i], "--unit") == 0 && i + 1 < argc) {
      unit = argv[++i];
    } else if (std::strcmp(argv[i], "--estimate") == 0 && i + 1 < argc) {
      estimate = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      PrintUsage();
      return 1;
    }
  }

  Value lineage;
  if (!LoadJson(dir + "/lineage.json", lineage, /*required=*/true)) return 1;
  if (const Value* schema = lineage.Find("schema");
      schema == nullptr || schema->string != "sisyphus.lineage/1") {
    Fail("lineage.schema", "expected sisyphus.lineage/1");
    return 1;
  }
  const Value* runs = lineage.Find("runs");
  if (runs == nullptr || !runs->is_array()) {
    Fail("lineage.runs", "missing");
    return 1;
  }
  if (runs->array.empty()) {
    // An artifact with zero runs has nothing to audit; treating it as a
    // pass would let a truncated write (or a binary built with lineage
    // compiled out) slip through CI unnoticed.
    Fail("lineage.runs",
         "no runs recorded — artifact truncated, or the producing binary "
         "ran with lineage disabled");
    return 1;
  }

  CheckTotals sums;
  bool matched_run = run_filter.empty();
  for (std::size_t i = 0; i < runs->array.size(); ++i) {
    const Value& run = runs->array[i];
    const Value* label = run.Find("label");
    const std::string name =
        label != nullptr ? label->string : ("run[" + std::to_string(i) + "]");
    if (check) {
      // --check always audits every run: the metrics counters accumulate
      // across the whole process, so reconciliation needs the full sum.
      CheckRun(run, name, sums);
      continue;
    }
    if (!run_filter.empty() && name != run_filter) continue;
    matched_run = true;
    std::printf("== run: %s ==\n", name.c_str());
    if (!unit.empty()) {
      PrintUnit(run, unit);
    } else if (!estimate.empty()) {
      PrintEstimate(run, estimate);
    } else {
      PrintWaterfall(run);
    }
    std::printf("\n");
  }
  if (!check && !matched_run) {
    std::printf("no run labeled '%s' (have %zu run(s))\n", run_filter.c_str(),
                runs->array.size());
    return 1;
  }

  if (check) {
    if (sums.emitted == 0) {
      Fail("check", "zero emitted records across all runs — nothing was "
                    "measured, so the audit is vacuous");
    }
    Value metrics;
    if (LoadJson(dir + "/metrics.json", metrics, /*required=*/true)) {
      Reconcile(sums, metrics);
    }
    if (g_errors > 0) {
      std::printf("lineageq --check: %d violation(s)\n", g_errors);
      return 1;
    }
    std::printf("lineageq --check: OK — %llu emitted record(s) across %zu "
                "run(s) all reconcile\n",
                static_cast<unsigned long long>(sums.emitted),
                runs->array.size());
  }
  return g_errors > 0 ? 1 : 0;
}
